"""Unit tests for multi-hop path simulation."""

import pytest

from repro.errors import SimulationError
from repro.runtime.path_sim import PathSimulation
from repro.runtime.sources import CbrSource


def streams_for(sources, horizon):
    return {src.channel_id: src.packets_until(horizon) for src in sources}


class TestPathSimulation:
    def test_single_hop_equals_link_behaviour(self):
        sim = PathSimulation([1000.0])
        sim.add_channel(1, reserved_rate=500.0)
        report = sim.run(streams_for([CbrSource(1, 500.0)], 5.0), horizon=5.0)
        stats = report.stats[1]
        assert stats.delivered_packets == stats.offered_packets
        assert stats.mean_delay < 0.05

    def test_delay_grows_with_hops(self):
        source = CbrSource(1, 500.0)
        one_hop = PathSimulation([1000.0])
        one_hop.add_channel(1, 500.0)
        three_hop = PathSimulation([1000.0, 1000.0, 1000.0])
        three_hop.add_channel(1, 500.0)
        d1 = one_hop.run(streams_for([source], 5.0), 5.0).end_to_end_mean_delay(1)
        d3 = three_hop.run(streams_for([source], 5.0), 5.0).end_to_end_mean_delay(1)
        assert d3 > d1
        # Each hop adds roughly one wire time for a conforming stream.
        assert d3 == pytest.approx(3 * d1, rel=0.2)

    def test_all_packets_delivered_end_to_end(self):
        sim = PathSimulation([1000.0, 800.0])
        sim.add_channel(1, 300.0)
        sim.add_channel(2, 300.0)
        report = sim.run(
            streams_for([CbrSource(1, 300.0), CbrSource(2, 300.0)], 4.0), 4.0
        )
        for cid in (1, 2):
            stats = report.stats[cid]
            assert stats.delivered_packets == stats.offered_packets
            assert stats.delivered_bits == stats.offered_bits

    def test_bottleneck_hop_dominates_delay(self):
        fast = PathSimulation([10_000.0, 10_000.0])
        fast.add_channel(1, 500.0)
        slow_middle = PathSimulation([10_000.0, 600.0])
        slow_middle.add_channel(1, 500.0)
        streams = streams_for([CbrSource(1, 500.0)], 5.0)
        d_fast = fast.run(streams, 5.0).end_to_end_mean_delay(1)
        d_slow = slow_middle.run(streams, 5.0).end_to_end_mean_delay(1)
        assert d_slow > d_fast

    def test_delays_end_to_end_not_per_hop(self):
        sim = PathSimulation([1000.0, 1000.0])
        sim.add_channel(1, 500.0)
        report = sim.run(streams_for([CbrSource(1, 500.0)], 2.0), 2.0)
        # End-to-end delay must be at least two wire times (10/1000 each).
        assert min(report.stats[1].delays) >= 2 * (10.0 / 1000.0) - 1e-9

    def test_validation(self):
        with pytest.raises(SimulationError):
            PathSimulation([])
        sim = PathSimulation([1000.0])
        sim.add_channel(1, 100.0)
        with pytest.raises(SimulationError):
            sim.add_channel(1, 100.0)
        with pytest.raises(SimulationError):
            sim.add_channel(2, 0.0)
        with pytest.raises(SimulationError):
            sim.run({9: []}, 1.0)  # unregistered channel

    def test_mean_delay_requires_deliveries(self):
        sim = PathSimulation([1000.0])
        sim.add_channel(1, 100.0)
        report = sim.run({1: []}, 1.0)
        with pytest.raises(SimulationError):
            report.end_to_end_mean_delay(1)
