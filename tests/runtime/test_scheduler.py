"""Unit tests for the weighted-fair link scheduler."""

import pytest

from repro.errors import SimulationError
from repro.runtime.packets import Packet
from repro.runtime.scheduler import FairLinkScheduler


def pkt(channel, seq, size=10.0, t=0.0):
    return Packet(channel_id=channel, size=size, created_at=t, sequence=seq)


class TestRegistration:
    def test_register_and_rate(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 250.0)
        assert sched.rate_of(1) == 250.0
        assert sched.total_reserved() == 250.0

    def test_duplicate_rejected(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 250.0)
        with pytest.raises(SimulationError):
            sched.register_channel(1, 100.0)

    def test_invalid_capacity_or_rate(self):
        with pytest.raises(SimulationError):
            FairLinkScheduler(0.0)
        sched = FairLinkScheduler(1000.0)
        with pytest.raises(SimulationError):
            sched.register_channel(1, 0.0)

    def test_unknown_channel(self):
        sched = FairLinkScheduler(1000.0)
        with pytest.raises(SimulationError):
            sched.rate_of(9)
        with pytest.raises(SimulationError):
            sched.enqueue(pkt(9, 0), now=0.0)

    def test_unregister_requires_empty_queue(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        sched.enqueue(pkt(1, 0), now=0.0)
        with pytest.raises(SimulationError):
            sched.unregister_channel(1)
        sched.drain(0.0)
        sched.unregister_channel(1)
        with pytest.raises(SimulationError):
            sched.rate_of(1)


class TestStampOrdering:
    def test_higher_rate_goes_first(self):
        """Two same-size packets arriving together: the higher-rate
        channel has the earlier finish stamp."""
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        sched.register_channel(2, 400.0)
        sched.enqueue(pkt(1, 0), now=0.0)
        sched.enqueue(pkt(2, 0), now=0.0)
        first = sched.next_departure(0.0)
        assert first.packet.channel_id == 2

    def test_backlogged_channel_accumulates_stamps(self):
        """A burst from one channel interleaves with a slower channel in
        proportion to the rates."""
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        sched.register_channel(2, 100.0)
        for seq in range(3):
            sched.enqueue(pkt(1, seq), now=0.0)
        sched.enqueue(pkt(2, 0), now=0.0)
        order = [sched.next_departure(0.0).packet.channel_id for _ in range(4)]
        # Channel 2's single packet must not wait behind the whole burst.
        assert order.index(2) <= 1

    def test_deterministic_tie_break(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        sched.register_channel(2, 100.0)
        sched.enqueue(pkt(2, 0), now=0.0)
        sched.enqueue(pkt(1, 0), now=0.0)
        assert sched.next_departure(0.0).packet.channel_id == 1  # lower id wins ties

    def test_rate_update_affects_new_stamps(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        sched.register_channel(2, 100.0)
        sched.update_rate(2, 800.0)
        sched.enqueue(pkt(1, 0), now=0.0)
        sched.enqueue(pkt(2, 0), now=0.0)
        assert sched.next_departure(0.0).packet.channel_id == 2


class TestTransmission:
    def test_wire_time_uses_capacity(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        sched.enqueue(pkt(1, 0, size=100.0), now=0.0)
        delivery = sched.next_departure(0.0)
        # 100 Kb on a 1000 Kb/s wire = 0.1 s
        assert delivery.departed_at == pytest.approx(0.1)
        assert delivery.delay == pytest.approx(0.1)

    def test_busy_transmitter_serialises(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 500.0)
        sched.enqueue(pkt(1, 0, size=100.0), now=0.0)
        sched.enqueue(pkt(1, 1, size=100.0), now=0.0)
        d1 = sched.next_departure(0.0)
        d2 = sched.next_departure(0.0)
        assert d2.departed_at == pytest.approx(d1.departed_at + 0.1)

    def test_idle_link_returns_none(self):
        sched = FairLinkScheduler(1000.0)
        assert sched.next_departure(0.0) is None

    def test_drain_empties_queue(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        for seq in range(5):
            sched.enqueue(pkt(1, seq), now=0.0)
        deliveries = sched.drain(0.0)
        assert len(deliveries) == 5
        assert sched.backlog == 0
        times = [d.departed_at for d in deliveries]
        assert times == sorted(times)

    def test_packet_not_sent_before_creation(self):
        sched = FairLinkScheduler(1000.0)
        sched.register_channel(1, 100.0)
        sched.enqueue(pkt(1, 0, t=5.0), now=5.0)
        delivery = sched.next_departure(0.0)
        assert delivery.departed_at >= 5.0
