"""Unit tests for traffic sources and the single-link packet simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qos.interval import IntervalQoS, IntervalRegulator
from repro.runtime.link_sim import LinkSimulation
from repro.runtime.packets import ChannelDeliveryStats, Packet
from repro.runtime.sources import CbrSource, OnOffSource, merge_streams


class TestCbrSource:
    def test_rate_matches(self):
        src = CbrSource(1, rate=500.0, packet_size=10.0)
        packets = src.packets_until(horizon=2.0)
        bits = sum(p.size for p in packets)
        assert bits == pytest.approx(1000.0, rel=0.02)

    def test_equally_spaced(self):
        src = CbrSource(1, rate=100.0, packet_size=10.0)
        packets = src.packets_until(1.0)
        gaps = {
            round(b.created_at - a.created_at, 9)
            for a, b in zip(packets, packets[1:])
        }
        assert gaps == {0.1}

    def test_sequences_increase(self):
        packets = CbrSource(1, 100.0).packets_until(1.0)
        assert [p.sequence for p in packets] == list(range(len(packets)))

    def test_invalid(self):
        with pytest.raises(SimulationError):
            CbrSource(1, rate=0.0)
        with pytest.raises(SimulationError):
            CbrSource(1, rate=10.0).packets_until(0.0)


class TestOnOffSource:
    def test_average_rate_property(self):
        src = OnOffSource(1, peak_rate=400.0, mean_on=1.0, mean_off=3.0,
                          rng=np.random.default_rng(1))
        assert src.average_rate == pytest.approx(100.0)

    def test_long_run_rate_close(self):
        src = OnOffSource(1, peak_rate=400.0, mean_on=1.0, mean_off=3.0,
                          rng=np.random.default_rng(7))
        packets = src.packets_until(400.0)
        rate = sum(p.size for p in packets) / 400.0
        assert rate == pytest.approx(src.average_rate, rel=0.3)

    def test_deterministic_given_seed(self):
        a = OnOffSource(1, 400.0, 1.0, 2.0, np.random.default_rng(3)).packets_until(50.0)
        b = OnOffSource(1, 400.0, 1.0, 2.0, np.random.default_rng(3)).packets_until(50.0)
        assert a == b

    def test_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            OnOffSource(1, 0.0, 1.0, 1.0, rng)
        with pytest.raises(SimulationError):
            OnOffSource(1, 10.0, 0.0, 1.0, rng)


class TestMergeStreams:
    def test_time_ordered(self):
        a = CbrSource(1, 100.0).packets_until(0.5)
        b = CbrSource(2, 300.0).packets_until(0.5)
        merged = list(merge_streams([a, b]))
        times = [p.created_at for p in merged]
        assert times == sorted(times)
        assert len(merged) == len(a) + len(b)


class TestLinkSimulation:
    def test_cbr_within_reservation_is_lossless_and_fast(self):
        sim = LinkSimulation(capacity=1000.0)
        sim.add_channel(1, reserved_rate=500.0, source=CbrSource(1, 500.0))
        report = sim.run(horizon=5.0)
        stats = report.stats[1]
        assert stats.dropped_packets == 0
        assert report.throughput(1) == pytest.approx(500.0, rel=0.05)
        # CBR within reservation: each packet only pays wire time.
        assert stats.max_delay <= 0.05

    def test_reservations_protect_against_a_greedy_channel(self):
        """A channel blasting far beyond its reservation cannot starve a
        conforming one: the conforming channel keeps its rate and low
        delay."""
        sim = LinkSimulation(capacity=1000.0)
        sim.add_channel(1, reserved_rate=500.0, source=CbrSource(1, 500.0))
        sim.add_channel(2, reserved_rate=100.0, source=CbrSource(2, 900.0))
        report = sim.run(horizon=5.0)
        assert report.throughput(1) == pytest.approx(500.0, rel=0.1)
        conforming_delay = report.stats[1].mean_delay
        greedy_delay = report.stats[2].mean_delay
        assert conforming_delay < greedy_delay

    def test_work_conserving(self):
        """Spare capacity goes to whoever has traffic."""
        sim = LinkSimulation(capacity=1000.0)
        sim.add_channel(1, reserved_rate=100.0, source=CbrSource(1, 800.0))
        report = sim.run(horizon=5.0)
        # Alone on the link, the channel gets its full offered 800 Kb/s.
        assert report.throughput(1) == pytest.approx(800.0, rel=0.1)

    def test_regulator_sheds_overload_but_keeps_floor(self):
        qos = IntervalQoS(k=1, m=4)  # at least a quarter must pass
        sim = LinkSimulation(capacity=1000.0)
        sim.add_channel(
            1,
            reserved_rate=100.0,
            source=CbrSource(1, 400.0),
            regulator=IntervalRegulator(qos),
        )
        report = sim.run(horizon=5.0)
        stats = report.stats[1]
        assert stats.dropped_packets > 0
        # The floor: at least k/m of offered packets forwarded.
        assert stats.delivered_packets >= qos.min_forward_ratio * stats.offered_packets
        # And the regulator's own audit must pass.
        reg = sim._setups[1].regulator
        reg.verify_guarantee()

    def test_bursty_source_served_within_capacity(self):
        rng = np.random.default_rng(5)
        sim = LinkSimulation(capacity=1000.0)
        sim.add_channel(
            1,
            reserved_rate=200.0,
            source=OnOffSource(1, peak_rate=600.0, mean_on=0.5, mean_off=1.0, rng=rng),
        )
        report = sim.run(horizon=20.0)
        stats = report.stats[1]
        assert stats.dropped_packets == 0
        assert stats.delivered_packets == stats.offered_packets

    def test_validation_errors(self):
        sim = LinkSimulation(capacity=1000.0)
        with pytest.raises(SimulationError):
            sim.run(horizon=1.0)  # no channels
        sim.add_channel(1, 100.0, CbrSource(1, 100.0))
        with pytest.raises(SimulationError):
            sim.add_channel(1, 100.0, CbrSource(1, 100.0))
        with pytest.raises(SimulationError):
            sim.add_channel(2, 100.0, CbrSource(3, 100.0))  # id mismatch


class TestDeliveryStats:
    def test_throughput_requires_duration(self):
        stats = ChannelDeliveryStats(channel_id=1)
        with pytest.raises(SimulationError):
            stats.throughput(0.0)

    def test_empty_stats(self):
        stats = ChannelDeliveryStats(channel_id=1)
        assert stats.mean_delay is None
        assert stats.max_delay is None
        assert stats.loss_ratio == 0.0

    def test_packet_validation(self):
        with pytest.raises(SimulationError):
            Packet(channel_id=1, size=0.0, created_at=0.0, sequence=0)
        with pytest.raises(SimulationError):
            Packet(channel_id=1, size=1.0, created_at=-1.0, sequence=0)
