"""Unit tests for time-weighted measurement."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.stats import Measurement


class TestTimeWeighting:
    def test_constant_value(self):
        m = Measurement(num_levels=3)
        m.begin(0.0, average_bandwidth=100.0, population=5)
        m.advance(10.0, 100.0, 5)
        result = m.result()
        assert result.average_bandwidth == pytest.approx(100.0)
        assert result.average_population == pytest.approx(5.0)
        assert result.duration == 10.0

    def test_step_change_weighted_by_duration(self):
        m = Measurement(num_levels=3)
        m.begin(0.0, 100.0, 1)
        m.advance(1.0, 400.0, 1)   # 100 held for 1 unit
        m.advance(4.0, 0.0, 0)     # 400 held for 3 units
        result = m.result()
        assert result.average_bandwidth == pytest.approx((100 * 1 + 400 * 3) / 4)
        assert result.final_average_bandwidth == 0.0

    def test_zero_length_intervals_are_free(self):
        m = Measurement(num_levels=3)
        m.begin(0.0, 100.0, 1)
        m.advance(0.0, 999.0, 1)
        m.advance(2.0, 0.0, 1)
        assert m.result().average_bandwidth == pytest.approx(999.0)

    def test_advance_before_begin_rejected(self):
        m = Measurement(num_levels=3)
        with pytest.raises(SimulationError):
            m.advance(1.0, 0.0, 0)

    def test_result_before_begin_rejected(self):
        with pytest.raises(SimulationError):
            Measurement(num_levels=3).result()

    def test_zero_duration_rejected(self):
        m = Measurement(num_levels=3)
        m.begin(0.0, 100.0, 1)
        with pytest.raises(SimulationError):
            m.result()

    def test_time_backwards_rejected(self):
        m = Measurement(num_levels=3)
        m.begin(5.0, 100.0, 1)
        with pytest.raises(SimulationError):
            m.advance(4.0, 100.0, 1)


class TestOccupancy:
    def test_histogram_normalised_and_averaged(self):
        m = Measurement(num_levels=3, occupancy_interval=1)
        m.begin(0.0, 0.0, 0)
        m.advance(1.0, 0.0, 0, level_histogram=[2, 2, 0])
        m.advance(2.0, 0.0, 0, level_histogram=[0, 0, 4])
        result = m.result()
        assert result.samples == 2
        assert np.allclose(result.level_occupancy, [0.25, 0.25, 0.5])

    def test_empty_histogram_ignored(self):
        m = Measurement(num_levels=3)
        m.begin(0.0, 0.0, 0)
        m.advance(1.0, 0.0, 0, level_histogram=[0, 0, 0])
        assert m.result().samples == 0

    def test_wrong_size_rejected(self):
        m = Measurement(num_levels=3)
        m.begin(0.0, 0.0, 0)
        with pytest.raises(SimulationError):
            m.advance(1.0, 0.0, 0, level_histogram=[1, 2])

    def test_wants_occupancy_period(self):
        m = Measurement(num_levels=3, occupancy_interval=2)
        m.begin(0.0, 0.0, 0)
        flags = []
        for t in range(1, 6):
            flags.append(m.wants_occupancy)
            m.advance(float(t), 0.0, 0)
        assert flags == [True, False, True, False, True]

    def test_describe_mentions_bandwidth(self):
        m = Measurement(num_levels=2)
        m.begin(0.0, 123.0, 7)
        m.advance(2.0, 123.0, 7)
        assert "avg bandwidth" in m.result().describe()


class TestValidation:
    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            Measurement(num_levels=0)
        with pytest.raises(SimulationError):
            Measurement(num_levels=2, occupancy_interval=0)
