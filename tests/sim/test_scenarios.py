"""Unit tests for canned workload scenarios."""

import pytest

from repro.errors import QoSSpecError
from repro.sim.scenarios import bandwidth_tiers, utility_classes, video_mix
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.topology.regular import complete_network


class TestVideoMix:
    def test_telemetry_cadence(self):
        factory = video_mix(telemetry_every=5)
        for i in range(20):
            qos = factory(i)
            if i % 5 == 0:
                assert qos.performance.b_min == 50.0
                assert not qos.performance.is_elastic()
            else:
                assert qos.performance.b_min == 100.0

    def test_premium_utility(self):
        factory = video_mix(premium_every=2, telemetry_every=100)
        assert factory(2).performance.utility == 4.0
        assert factory(3).performance.utility == 1.0

    def test_deterministic_in_index(self):
        factory = video_mix()
        assert factory(7) == factory(7)

    def test_invalid_periods(self):
        with pytest.raises(QoSSpecError):
            video_mix(premium_every=0)


class TestUtilityClasses:
    def test_round_robin(self):
        factory = utility_classes([1.0, 2.0, 5.0])
        assert [factory(i).performance.utility for i in range(6)] == [
            1.0, 2.0, 5.0, 1.0, 2.0, 5.0,
        ]

    def test_empty_rejected(self):
        with pytest.raises(QoSSpecError):
            utility_classes([])

    def test_backups_configurable(self):
        factory = utility_classes([1.0], num_backups=0)
        assert not factory(0).dependability.wants_backup


class TestBandwidthTiers:
    def test_tiers_cycle(self):
        factory = bandwidth_tiers([(50, 50, 50), (100, 500, 50)])
        audio = factory(0)
        video = factory(1)
        assert audio.performance.num_levels == 1
        assert video.performance.num_levels == 9
        assert factory(2) == audio

    def test_empty_rejected(self):
        with pytest.raises(QoSSpecError):
            bandwidth_tiers([])


class TestScenarioDrivesSimulator:
    def test_heterogeneous_run_completes(self):
        """The simulator accepts a mixed-levels factory; occupancy is
        clipped into the template's level count."""
        from repro.analysis.experiments import paper_connection_qos

        net = complete_network(8, 2000.0)
        config = SimulationConfig(
            qos=paper_connection_qos(),
            offered_connections=15,
            warmup_events=20,
            measure_events=120,
            qos_factory=video_mix(),
            check_invariants_every=20,
        )
        result = ElasticQoSSimulator(net, config, seed=9).run()
        assert result.initial_population > 0
        assert 50.0 <= result.average_bandwidth <= 500.0 + 1e-6
