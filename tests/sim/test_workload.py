"""Unit tests for workload generation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.workload import Workload, WorkloadConfig, constant_qos


@pytest.fixture
def workload(ring6, contract, rng):
    config = WorkloadConfig(
        arrival_rate=0.001,
        termination_rate=0.001,
        link_failure_rate=0.0001,
        repair_rate=0.01,
    )
    return Workload(ring6, constant_qos(contract), config, rng)


class TestConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadConfig(arrival_rate=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadConfig(arrival_rate=0.0, termination_rate=0.0, link_failure_rate=0.0)


class TestRequests:
    def test_distinct_endpoints(self, workload):
        for _ in range(100):
            src, dst, qos = workload.next_request()
            assert src != dst
            assert qos is not None

    def test_endpoints_in_topology(self, workload, ring6):
        nodes = set(ring6.nodes())
        for _ in range(50):
            src, dst, _ = workload.next_request()
            assert src in nodes and dst in nodes

    def test_factory_receives_index(self, ring6, rng):
        seen = []

        def factory(index):
            seen.append(index)
            return None

        config = WorkloadConfig()
        wl = Workload(ring6, factory, config, rng)
        wl.next_request()
        wl.next_request()
        assert seen == [0, 1]

    def test_needs_two_nodes(self, rng, contract):
        from repro.topology.graph import Network

        net = Network()
        net.add_node(0)
        with pytest.raises(SimulationError):
            Workload(net, constant_qos(contract), WorkloadConfig(), rng)


class TestVictimSelection:
    def test_termination_from_live(self, workload):
        assert workload.pick_termination([7, 8, 9]) in {7, 8, 9}

    def test_termination_empty_rejected(self, workload):
        with pytest.raises(SimulationError):
            workload.pick_termination([])

    def test_failure_from_alive(self, workload, ring6):
        links = ring6.link_ids()
        assert workload.pick_failure(links) in links

    def test_failure_empty_rejected(self, workload):
        with pytest.raises(SimulationError):
            workload.pick_failure([])

    def test_repair_empty_rejected(self, workload):
        with pytest.raises(SimulationError):
            workload.pick_repair([])


class TestEventRates:
    def test_rates_scale_with_counts(self, workload):
        rates = workload.event_rates(num_alive_links=6, num_failed_links=2, num_live=10)
        assert rates["churn"] == pytest.approx(0.002)
        assert rates["failure"] == pytest.approx(6 * 0.0001)
        assert rates["repair"] == pytest.approx(2 * 0.01)

    def test_no_terminations_without_connections(self, workload):
        rates = workload.event_rates(6, 0, num_live=0)
        assert rates["churn"] == pytest.approx(0.001)

    def test_draw_event_categories(self, workload):
        seen = set()
        for _ in range(500):
            delay, category = workload.draw_event(6, 1, 10)
            assert delay >= 0.0
            seen.add(category)
        assert "churn" in seen
        # failure/repair rates are high enough that 500 draws see them
        assert "repair" in seen

    def test_draw_event_zero_total_rejected(self, ring6, contract, rng):
        config = WorkloadConfig(
            arrival_rate=0.0, termination_rate=0.001, link_failure_rate=0.0
        )
        wl = Workload(ring6, constant_qos(contract), config, rng)
        with pytest.raises(SimulationError):
            wl.draw_event(6, 0, num_live=0)

    def test_mean_delay_matches_total_rate(self, workload):
        delays = [workload.draw_event(6, 0, 10)[0] for _ in range(3000)]
        rates = workload.event_rates(6, 0, 10)
        expected = 1.0 / sum(rates.values())
        assert np.mean(delays) == pytest.approx(expected, rel=0.1)
