"""Unit tests for Markov-parameter estimation from event impacts."""

import numpy as np
import pytest

from repro.channels.manager import NetworkManager
from repro.channels.records import EventImpact, EventKind
from repro.errors import EstimationError
from repro.sim.estimation import TransitionEstimator, _normalise


def arrival_impact(direct, conn_id=99, accepted=True):
    return EventImpact(
        kind=EventKind.ARRIVAL, conn_id=conn_id, accepted=accepted, direct=dict(direct)
    )


class TestNormalise:
    def test_rows_normalised(self):
        counts = np.array([[2.0, 2.0], [0.0, 4.0]])
        out = _normalise(counts)
        assert np.allclose(out, [[0.5, 0.5], [0.0, 1.0]])

    def test_empty_rows_become_uniform(self):
        out = _normalise(np.zeros((3, 3)))
        assert np.allclose(out, np.full((3, 3), 1.0 / 3.0))

    def test_input_not_mutated(self):
        counts = np.array([[1.0, 1.0], [0.0, 0.0]])
        _normalise(counts)
        assert counts[0, 0] == 1.0


class TestCounting:
    def test_arrival_counts_into_a(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        est.observe(arrival_impact({1: (2, 0), 2: (1, 1)}), manager, pre_event_live=4)
        assert est.a_counts[2, 0] == 1
        assert est.a_counts[1, 1] == 1
        assert est.a_counts.sum() == 2

    def test_termination_counts_into_t(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        impact = EventImpact(kind=EventKind.TERMINATION, conn_id=5, direct={1: (0, 2)})
        est.observe(impact, manager, pre_event_live=4)
        assert est.t_counts[0, 2] == 1
        assert est.a_counts.sum() == 0

    def test_failure_counts_into_f(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        impact = EventImpact(kind=EventKind.FAILURE, direct={1: (2, 0)})
        est.observe(impact, manager, pre_event_live=4)
        assert est.f_counts[2, 0] == 1

    def test_repair_is_ignored(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        est.observe(EventImpact(kind=EventKind.REPAIR), manager, pre_event_live=4)
        with pytest.raises(EstimationError):
            _ = est.pf


class TestPfEstimation:
    def test_pf_is_direct_fraction(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        est.observe(arrival_impact({1: (0, 0), 2: (0, 0)}), manager, pre_event_live=4)
        assert est.pf == pytest.approx(0.5)

    def test_pf_averages_over_events(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        est.observe(arrival_impact({1: (0, 0)}), manager, pre_event_live=4)   # 0.25
        est.observe(arrival_impact({}), manager, pre_event_live=4)            # 0.0
        assert est.pf == pytest.approx(0.125)

    def test_rejected_arrival_counts_zero_direct(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        est.observe(arrival_impact({}, accepted=False), manager, pre_event_live=4)
        assert est.pf == 0.0

    def test_pf_undefined_before_events(self, ring6):
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        with pytest.raises(EstimationError):
            _ = est.pf


class TestEstimate:
    def test_requires_observations(self):
        est = TransitionEstimator(num_levels=3, arrival_rate=1.0, termination_rate=1.0)
        with pytest.raises(EstimationError):
            est.estimate()

    def test_produces_valid_parameters(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(
            num_levels=3, arrival_rate=0.5, termination_rate=0.5, failure_rate=0.1
        )
        est.observe(arrival_impact({1: (2, 0)}), manager, pre_event_live=4)
        impact = EventImpact(kind=EventKind.TERMINATION, conn_id=5, direct={1: (0, 2)})
        est.observe(impact, manager, pre_event_live=4)
        params = est.estimate()
        assert params.num_levels == 3
        assert params.arrival_rate == 0.5
        assert params.failure_rate == 0.1
        assert params.a[2, 0] == 1.0
        assert params.t[0, 2] == 1.0
        assert 0.0 <= params.pf <= 1.0
        assert params.observations["a"] == 1

    def test_failure_matrix_optional(self, ring6):
        manager = NetworkManager(ring6)
        est = TransitionEstimator(num_levels=2, arrival_rate=1.0, termination_rate=1.0)
        est.observe(arrival_impact({1: (1, 0)}), manager, pre_event_live=2)
        est.observe(
            EventImpact(kind=EventKind.FAILURE, direct={1: (1, 0)}),
            manager,
            pre_event_live=2,
        )
        assert est.estimate().f is None
        with_f = est.estimate(use_failure_matrix=True)
        assert with_f.f is not None
        assert with_f.f[1, 0] == 1.0

    def test_validation_rejects_bad_levels(self):
        with pytest.raises(EstimationError):
            TransitionEstimator(num_levels=0, arrival_rate=1.0, termination_rate=1.0)
        with pytest.raises(EstimationError):
            TransitionEstimator(
                num_levels=2, arrival_rate=1.0, termination_rate=1.0, sample_interval=0
            )


class TestIndirectSampling:
    def test_sampled_arrival_counts_b(self, dumbbell3, contract_no_backup):
        """Drive a real manager so the indirect set is genuine."""
        manager = NetworkManager(dumbbell3)
        est = TransitionEstimator(
            num_levels=9, arrival_rate=1.0, termination_rate=1.0, sample_interval=1
        )
        # Two channels: A on leaf 1 - hub 0; B crossing 1-0-4-5.
        a, _ = manager.request_connection(1, 0, contract_no_backup)
        b, impact_b = manager.request_connection(2, 6, contract_no_backup)
        pre = 1
        est.observe(impact_b, manager, pre_event_live=pre)
        # A shares link (0,1)? A's path is [1,0]; B's path is [2,0,4,6]:
        # no shared link, but both touch node 0. A is indirect only if it
        # shares a link with a direct channel; with only two channels the
        # indirect set is empty, so B's arrival records ps = 0.
        assert est._ps_events == 1
        params = est.estimate()
        assert params.ps == 0.0
