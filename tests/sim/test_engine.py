"""Unit tests for the discrete-event scheduling engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_at(3.0, lambda: fired.append("c"))
        sched.schedule_at(1.0, lambda: fired.append("a"))
        sched.schedule_at(2.0, lambda: fired.append("b"))
        sched.run()
        assert fired == ["a", "b", "c"]
        assert sched.now == 3.0

    def test_simultaneous_events_fire_in_schedule_order(self):
        sched = EventScheduler()
        fired = []
        for label in "abc":
            sched.schedule_at(5.0, lambda l=label: fired.append(l))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_after(self):
        sched = EventScheduler()
        times = []
        sched.schedule_after(2.0, lambda: times.append(sched.now))
        sched.run()
        assert times == [2.0]

    def test_past_scheduling_rejected(self):
        sched = EventScheduler()
        sched.schedule_at(5.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule_at(1.0, lambda: fired.append("x"))
        sched.schedule_at(2.0, lambda: fired.append("y"))
        sched.cancel(handle)
        sched.run()
        assert fired == ["y"]

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        handle = sched.schedule_at(1.0, lambda: None)
        sched.cancel(handle)
        sched.cancel(handle)
        assert sched.run() == 0

    def test_peek_skips_cancelled(self):
        sched = EventScheduler()
        handle = sched.schedule_at(1.0, lambda: None)
        sched.schedule_at(2.0, lambda: None)
        sched.cancel(handle)
        assert sched.peek_time() == 2.0


class TestRunControl:
    def test_max_events(self):
        sched = EventScheduler()
        fired = []
        for t in range(5):
            sched.schedule_at(float(t), lambda t=t: fired.append(t))
        assert sched.run(max_events=3) == 3
        assert fired == [0, 1, 2]

    def test_until_is_inclusive_and_advances_clock(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_at(1.0, lambda: fired.append(1))
        sched.schedule_at(2.0, lambda: fired.append(2))
        sched.schedule_at(5.0, lambda: fired.append(5))
        sched.run(until=2.0)
        assert fired == [1, 2]
        assert sched.now == 2.0

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False

    def test_events_run_counter(self):
        sched = EventScheduler()
        sched.schedule_at(1.0, lambda: None)
        sched.run()
        assert sched.events_run == 1

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        fired = []

        def chain():
            fired.append(sched.now)
            if len(fired) < 3:
                sched.schedule_after(1.0, chain)

        sched.schedule_at(0.0, chain)
        sched.run()
        assert fired == [0.0, 1.0, 2.0]

    def test_len_counts_pending(self):
        sched = EventScheduler()
        sched.schedule_at(1.0, lambda: None)
        sched.schedule_at(2.0, lambda: None)
        assert len(sched) == 2
