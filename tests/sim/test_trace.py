"""Unit tests for event-trace recording, serialisation and verification."""

import pytest

from repro.channels.records import EventImpact, EventKind
from repro.errors import SimulationError
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.trace import TraceRecorder, verify_trace
from repro.topology.regular import complete_network


def arrival(time, conn_id, accepted=True, direct=None):
    return EventImpact(
        kind=EventKind.ARRIVAL,
        time=time,
        conn_id=conn_id,
        accepted=accepted,
        direct=direct or {},
    )


class TestRecorder:
    def test_records_accumulate(self):
        rec = TraceRecorder()
        rec.record(arrival(1.0, 0), population=1, average_bandwidth=500.0)
        rec.record(arrival(2.0, 1), population=2, average_bandwidth=400.0)
        assert len(rec) == 2
        assert rec.records[0].kind == "arrival"
        assert rec.records[1].population == 2

    def test_summary_counts(self):
        rec = TraceRecorder()
        rec.record(arrival(1.0, 0, direct={5: (3, 1)}), 1, 500.0)
        rec.record(arrival(2.0, 1, accepted=False), 1, 500.0)
        rec.record(
            EventImpact(kind=EventKind.TERMINATION, time=3.0, conn_id=0,
                        direct={5: (1, 4)}),
            0,
            0.0,
        )
        summary = rec.summary()
        assert summary.events == 3
        assert summary.arrivals == 2
        assert summary.accepted_arrivals == 1
        assert summary.terminations == 1
        assert summary.level_increases == 1
        assert summary.level_decreases == 1
        assert summary.acceptance_ratio == pytest.approx(0.5)
        assert summary.duration == pytest.approx(2.0)

    def test_empty_summary(self):
        summary = TraceRecorder().summary()
        assert summary.events == 0
        assert summary.acceptance_ratio == 1.0


class TestSerialisation:
    def test_json_roundtrip(self):
        rec = TraceRecorder()
        rec.record(arrival(1.5, 7, direct={2: (0, 3)}), 3, 250.0)
        rec.record(
            EventImpact(
                kind=EventKind.FAILURE, time=2.5, failed_link=(1, 4),
                activated=[7], dropped=[2], lost_backup=[3],
            ),
            2,
            200.0,
        )
        clone = TraceRecorder.from_json(rec.to_json())
        assert clone.records == rec.records

    def test_malformed_json_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecorder.from_json("not json{")


class TestVerifyTrace:
    def test_valid_simulator_trace(self, contract):
        net = complete_network(7, 2000.0)
        config = SimulationConfig(
            qos=contract,
            offered_connections=8,
            warmup_events=10,
            measure_events=60,
            record_trace=True,
        )
        result = ElasticQoSSimulator(net, config, seed=2).run()
        assert result.trace is not None
        assert len(result.trace) == 70
        verify_trace(result.trace, contract.performance.num_levels)

    def test_trace_off_by_default(self, contract):
        net = complete_network(7, 2000.0)
        config = SimulationConfig(
            qos=contract, offered_connections=4, warmup_events=5, measure_events=20
        )
        result = ElasticQoSSimulator(net, config, seed=2).run()
        assert result.trace is None

    def test_time_regression_detected(self):
        rec = TraceRecorder()
        rec.record(arrival(5.0, 0), 1, 100.0)
        rec.record(arrival(4.0, 1), 2, 100.0)
        with pytest.raises(SimulationError):
            verify_trace(rec, 9)

    def test_level_out_of_range_detected(self):
        rec = TraceRecorder()
        rec.record(arrival(1.0, 0, direct={3: (0, 12)}), 1, 100.0)
        with pytest.raises(SimulationError):
            verify_trace(rec, 9)

    def test_population_inconsistency_detected(self):
        rec = TraceRecorder()
        rec.record(arrival(1.0, 0), 1, 100.0)
        rec.record(arrival(2.0, 1), 5, 100.0)  # jumped by 4
        with pytest.raises(SimulationError):
            verify_trace(rec, 9)

    def test_failure_population_accounting(self):
        rec = TraceRecorder()
        rec.record(arrival(1.0, 0), 1, 100.0)
        rec.record(
            EventImpact(kind=EventKind.FAILURE, time=2.0, failed_link=(0, 1),
                        dropped=[0]),
            0,
            0.0,
        )
        verify_trace(rec, 9)
