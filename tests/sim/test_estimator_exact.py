"""Exact end-to-end estimator verification on a hand-computed scenario.

Drives the real manager through a deterministic event sequence on a
dumbbell topology where every level transition can be worked out by
hand, then checks the estimator's matrices entry by entry.  This is the
strongest guard against sign/orientation errors in the A/B/T pipeline.
"""

import numpy as np
import pytest

from repro.channels.manager import NetworkManager
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.sim.estimation import TransitionEstimator
from repro.topology.regular import dumbbell_network


def contract():
    # 5 levels: 100, 150, 200, 250, 300.
    return ConnectionQoS(
        performance=ElasticQoS(b_min=100.0, b_max=300.0, increment=50.0),
        dependability=DependabilityQoS(num_backups=0),
    )


@pytest.fixture
def setting():
    """Dumbbell with a 500 Kb/s bottleneck; leaves 1-3 left, 5-7 right."""
    net = dumbbell_network(3, 1000.0, bottleneck_capacity=500.0)
    manager = NetworkManager(net)
    estimator = TransitionEstimator(
        num_levels=5, arrival_rate=1.0, termination_rate=1.0, sample_interval=1
    )
    return net, manager, estimator


class TestHandComputedScenario:
    def test_arrival_and_termination_matrices(self, setting):
        net, manager, estimator = setting
        # Connection A crosses the bottleneck: pool 400 -> A rises to max (level 4).
        conn_a, _ = manager.request_connection(1, 5, contract())
        assert conn_a.level == 4

        # Connection B also crosses: A is directly chained, drops to 0,
        # then the 300-pool is split 3/3 (levels 3 and 3).
        pre_live = manager.num_live
        conn_b, impact_b = manager.request_connection(2, 6, contract())
        assert impact_b.direct == {conn_a.conn_id: (4, 3)}
        estimator.observe(impact_b, manager, pre_event_live=pre_live)

        # A: exactly one observation, 4 -> 3.
        assert estimator.a_counts.sum() == 1
        assert estimator.a_counts[4, 3] == 1
        # Pf sample: 1 direct channel / 1 pre-existing = 1.0.
        assert estimator.pf == pytest.approx(1.0)
        # Sampled arrival with no third channel: Ps = 0.
        assert estimator.ps == 0.0

        # Terminate B: A is directly chained and rises 3 -> 4.
        pre_live = manager.num_live
        impact_t = manager.terminate_connection(conn_b.conn_id)
        assert impact_t.direct == {conn_a.conn_id: (3, 4)}
        estimator.observe(impact_t, manager, pre_event_live=pre_live)
        assert estimator.t_counts.sum() == 1
        assert estimator.t_counts[3, 4] == 1

        params = estimator.estimate()
        assert params.a[4, 3] == 1.0
        assert params.t[3, 4] == 1.0
        # Unobserved rows became uniform (irreducibility prior).
        assert np.allclose(params.a[0], 0.2)

    def test_indirect_chaining_recorded_in_b(self, setting):
        net, manager, estimator = setting
        # A: leaf1 -> hub0 (left star only, links {(0,1)}).
        conn_a, _ = manager.request_connection(1, 0, contract())
        assert conn_a.level == 4  # 900 spare on its single link
        # C: crosses bottleneck via leaf1? No: use leaf3 -> leaf7 so C
        # shares no link with A yet; then B: leaf1 -> leaf5 shares (0,1)
        # with A and the bottleneck with C.
        conn_c, _ = manager.request_connection(3, 7, contract())
        assert conn_c.level == 4  # bottleneck pool 400
        pre_live = manager.num_live
        conn_b, impact_b = manager.request_connection(1, 5, impact_contract := contract())
        # B's path: 1-0-4-5. Direct: A (shares (0,1)) and C (shares (0,4)).
        assert set(impact_b.direct) == {conn_a.conn_id, conn_c.conn_id}
        estimator.observe(impact_b, manager, pre_event_live=pre_live)
        # No third channel exists outside the direct set: Ps sample = 0,
        # and B-matrix observations only come from indirect channels.
        assert estimator.b_counts.sum() == 0

        # Now terminate B and re-admit it while a bystander D exists that
        # overlaps A only (D: leaf2 -> hub0 shares link (0,2)? no - D must
        # share a link with a direct channel but not with B).
        manager.terminate_connection(conn_b.conn_id)
        conn_d, _ = manager.request_connection(2, 0, contract())  # link (0,2)
        # D shares node 0 but no link with B's path (1-0-4-5)? B uses
        # links (0,1),(0,4),(4,5); D uses (0,2): disjoint -> D indirect
        # via A? A uses (0,1) and D uses (0,2): they do NOT overlap.
        # Build the overlap through C instead: E crosses the bottleneck
        # from leaf3 side: E: 3 -> 0 uses (0,3): still no overlap with C.
        # Instead make D share a link with C: D2: leaf7 -> hub4 ((4,7)).
        conn_d2, _ = manager.request_connection(7, 4, contract())
        pre_live = manager.num_live
        conn_b2, impact_b2 = manager.request_connection(1, 5, contract())
        # Direct with B2: A ((0,1)), C ((0,4) bottleneck? C's path is
        # 3-0-4-7: shares (0,4)), D2 shares (4,5)? D2 uses (4,7) only ->
        # not direct. D ((0,2)) not direct.
        assert conn_a.conn_id in impact_b2.direct
        assert conn_c.conn_id in impact_b2.direct
        assert conn_d2.conn_id not in impact_b2.direct
        estimator2 = TransitionEstimator(
            num_levels=5, arrival_rate=1.0, termination_rate=1.0, sample_interval=1
        )
        estimator2.observe(impact_b2, manager, pre_event_live=pre_live)
        # D2 shares (4,7) with C (direct channel) -> indirectly chained.
        # D ((0,2)) shares a link with A? A uses (0,1) only -> D is NOT
        # indirect; it overlaps nobody.
        assert estimator2.ps == pytest.approx(1 / 4)
        assert estimator2.b_counts.sum() == 1

    def test_failure_counts_into_f(self, setting):
        net, manager, estimator = setting
        conn_a, _ = manager.request_connection(1, 5, contract())
        pre_live = manager.num_live
        impact = manager.fail_link((0, 4))  # bottleneck: kills A (no backup)
        estimator.observe(impact, manager, pre_event_live=pre_live)
        assert estimator.f_counts[4, 0] == 1
        params = estimator.estimate(use_failure_matrix=True)
        assert params.f is not None
        assert params.f[4, 0] == 1.0
