"""Integration-ish unit tests for the end-to-end simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.workload import WorkloadConfig
from repro.topology.regular import complete_network, ring_network


def small_config(contract, **overrides):
    base = dict(
        qos=contract,
        offered_connections=10,
        warmup_events=20,
        measure_events=60,
        sample_interval=5,
        check_invariants_every=10,
    )
    base.update(overrides)
    return SimulationConfig(**base)


@pytest.fixture
def net():
    return complete_network(8, 2000.0)


class TestConfigValidation:
    def test_negative_offered_rejected(self, contract):
        with pytest.raises(SimulationError):
            SimulationConfig(qos=contract, offered_connections=-1)

    def test_bad_setup_mode_rejected(self, contract):
        with pytest.raises(SimulationError):
            SimulationConfig(qos=contract, offered_connections=1, setup_mode="magic")

    def test_bad_event_counts_rejected(self, contract):
        with pytest.raises(SimulationError):
            SimulationConfig(qos=contract, offered_connections=1, measure_events=0)


class TestSetup:
    def test_offered_mode_tries_exactly_n(self, net, contract):
        sim = ElasticQoSSimulator(net, small_config(contract), seed=3)
        live = sim.establish_initial_population()
        assert sim.manager.stats.requests == 10
        assert live == sim.manager.num_live
        assert live > 0

    def test_accepted_mode_reaches_target(self, net, contract):
        sim = ElasticQoSSimulator(
            net, small_config(contract, setup_mode="accepted"), seed=3
        )
        live = sim.establish_initial_population()
        assert live == 10

    def test_accepted_mode_raises_when_impossible(self, contract):
        tiny = ring_network(3, 150.0)
        sim = ElasticQoSSimulator(
            tiny,
            small_config(contract, offered_connections=30, setup_mode="accepted"),
            seed=3,
        )
        with pytest.raises(SimulationError):
            sim.establish_initial_population()

    def test_setup_redistributes_extras(self, net, contract):
        sim = ElasticQoSSimulator(net, small_config(contract), seed=3)
        sim.establish_initial_population()
        # Light load on a rich topology: everyone should sit above minimum.
        assert sim.manager.average_live_bandwidth() > 100.0


class TestRun:
    def test_run_produces_result(self, net, contract):
        result = ElasticQoSSimulator(net, small_config(contract), seed=5).run()
        assert result.events == 80
        assert result.end_time > 0
        assert 100.0 - 1e-6 <= result.average_bandwidth <= 500.0 + 1e-6
        assert result.initial_population > 0
        assert result.topology_nodes == 8
        assert abs(result.level_occupancy.sum() - 1.0) < 1e-6

    def test_deterministic_given_seed(self, net, contract):
        r1 = ElasticQoSSimulator(net, small_config(contract), seed=7).run()
        r2 = ElasticQoSSimulator(net, small_config(contract), seed=7).run()
        assert r1.average_bandwidth == r2.average_bandwidth
        assert r1.end_time == r2.end_time
        assert np.array_equal(r1.params.a, r2.params.a)

    def test_different_seeds_differ(self, net, contract):
        r1 = ElasticQoSSimulator(net, small_config(contract), seed=1).run()
        r2 = ElasticQoSSimulator(net, small_config(contract), seed=2).run()
        assert r1.end_time != r2.end_time

    def test_balanced_mode_pins_population(self, net, contract):
        cfg = small_config(contract, offered_connections=12, measure_events=100)
        result = ElasticQoSSimulator(net, cfg, seed=5).run()
        # Balanced churn keeps population within one of the initial value.
        assert abs(result.measurement.average_population - result.initial_population) <= 1.5

    def test_unbalanced_mode_runs(self, net, contract):
        cfg = small_config(
            contract, workload=WorkloadConfig(balanced=False), measure_events=80
        )
        result = ElasticQoSSimulator(net, cfg, seed=5).run()
        assert result.events == 100

    def test_failures_injected(self, net, contract):
        cfg = small_config(
            contract,
            workload=WorkloadConfig(
                link_failure_rate=0.001 / 28, repair_rate=0.01
            ),
            measure_events=150,
        )
        result = ElasticQoSSimulator(net, cfg, seed=11).run()
        assert result.manager_stats.link_failures > 0
        # Parameters carry the network-wide failure rate.
        assert result.params.failure_rate == pytest.approx(0.001)

    def test_params_are_valid(self, net, contract):
        result = ElasticQoSSimulator(net, small_config(contract), seed=5).run()
        params = result.params
        assert params.num_levels == 9
        assert np.allclose(params.a.sum(axis=1), 1.0)
        assert np.allclose(params.b.sum(axis=1), 1.0)
        assert np.allclose(params.t.sum(axis=1), 1.0)
        assert 0.0 <= params.pf + params.ps <= 1.0 + 1e-9
