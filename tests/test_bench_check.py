"""Unit tests for the ``benchmarks/bench_check.py`` regression gate.

The gate is a pure JSON diff, so the tests exercise it end-to-end on
synthetic artifacts: lineage baseline selection, the regression
tolerance, calibration scaling (including the dead band), and the
cross-core supremacy check.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import bench_check  # noqa: E402


def _run(label, core, calib, request_us, failrep_us):
    return {
        "label": label,
        "core": core,
        "calib_us": calib,
        "results": {
            "test_request_connection": {"median_us": request_us},
            "test_failure_and_repair": {"median_us": failrep_us},
        },
    }


def _artifact(tmp_path: Path, runs) -> Path:
    path = tmp_path / "BENCH.json"
    # Synthetic throwaway fixture; atomicity is irrelevant here.
    path.write_text(  # repro-lint: disable=ART001
        json.dumps({"benchmark": "bench_core_ops", "runs": runs})
    )
    return path


class TestCalibrationScale:
    def test_missing_calibration_is_unscaled(self):
        assert bench_check.calibration_scale(None, 5000.0) == 1.0
        assert bench_check.calibration_scale(5000.0, None) == 1.0

    def test_same_machine_jitter_is_dead_banded(self):
        # 0.83x and 1.25x are canary noise on one machine, not a
        # hardware difference — the ratio must not be applied.
        assert bench_check.calibration_scale(4343.8, 5212.2) == 1.0
        assert bench_check.calibration_scale(5212.2, 4343.8) == 1.0

    def test_machine_class_difference_scales(self):
        assert bench_check.calibration_scale(10000.0, 5000.0) == pytest.approx(2.0)
        assert bench_check.calibration_scale(5000.0, 10000.0) == pytest.approx(0.5)


class TestLineageGate:
    def test_first_run_of_a_core_passes_vacuously(self, tmp_path):
        art = _artifact(
            tmp_path,
            [_run("obj", "object", 5000.0, 500.0, 7.0),
             _run("arr", "array", 5000.0, 450.0, 5.0)],
        )
        # The array run has no earlier array run; cross-core passes too.
        assert bench_check.main(["--artifact", str(art)]) == 0

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        art = _artifact(
            tmp_path,
            [_run("a1", "array", 5000.0, 500.0, 5.0),
             _run("a2", "array", 5000.0, 600.0, 5.0)],
        )
        assert bench_check.main(
            ["--artifact", str(art), "--no-cross-core"]
        ) == 1

    def test_baseline_skips_other_core_runs(self, tmp_path):
        art = _artifact(
            tmp_path,
            [_run("a1", "array", 5000.0, 500.0, 5.0),
             _run("obj", "object", 5000.0, 100.0, 1.0),
             _run("a2", "array", 5000.0, 510.0, 5.0)],
        )
        # Against 'obj' this would be a 5x regression; against the
        # true same-core baseline 'a1' it is within tolerance.
        assert bench_check.main(
            ["--artifact", str(art), "--no-cross-core"]
        ) == 0

    def test_genuine_machine_difference_is_normalized(self, tmp_path):
        # Baseline machine ran 2x faster (calib 2500 vs 5000): raw
        # medians doubled, but the scaled comparison passes.
        art = _artifact(
            tmp_path,
            [_run("a1", "array", 2500.0, 250.0, 2.5),
             _run("a2", "array", 5000.0, 500.0, 5.0)],
        )
        assert bench_check.main(
            ["--artifact", str(art), "--no-cross-core"]
        ) == 0


class TestCrossCoreGate:
    def test_array_loss_fails(self, tmp_path):
        art = _artifact(
            tmp_path,
            [_run("obj", "object", 5000.0, 400.0, 5.0),
             _run("arr", "array", 5000.0, 450.0, 4.0)],
        )
        assert bench_check.main(["--artifact", str(art)]) == 1

    def test_array_win_passes_and_flag_disables(self, tmp_path):
        art = _artifact(
            tmp_path,
            [_run("obj", "object", 5000.0, 400.0, 5.0),
             _run("arr", "array", 5000.0, 460.0, 4.0)],
        )
        assert bench_check.main(["--artifact", str(art)]) == 1
        assert bench_check.main(["--artifact", str(art), "--no-cross-core"]) == 0

    def test_single_core_artifact_skips(self, tmp_path):
        art = _artifact(tmp_path, [_run("obj", "object", 5000.0, 400.0, 5.0)])
        assert bench_check.main(["--artifact", str(art)]) == 0
