"""Tests for small helpers not covered elsewhere."""

import pytest

from repro.errors import TopologyError
from repro.routing.shortest import reachable_filterless
from repro.topology.graph import Network, iter_adjacent
from repro.topology.regular import line_network


class TestIterAdjacent:
    def test_yields_neighbor_and_link(self, ring6):
        pairs = list(iter_adjacent(ring6, 0))
        assert [nbr for nbr, _ in pairs] == [1, 5]
        assert all(link.id in {(0, 1), (0, 5)} for _, link in pairs)

    def test_unknown_node(self, ring6):
        with pytest.raises(TopologyError):
            list(iter_adjacent(ring6, 42))


class TestReachableFilterless:
    def test_connected_component(self):
        net = Network()
        net.add_link(0, 1, 1.0)
        net.add_link(1, 2, 1.0)
        net.add_link(5, 6, 1.0)
        assert reachable_filterless(net, 0) == {0, 1, 2}
        assert reachable_filterless(net, 5) == {5, 6}


class TestIsMaximalNegative:
    def test_detects_non_maximal_allocation(self, elastic_qos):
        from repro.elastic.redistribute import is_maximal
        from repro.network.state import NetworkState

        class Chan:
            def __init__(self, cid, links, qos):
                self.conn_id = cid
                self.primary_links = links
                self.level = 0
                self._qos = qos

            @property
            def elastic_qos(self):
                return self._qos

        state = NetworkState(line_network(3, 1000.0))
        chan = Chan(1, [(0, 1)], elastic_qos)
        state.reserve_primary_path(1, chan.primary_links, elastic_qos.b_min)
        # Plenty of spare, level still 0: not maximal.
        assert not is_maximal(state, {1: chan}, [1])


class TestTraceSummaryRepairs:
    def test_repairs_counted(self):
        from repro.channels.records import EventImpact, EventKind
        from repro.sim.trace import TraceRecorder

        rec = TraceRecorder()
        rec.record(EventImpact(kind=EventKind.FAILURE, time=1.0, failed_link=(0, 1)), 0, 0.0)
        rec.record(EventImpact(kind=EventKind.REPAIR, time=2.0, failed_link=(0, 1)), 0, 0.0)
        summary = rec.summary()
        assert summary.failures == 1
        assert summary.repairs == 1


class TestModelSolutionHelpers:
    def test_occupancy_matches_pi(self):
        import numpy as np

        from repro.markov.model import ElasticQoSMarkovModel
        from repro.markov.parameters import (
            MarkovParameters,
            uniform_downward_matrix,
            uniform_upward_matrix,
        )
        from repro.qos.spec import ElasticQoS

        qos = ElasticQoS(b_min=100.0, b_max=200.0, increment=50.0)
        params = MarkovParameters(
            num_levels=3,
            pf=0.5,
            ps=0.3,
            a=uniform_downward_matrix(3),
            b=uniform_upward_matrix(3),
            t=uniform_upward_matrix(3),
            arrival_rate=1.0,
            termination_rate=1.0,
        )
        sol = ElasticQoSMarkovModel(qos, params).solve()
        assert sol.occupancy(1) == pytest.approx(float(sol.pi[1]))
        assert np.allclose(sol.level_bandwidths, [100.0, 150.0, 200.0])
