"""Acceptance test for the fault-injection subsystem (ISSUE criteria).

A long fault-heavy run on the paper's Random (Waxman) topology with
correlated failures, activation faults and the after-every-failure audit
must complete with zero invariant violations while actually exercising
the double-failure machinery (nonzero double-failure drops).
"""

import numpy as np

from repro.analysis.experiments import paper_connection_qos
from repro.faults import AuditPolicy, FaultConfig
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.workload import WorkloadConfig
from repro.topology.waxman import paper_random_network


def fault_run(faults, events=50_000, seed=17, gamma=5e-4):
    net = paper_random_network(
        155_000.0, np.random.default_rng(42), n=24, target_edges=45
    )
    config = SimulationConfig(
        qos=paper_connection_qos(),
        workload=WorkloadConfig(
            arrival_rate=0.001,
            termination_rate=0.001,
            link_failure_rate=gamma,
            repair_rate=1.0,
        ),
        offered_connections=120,
        warmup_events=events // 50,
        measure_events=events - events // 50,
        sample_interval=10.0,
        faults=faults,
        audit=AuditPolicy(after_failure=True),
    )
    return ElasticQoSSimulator(net, config, seed=seed).run()


def test_burst_and_activation_faults_survive_50k_events_audited():
    """The ISSUE's acceptance run: bursts + activation faults, audited."""
    result = fault_run(
        FaultConfig(mode="burst", burst_size=3, activation_fault_prob=0.2)
    )
    # Completing at all means every after-failure invariant audit passed.
    assert result.events == 50_000
    assert result.audit_checks > 1000
    stats = result.manager_stats
    assert stats.double_failure_drops > 0
    assert stats.activation_faults > 0
    assert stats.backups_activated > 0
    # Only currently-failed links separate failures from repairs.
    assert 0 <= stats.link_failures - stats.link_repairs <= 45


def test_node_failure_bursts_survive_audited():
    result = fault_run(
        FaultConfig(mode="node", activation_fault_prob=0.2),
        events=20_000,
        gamma=2e-4,
    )
    stats = result.manager_stats
    assert result.audit_checks > 100
    assert stats.node_failures > 0
    assert stats.double_failure_drops > 0
    assert stats.activation_faults > 0


def test_markov_heterogeneous_rates_survive_audited():
    result = fault_run(
        FaultConfig(mode="markov", rate_spread=0.8, rate_seed=5),
        events=20_000,
    )
    assert result.audit_checks > 100
    assert result.manager_stats.link_failures > 0
    assert result.manager_stats.link_repairs > 0


def test_fault_runs_are_seed_deterministic():
    faults = FaultConfig(mode="burst", burst_size=3, activation_fault_prob=0.2)
    a = fault_run(faults, events=5_000)
    b = fault_run(faults, events=5_000)
    assert a.average_bandwidth == b.average_bandwidth
    assert a.end_time == b.end_time
    assert a.manager_stats == b.manager_stats
