"""Integration tests for non-default configurations of the full pipeline."""

import numpy as np
import pytest

from repro.analysis.experiments import paper_connection_qos
from repro.elastic.policies import MaxUtility, UtilityProportional
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.workload import WorkloadConfig
from repro.topology.waxman import paper_random_network


@pytest.fixture(scope="module")
def small_net():
    rng = np.random.default_rng(31)
    return paper_random_network(10_000.0, rng, n=25, target_edges=55)


def run_sim(net, seed=4, **overrides):
    base = dict(
        qos=paper_connection_qos(),
        offered_connections=60,
        warmup_events=50,
        measure_events=250,
        check_invariants_every=50,
    )
    base.update(overrides)
    return ElasticQoSSimulator(net, SimulationConfig(**base), seed=seed).run()


class TestFloodingSimulation:
    def test_flooding_run_matches_dijkstra_closely(self, small_net):
        dij = run_sim(small_net, routing="dijkstra")
        flood = run_sim(small_net, routing="flooding")
        # Same request sequence, equivalent route quality: the measured
        # averages agree within simulation noise.
        assert flood.average_bandwidth == pytest.approx(
            dij.average_bandwidth, rel=0.15
        )
        assert flood.manager_stats.accepted >= 0.8 * dij.manager_stats.accepted


class TestPolicySimulations:
    @pytest.mark.parametrize("policy", [UtilityProportional(), MaxUtility()])
    def test_policies_run_clean(self, small_net, policy):
        result = run_sim(small_net, policy=policy)
        assert 100.0 - 1e-6 <= result.average_bandwidth <= 500.0 + 1e-6
        params = result.params
        assert np.allclose(params.a.sum(axis=1), 1.0)


class TestReestablishmentUnderChurnAndFailures:
    def test_invariants_hold_with_reestablishment(self, small_net):
        config = SimulationConfig(
            qos=paper_connection_qos(),
            offered_connections=50,
            warmup_events=30,
            measure_events=300,
            workload=WorkloadConfig(
                link_failure_rate=0.001 / small_net.num_links * 20,
                repair_rate=0.05,
            ),
            check_invariants_every=25,
        )
        sim = ElasticQoSSimulator(small_net, config, seed=8)
        sim.manager.reestablish_backups = True
        result = sim.run()
        stats = result.manager_stats
        assert stats.link_failures > 0
        # With a rich topology and re-establishment on, at least some
        # lost backups are replaced over the run.
        if stats.backups_lost:
            assert stats.backups_reestablished >= 0
        sim.manager.check_invariants()

    def test_unbalanced_churn_with_failures(self, small_net):
        config = SimulationConfig(
            qos=paper_connection_qos(),
            offered_connections=40,
            warmup_events=30,
            measure_events=300,
            workload=WorkloadConfig(
                balanced=False,
                link_failure_rate=0.0005 / small_net.num_links * 20,
                repair_rate=0.05,
            ),
            check_invariants_every=25,
        )
        result = ElasticQoSSimulator(small_net, config, seed=12).run()
        assert result.measurement.duration > 0
