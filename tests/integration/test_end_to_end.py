"""End-to-end integration tests: simulator vs. Markov model vs. paper shapes.

These are the in-suite versions of the benchmark checks: moderate sizes,
seeded, asserting the qualitative properties the paper reports rather
than absolute numbers.
"""

import numpy as np
import pytest

from repro.analysis.ideal import ideal_for_network
from repro.markov.model import ElasticQoSMarkovModel
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.workload import WorkloadConfig
from repro.topology.waxman import paper_random_network

CAPACITY = 10_000.0


@pytest.fixture(scope="module")
def network():
    rng = np.random.default_rng(42)
    return paper_random_network(CAPACITY, rng, n=60, target_edges=130)


def paper_contract():
    return ConnectionQoS(
        performance=ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0),
        dependability=DependabilityQoS(num_backups=1),
    )


def run(network, offered, seed=9, measure=1200, **workload_kwargs):
    config = SimulationConfig(
        qos=paper_contract(),
        offered_connections=offered,
        warmup_events=200,
        measure_events=measure,
        sample_interval=10,
        workload=WorkloadConfig(**workload_kwargs) if workload_kwargs else WorkloadConfig(),
    )
    return ElasticQoSSimulator(network, config, seed=seed).run()


class TestModelTracksSimulation:
    @pytest.mark.parametrize("offered", [200, 600])
    def test_average_bandwidth_agreement(self, network, offered):
        result = run(network, offered)
        model = ElasticQoSMarkovModel(paper_contract().performance, result.params)
        analytic = model.average_bandwidth()
        # The paper reports close sim/model agreement; we allow 15%.
        assert analytic == pytest.approx(result.average_bandwidth, rel=0.15)

    def test_occupancy_distribution_agreement(self, network):
        result = run(network, 400, measure=2000)
        model = ElasticQoSMarkovModel(paper_contract().performance, result.params)
        pi = model.solve().pi
        # Total-variation distance between empirical and analytic pi.
        tv = 0.5 * np.abs(pi - result.level_occupancy).sum()
        assert tv < 0.25


class TestPaperShapes:
    def test_bandwidth_decreases_with_load(self, network):
        light = run(network, 100, measure=600)
        heavy = run(network, 800, measure=600)
        assert light.average_bandwidth > heavy.average_bandwidth
        assert heavy.average_bandwidth >= 100.0 - 1e-6

    def test_light_load_saturates_at_maximum(self, network):
        result = run(network, 30, measure=400)
        assert result.average_bandwidth == pytest.approx(500.0, rel=0.05)

    def test_sim_between_min_and_ideal_at_overload(self, network):
        offered = 1200
        result = run(network, offered, measure=600)
        ideal = ideal_for_network(network, offered)
        # Overloaded: admitted channels keep at least b_min, which
        # exceeds the (unclamped) ideal equal share.
        assert result.average_bandwidth >= min(ideal, 100.0) - 1e-6
        assert result.average_bandwidth <= 500.0 + 1e-6

    def test_small_failure_rate_has_no_visible_effect(self, network):
        """Figure 4's flatness: tiny gamma leaves the average unchanged."""
        base = run(network, 400, measure=800)
        gamma_net = 1e-6  # network-wide
        with_failures = run(
            network,
            400,
            measure=800,
            link_failure_rate=gamma_net / network.num_links,
            repair_rate=1.0,
        )
        assert with_failures.average_bandwidth == pytest.approx(
            base.average_bandwidth, rel=0.1
        )

    def test_gamma_sweep_flat_in_model(self, network):
        result = run(network, 400, measure=800)
        perf = paper_contract().performance
        values = []
        for gamma in (1e-7, 1e-6, 1e-5, 1e-4):
            model = ElasticQoSMarkovModel(
                perf, result.params.with_failure_rate(gamma)
            )
            values.append(model.average_bandwidth())
        # While gamma << lambda (=1e-3) the curve is flat within 2%...
        flat = values[:3]
        assert max(flat) - min(flat) < 0.02 * max(flat)
        # ...and extra failure pressure can only push bandwidth down.
        assert values == sorted(values, reverse=True)


class TestEstimatedParameterShape:
    def test_a_mass_at_or_below_diagonal(self, network):
        """Arrivals exert downward pressure: the A matrix's observed rows
        put (almost) all mass at or below the diagonal."""
        result = run(network, 600, measure=1000)
        a = result.params.a
        n = result.params.num_levels
        observed_rows = [
            i for i in range(n) if not np.allclose(a[i], np.full(n, 1.0 / n))
        ]
        assert observed_rows, "no observed rows at all"
        for i in observed_rows:
            upward = a[i, i + 1 :].sum()
            assert upward < 0.05

    def test_t_mass_at_or_above_diagonal(self, network):
        result = run(network, 600, measure=1000)
        t = result.params.t
        n = result.params.num_levels
        observed_rows = [
            i for i in range(n) if not np.allclose(t[i], np.full(n, 1.0 / n))
        ]
        for i in observed_rows:
            downward = t[i, :i].sum()
            assert downward < 1e-9  # terminations never push levels down

    def test_b_strictly_upward(self, network):
        result = run(network, 600, measure=1000)
        b = result.params.b
        n = result.params.num_levels
        observed_rows = [
            i for i in range(n) if not np.allclose(b[i], np.full(n, 1.0 / n))
        ]
        for i in observed_rows:
            assert b[i, :i].sum() < 1e-9

    def test_pf_ps_plausible(self, network):
        result = run(network, 600, measure=1000)
        assert 0.0 < result.params.pf < 0.8
        assert 0.0 < result.params.ps <= 1.0
        assert result.params.pf + result.params.ps <= 1.0 + 1e-9
