"""Unit tests for link-disjoint backup routing."""


from repro.routing.disjoint import disjoint_path, paths_link_disjoint, shared_links
from repro.topology.graph import Network


class TestDisjointPath:
    def test_ring_gives_other_arc(self, ring6):
        primary = [0, 1, 2]
        avoid = frozenset(ring6.path_links(primary))
        result = disjoint_path(ring6, 0, 2, avoid)
        assert result is not None
        path, overlap = result
        assert overlap == 0
        assert path == [0, 5, 4, 3, 2]
        assert paths_link_disjoint(ring6, primary, path)

    def test_line_has_no_disjoint_path(self, line5):
        primary = [0, 1, 2]
        avoid = frozenset(line5.path_links(primary))
        # Fully disjoint impossible; maximally-disjoint returns the same
        # route with full overlap.
        result = disjoint_path(line5, 0, 2, avoid, allow_partial=True)
        assert result is not None
        path, overlap = result
        assert path == [0, 1, 2]
        assert overlap == 2

    def test_no_partial_means_none(self, line5):
        avoid = frozenset(line5.path_links([0, 1, 2]))
        assert disjoint_path(line5, 0, 2, avoid, allow_partial=False) is None

    def test_partial_overlap_minimised(self):
        """Theta graph: overlap-1 route must beat overlap-2 route."""
        net = Network()
        # primary: 0-1-2; alternative sharing one link: 0-1-3-2;
        # detour avoiding everything: none (no third branch from 0).
        net.add_link(0, 1, 1.0)
        net.add_link(1, 2, 1.0)
        net.add_link(1, 3, 1.0)
        net.add_link(3, 2, 1.0)
        avoid = frozenset(net.path_links([0, 1, 2]))
        path, overlap = disjoint_path(net, 0, 2, avoid)
        assert overlap == 1  # only (0,1) is shared
        assert path == [0, 1, 3, 2]

    def test_link_filter_applies(self, ring6):
        avoid = frozenset(ring6.path_links([0, 1, 2]))
        # Also forbid (4,5): now no fully disjoint route remains, and the
        # maximally-disjoint fallback must re-use primary links.
        result = disjoint_path(
            ring6, 0, 2, avoid, link_filter=lambda l: l.id != (4, 5)
        )
        assert result is not None
        path, overlap = result
        assert overlap > 0

    def test_fully_blocked_returns_none(self, ring6):
        avoid = frozenset(ring6.path_links([0, 1, 2]))
        assert (
            disjoint_path(ring6, 0, 2, avoid, link_filter=lambda l: False) is None
        )


class TestPathRelations:
    def test_shared_links(self, ring6):
        a = [0, 1, 2, 3]
        b = [5, 0, 1, 2]
        assert shared_links(ring6, a, b) == [(0, 1), (1, 2)]

    def test_disjoint_predicate(self, ring6):
        assert paths_link_disjoint(ring6, [0, 1, 2], [0, 5, 4, 3])
        assert not paths_link_disjoint(ring6, [0, 1, 2], [1, 2, 3])
