"""Unit tests for the generation-invalidated candidate-route cache."""

from __future__ import annotations

import pytest

from repro.channels.manager import NetworkManager
from repro.network.state import NetworkState
from repro.routing.cache import NO_ROUTE, RouteCache
from repro.routing.shortest import bfs_path_rows
from repro.topology.graph import Network


def admit_live(ls):
    """Admission that only rejects failed links (pure connectivity)."""
    return not ls.failed


def make_cache(net, **kwargs):
    state = NetworkState(net)
    return state, RouteCache(net, state, **kwargs)


class TestPrimaryRoute:
    def test_hit_matches_filtered_bfs(self, grid33):
        state, cache = make_cache(grid33)
        found = cache.primary_route(0, 8, admit_live)
        assert found is not None and found is not NO_ROUTE
        path, links = found
        reference = bfs_path_rows(
            state.adjacency_rows(), 0, 8, lambda lid, ls: not ls.failed
        )
        assert path == reference
        assert links == [tuple(sorted(p)) for p in zip(path, path[1:])]
        assert cache.hits == 1

    def test_repeat_lookup_reuses_entry(self, grid33):
        _state, cache = make_cache(grid33)
        first = cache.primary_route(0, 8, admit_live)
        second = cache.primary_route(0, 8, admit_live)
        assert first == second
        assert len(cache) == 1
        assert cache.hits == 2

    def test_returned_candidate_is_a_copy(self, ring6):
        _state, cache = make_cache(ring6)
        path, links = cache.primary_route(0, 3, admit_live)
        path.append(99)
        links.clear()
        again_path, again_links = cache.primary_route(0, 3, admit_live)
        assert 99 not in again_path
        assert again_links

    def test_admission_skips_to_second_candidate(self, ring6):
        _state, cache = make_cache(ring6)
        # Reject the clockwise arc by admission: the counter-clockwise
        # route must be returned, exactly like a filtered BFS would.
        found = cache.primary_route(0, 3, lambda ls: ls.link != (0, 1))
        path, _links = found
        assert path == [0, 5, 4, 3]

    def test_probe_limit_fallback(self, grid33):
        _state, cache = make_cache(grid33, probe_limit=2)
        # Nothing admits: with more than two raw candidates available the
        # cache must give up (None), not claim NO_ROUTE.
        result = cache.primary_route(0, 8, lambda ls: False)
        assert result is None
        assert cache.fallbacks == 1

    def test_exhaustion_proves_no_route(self, ring6):
        _state, cache = make_cache(ring6, probe_limit=8)
        # Only two simple routes exist between opposite ring nodes; with
        # both rejected and the probe budget larger, exhaustion is proof.
        assert cache.primary_route(0, 3, lambda ls: False) is NO_ROUTE

    def test_disconnected_pair_is_no_route(self):
        net = Network()
        net.add_link(0, 1, 100.0)
        net.add_link(2, 3, 100.0)
        _state, cache = make_cache(net)
        assert cache.primary_route(0, 3, admit_live) is NO_ROUTE

    def test_probe_limit_must_be_positive(self, ring6):
        state = NetworkState(ring6)
        with pytest.raises(ValueError):
            RouteCache(ring6, state, probe_limit=0)


class TestGenerationInvalidation:
    def test_failure_invalidates_candidates(self, ring6):
        state, cache = make_cache(ring6)
        path, _ = cache.primary_route(0, 3, admit_live)
        assert path == [0, 1, 2, 3]
        state.fail_link((1, 2))
        path, _ = cache.primary_route(0, 3, admit_live)
        assert path == [0, 5, 4, 3]

    def test_repair_invalidates_again(self, ring6):
        state, cache = make_cache(ring6)
        state.fail_link((1, 2))
        path, _ = cache.primary_route(0, 3, admit_live)
        assert path == [0, 5, 4, 3]
        state.repair_link((1, 2))
        path, _ = cache.primary_route(0, 3, admit_live)
        assert path == [0, 1, 2, 3]

    def test_generation_counter_bumps(self, ring6):
        state, _cache = make_cache(ring6)
        g0 = state.generation
        state.fail_link((0, 1))
        state.repair_link((0, 1))
        assert state.generation == g0 + 2

    def test_clear_drops_entries(self, ring6):
        _state, cache = make_cache(ring6)
        cache.primary_route(0, 3, admit_live)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestRawDisjointBackup:
    def test_finds_disjoint_arc(self, ring6):
        _state, cache = make_cache(ring6)
        primary = [0, 1, 2, 3]
        avoid = frozenset(tuple(sorted(p)) for p in zip(primary, primary[1:]))
        cand = cache.raw_disjoint_backup(0, 3, tuple(primary), avoid)
        assert cand is not None
        path, links, states = cand
        assert path == [0, 5, 4, 3]
        assert not (set(links) & avoid)
        assert len(states) == len(links)

    def test_memoized_per_primary(self, ring6):
        _state, cache = make_cache(ring6)
        primary = (0, 1, 2, 3)
        avoid = frozenset(tuple(sorted(p)) for p in zip(primary, primary[1:]))
        first = cache.raw_disjoint_backup(0, 3, primary, avoid)
        second = cache.raw_disjoint_backup(0, 3, primary, avoid)
        assert first is second  # the shared candidate, not a recompute

    def test_none_when_no_disjoint_exists(self, line5):
        _state, cache = make_cache(line5)
        primary = (0, 1, 2, 3, 4)
        avoid = frozenset(tuple(sorted(p)) for p in zip(primary, primary[1:]))
        assert cache.raw_disjoint_backup(0, 4, primary, avoid) is None

    def test_failure_invalidates_backups(self, complete5):
        state, cache = make_cache(complete5)
        primary = (0, 4)
        avoid = frozenset({(0, 4)})
        before = cache.raw_disjoint_backup(0, 4, primary, avoid)
        assert before is not None
        state.fail_link(tuple(sorted(before[0][:2])))  # kill its first hop
        after = cache.raw_disjoint_backup(0, 4, primary, avoid)
        assert after is not None
        assert after[0] != before[0]


class TestManagerIntegration:
    def test_cache_enabled_by_default(self, ring6):
        manager = NetworkManager(ring6)
        assert manager.route_cache is not None

    def test_probe_zero_disables_cache(self, ring6, contract):
        manager = NetworkManager(ring6, route_cache_probe=0)
        assert manager.route_cache is None
        conn, _ = manager.request_connection(0, 3, contract)
        assert conn is not None  # uncached path still routes

    def test_cached_and_uncached_agree(self, grid33, contract):
        cached = NetworkManager(grid33)
        plain = NetworkManager(grid33, route_cache_probe=0)
        pairs = [(0, 8), (2, 6), (0, 8), (1, 7), (3, 5), (0, 8)]
        for src, dst in pairs:
            a, _ = cached.request_connection(src, dst, contract)
            b, _ = plain.request_connection(src, dst, contract)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.primary_path == b.primary_path
                assert a.backup_path == b.backup_path
        assert cached.average_live_bandwidth() == plain.average_live_bandwidth()


# ----------------------------------------------------------------------
# Precompiled RoutePlan cache (array core)
# ----------------------------------------------------------------------
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import make_manager
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.routing.cache import ArrayRouteCache
from repro.topology.regular import grid_network


def _bare_qos(b_min: float) -> ConnectionQoS:
    return ConnectionQoS(
        performance=ElasticQoS(b_min=b_min, b_max=b_min + 100.0, increment=100.0),
        dependability=DependabilityQoS(num_backups=0),
    )


class TestArrayPlanInvalidation:
    """Precompiled plans must die with their generation, not linger."""

    def test_plan_shared_within_generation(self, ring6):
        m = make_manager(ring6, core="array")
        cache, state = m.route_cache, m.state
        plan = cache.primary_plan(0, 3, 100.0, state.generation)
        assert plan.path == [0, 1, 2, 3]
        assert cache.primary_plan(0, 3, 100.0, state.generation) is plan

    def test_repair_after_failure_regenerates_plans(self, ring6):
        m = make_manager(ring6, core="array")
        cache, state = m.route_cache, m.state
        plan = cache.primary_plan(0, 3, 100.0, state.generation)
        assert plan.path == [0, 1, 2, 3]
        m.fail_link((1, 2))
        detour = cache.primary_plan(0, 3, 100.0, state.generation)
        assert detour.path == [0, 5, 4, 3]
        m.repair_link((1, 2))
        back = cache.primary_plan(0, 3, 100.0, state.generation)
        assert back.path == [0, 1, 2, 3]
        # The entry was rebuilt for the new generation: the original
        # precompiled plan object must not be resurrected.
        assert back is not plan

    def test_set_capacity_respects_generation_bump(self, ring6):
        m = make_manager(ring6, core="array")
        t, cache, state = m.links, m.route_cache, m.state
        li = t.index_of((0, 1))
        assert cache.primary_plan(0, 3, 100.0, state.generation).path == [0, 1, 2, 3]
        # Degrade the first-hop link below the demand; the owner's
        # contract is to bump the generation after a capacity mutation.
        t.set_capacity(li, 60.0)
        state.generation += 1
        warm = cache.primary_plan(0, 3, 100.0, state.generation)
        cold = ArrayRouteCache(ring6, t, state.adjacency_rows()).primary_plan(
            0, 3, 100.0, state.generation
        )
        assert warm.path == cold.path == [0, 5, 4, 3]
        # A smaller request still fits through the degraded link.
        assert cache.primary_plan(0, 3, 50.0, state.generation).path == [0, 1, 2, 3]
        # Restore: the next generation admits the direct arc again.
        t.set_capacity(li, 1000.0)
        state.generation += 1
        assert cache.primary_plan(0, 3, 100.0, state.generation).path == [0, 1, 2, 3]

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_cached_admission_bitwise_equals_cold_path(self, seed):
        """Property: a warm cache answers exactly like a cold one.

        Drives one array manager through churn, failures, repairs and
        capacity mutations, and after every event compares the warm
        cache's ``primary_plan`` against (a) a freshly built cache and
        (b) the filtered BFS over ``primary_admission_mask`` — the
        cold path the manager falls back to.
        """
        rng = random.Random(seed)
        net = grid_network(3, 3, capacity=300.0)
        m = make_manager(net, core="array")
        t, state, cache = m.links, m.state, m.route_cache
        nodes = net.nodes()
        live: list[int] = []
        for _ in range(40):
            r = rng.random()
            if r < 0.45:
                s, d = rng.sample(nodes, 2)
                conn, _ = m.request_connection(s, d, _bare_qos(rng.choice((50.0, 100.0))))
                if conn is not None:
                    live.append(conn.conn_id)
            elif r < 0.6:
                if live:
                    cid = live.pop(rng.randrange(len(live)))
                    if cid in m.connections:  # may have died with a link
                        m.terminate_connection(cid)
            elif r < 0.7:
                alive = state.alive_link_list()
                if len(alive) > net.num_links - 2:
                    m.fail_link(alive[rng.randrange(len(alive))])
            elif r < 0.8:
                failed = state.failed_link_list()
                if failed:
                    m.repair_link(failed[rng.randrange(len(failed))])
            else:
                li = rng.randrange(len(t))
                t.refresh_aggregates()
                floor_cap = float(
                    t.primary_min[li]
                    + t.activated[li]
                    + max(float(t.primary_extra[li]), float(t.backup_reserved[li]))
                )
                t.set_capacity(li, floor_cap + rng.choice((10.0, 60.0, 300.0)))
                state.generation += 1

            s, d = rng.sample(nodes, 2)
            b_min = rng.choice((50.0, 100.0, 150.0))
            gen = state.generation
            warm = cache.primary_plan(s, d, b_min, gen)
            cold = ArrayRouteCache(net, t, state.adjacency_rows()).primary_plan(
                s, d, b_min, gen
            )
            if warm is NO_ROUTE or warm is None:
                assert cold is warm
            else:
                assert cold is not None and cold is not NO_ROUTE
                assert warm.path == cold.path
                assert warm.idx_list == cold.idx_list
            admit = t.primary_admission_mask(b_min)
            reference = bfs_path_rows(
                state.adjacency_rows(), s, d, lambda lid, li_: bool(admit[li_])
            )
            if warm is NO_ROUTE:
                assert reference is None
            elif warm is not None:
                assert warm.path == reference
