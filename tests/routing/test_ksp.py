"""Unit tests for Yen's k-shortest paths and the sequential search."""

import pytest

from repro.errors import RoutingError
from repro.routing.ksp import (
    k_shortest_paths,
    sequential_route_search,
    shortest_paths_iter,
)
from repro.routing.shortest import path_hops
from repro.topology.graph import Network
from repro.topology.regular import grid_network


class TestKShortestPaths:
    def test_single_path_topology(self, line5):
        paths = k_shortest_paths(line5, 0, 4, k=3)
        assert paths == [[0, 1, 2, 3, 4]]

    def test_ring_has_two(self, ring6):
        paths = k_shortest_paths(ring6, 0, 3, k=5)
        assert len(paths) == 2
        assert sorted(len(p) for p in paths) == [4, 4]

    def test_sorted_by_length(self):
        net = grid_network(3, 3, 1.0)
        paths = k_shortest_paths(net, 0, 8, k=6)
        hops = [path_hops(p) for p in paths]
        assert hops == sorted(hops)
        assert hops[0] == 4
        # grid 3x3 has C(4,2)=6 shortest (monotone) routes
        assert len(paths) == 6
        assert len({tuple(p) for p in paths}) == 6  # all distinct

    def test_loopless(self, grid33):
        for path in k_shortest_paths(grid33, 0, 8, k=10):
            assert len(set(path)) == len(path)

    def test_k_must_be_positive(self, ring6):
        with pytest.raises(RoutingError):
            k_shortest_paths(ring6, 0, 3, k=0)

    def test_unreachable_gives_empty(self):
        net = Network()
        net.add_link(0, 1, 1.0)
        net.add_link(2, 3, 1.0)
        assert k_shortest_paths(net, 0, 3, k=3) == []

    def test_respects_filter(self, ring6):
        paths = k_shortest_paths(ring6, 0, 3, k=5, link_filter=lambda l: l.id != (0, 1))
        assert paths == [[0, 5, 4, 3]]


class TestSequentialSearch:
    def test_picks_first_admissible(self, ring6):
        # Block the clockwise arc by admission: the second-shortest wins.
        blocked = {(0, 1)}
        path = sequential_route_search(
            ring6, 0, 2, admissible=lambda l: l.id not in blocked
        )
        assert path == [0, 5, 4, 3, 2]

    def test_prefers_shortest_when_clear(self, ring6):
        path = sequential_route_search(ring6, 0, 2, admissible=lambda l: True)
        assert path == [0, 1, 2]

    def test_gives_up_after_max_candidates(self, grid33):
        path = sequential_route_search(
            grid33, 0, 8, admissible=lambda l: False, max_candidates=4
        )
        assert path is None

    def test_max_candidates_must_be_positive(self, ring6):
        with pytest.raises(RoutingError):
            sequential_route_search(
                ring6, 0, 2, admissible=lambda l: True, max_candidates=0
            )


class TestLaziness:
    """The enumeration must not search further than the consumer asks."""

    def _count_searches(self, monkeypatch):
        import repro.routing.ksp as ksp_mod

        calls = []
        real = ksp_mod.bfs_path_rows

        def counting(*args, **kwargs):
            calls.append(args[1:3])
            return real(*args, **kwargs)

        monkeypatch.setattr(ksp_mod, "bfs_path_rows", counting)
        return calls

    def test_one_search_when_first_route_admits(self, grid33, monkeypatch):
        # Regression for the eager implementation, which computed all
        # max_candidates routes (spur searches included) even when the
        # very first shortest route was admissible.
        calls = self._count_searches(monkeypatch)
        path = sequential_route_search(grid33, 0, 8, admissible=lambda l: True)
        assert path is not None
        assert len(calls) == 1

    def test_first_path_from_iterator_costs_one_search(self, grid33, monkeypatch):
        calls = self._count_searches(monkeypatch)
        first = next(shortest_paths_iter(grid33, 0, 8))
        assert first is not None
        assert len(calls) == 1

    def test_spur_searches_only_on_demand(self, grid33, monkeypatch):
        calls = self._count_searches(monkeypatch)
        paths = shortest_paths_iter(grid33, 0, 8)
        next(paths)
        assert len(calls) == 1
        next(paths)  # now Yen's deviation searches must run
        assert len(calls) > 1
