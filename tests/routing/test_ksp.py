"""Unit tests for Yen's k-shortest paths and the sequential search."""

import pytest

from repro.errors import RoutingError
from repro.routing.ksp import k_shortest_paths, sequential_route_search
from repro.routing.shortest import path_hops
from repro.topology.graph import Network
from repro.topology.regular import grid_network, ring_network


class TestKShortestPaths:
    def test_single_path_topology(self, line5):
        paths = k_shortest_paths(line5, 0, 4, k=3)
        assert paths == [[0, 1, 2, 3, 4]]

    def test_ring_has_two(self, ring6):
        paths = k_shortest_paths(ring6, 0, 3, k=5)
        assert len(paths) == 2
        assert sorted(len(p) for p in paths) == [4, 4]

    def test_sorted_by_length(self):
        net = grid_network(3, 3, 1.0)
        paths = k_shortest_paths(net, 0, 8, k=6)
        hops = [path_hops(p) for p in paths]
        assert hops == sorted(hops)
        assert hops[0] == 4
        # grid 3x3 has C(4,2)=6 shortest (monotone) routes
        assert len(paths) == 6
        assert len({tuple(p) for p in paths}) == 6  # all distinct

    def test_loopless(self, grid33):
        for path in k_shortest_paths(grid33, 0, 8, k=10):
            assert len(set(path)) == len(path)

    def test_k_must_be_positive(self, ring6):
        with pytest.raises(RoutingError):
            k_shortest_paths(ring6, 0, 3, k=0)

    def test_unreachable_gives_empty(self):
        net = Network()
        net.add_link(0, 1, 1.0)
        net.add_link(2, 3, 1.0)
        assert k_shortest_paths(net, 0, 3, k=3) == []

    def test_respects_filter(self, ring6):
        paths = k_shortest_paths(ring6, 0, 3, k=5, link_filter=lambda l: l.id != (0, 1))
        assert paths == [[0, 5, 4, 3]]


class TestSequentialSearch:
    def test_picks_first_admissible(self, ring6):
        # Block the clockwise arc by admission: the second-shortest wins.
        blocked = {(0, 1)}
        path = sequential_route_search(
            ring6, 0, 2, admissible=lambda l: l.id not in blocked
        )
        assert path == [0, 5, 4, 3, 2]

    def test_prefers_shortest_when_clear(self, ring6):
        path = sequential_route_search(ring6, 0, 2, admissible=lambda l: True)
        assert path == [0, 1, 2]

    def test_gives_up_after_max_candidates(self, grid33):
        path = sequential_route_search(
            grid33, 0, 8, admissible=lambda l: False, max_candidates=4
        )
        assert path is None
