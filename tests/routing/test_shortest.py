"""Unit tests for admission-aware shortest-path routing."""

import pytest

from repro.errors import RoutingError
from repro.routing.shortest import path_cost, path_hops, shortest_path
from repro.topology.regular import grid_network


class TestBfsPath:
    def test_line(self, line5):
        assert shortest_path(line5, 0, 4) == [0, 1, 2, 3, 4]

    def test_ring_takes_short_arc(self, ring6):
        path = shortest_path(ring6, 0, 2)
        assert path == [0, 1, 2]

    def test_deterministic_tie_break(self):
        # Grid has many equal-hop routes; ties break toward lower nodes.
        net = grid_network(3, 3, 1.0)
        a = shortest_path(net, 0, 8)
        b = shortest_path(net, 0, 8)
        assert a == b
        assert path_hops(a) == 4

    def test_filter_blocks_link(self, ring6):
        blocked = {(0, 1)}
        path = shortest_path(ring6, 0, 2, link_filter=lambda l: l.id not in blocked)
        assert path == [0, 5, 4, 3, 2]

    def test_unreachable_returns_none(self, ring6):
        path = shortest_path(ring6, 0, 3, link_filter=lambda l: False)
        assert path is None

    def test_unknown_endpoints(self, line5):
        with pytest.raises(RoutingError):
            shortest_path(line5, 0, 99)
        with pytest.raises(RoutingError):
            shortest_path(line5, 99, 0)

    def test_same_endpoint_rejected(self, line5):
        with pytest.raises(RoutingError):
            shortest_path(line5, 2, 2)


class TestDijkstraPath:
    def test_weight_changes_route(self, ring6):
        # Make the short arc expensive.
        expensive = {(0, 1), (1, 2)}
        weight = lambda link: 10.0 if link.id in expensive else 1.0
        path = shortest_path(ring6, 0, 2, weight=weight)
        assert path == [0, 5, 4, 3, 2]

    def test_weighted_equals_bfs_for_uniform_weight(self, grid33):
        bfs = shortest_path(grid33, 0, 8)
        dij = shortest_path(grid33, 0, 8, weight=lambda l: 1.0)
        assert path_hops(bfs) == path_hops(dij)

    def test_negative_weight_rejected(self, line5):
        with pytest.raises(RoutingError):
            shortest_path(line5, 0, 4, weight=lambda l: -1.0)

    def test_filter_respected(self, ring6):
        path = shortest_path(
            ring6, 0, 3, link_filter=lambda l: l.id != (0, 1), weight=lambda l: 1.0
        )
        assert path == [0, 5, 4, 3]


class TestPathHelpers:
    def test_path_hops(self):
        assert path_hops([1, 2, 3]) == 2

    def test_path_hops_rejects_trivial(self):
        with pytest.raises(RoutingError):
            path_hops([1])

    def test_path_cost_default_hops(self, line5):
        assert path_cost(line5, [0, 1, 2]) == 2.0

    def test_path_cost_weighted(self, line5):
        assert path_cost(line5, [0, 1, 2], weight=lambda l: l.capacity) == 2000.0
