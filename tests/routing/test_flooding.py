"""Unit tests for the bounded-flooding route search."""

import pytest

from repro.errors import RoutingError
from repro.routing.flooding import bounded_flood, flooding_route_pair


def unlimited(link):
    return 1e9


class TestBoundedFlood:
    def test_finds_route_on_line(self, line5):
        result = bounded_flood(line5, 0, 4, b_min=10.0, allowance=unlimited, hop_bound=6)
        assert result.found
        assert result.routes[0].path == (0, 1, 2, 3, 4)
        assert result.routes[0].hops == 4

    def test_hop_bound_discards(self, line5):
        result = bounded_flood(line5, 0, 4, b_min=10.0, allowance=unlimited, hop_bound=3)
        assert not result.found

    def test_first_route_is_shortest(self, ring6):
        result = bounded_flood(ring6, 0, 2, b_min=10.0, allowance=unlimited, hop_bound=6)
        assert result.routes[0].hops == 2
        # the counter-clockwise copy arrives later
        assert any(r.hops == 4 for r in result.routes)

    def test_bandwidth_filter_discards_copies(self, ring6):
        # Give the clockwise arc too little bandwidth.
        def allowance(link):
            return 5.0 if link.id in {(0, 1), (1, 2)} else 1e9

        result = bounded_flood(ring6, 0, 2, b_min=10.0, allowance=allowance, hop_bound=6)
        assert result.found
        assert result.routes[0].path == (0, 5, 4, 3, 2)

    def test_allowance_is_bottleneck(self, line5):
        def allowance(link):
            return 100.0 if link.id == (1, 2) else 500.0

        result = bounded_flood(line5, 0, 4, b_min=10.0, allowance=allowance, hop_bound=6)
        assert result.routes[0].allowance == 100.0

    def test_message_count_positive_and_bounded(self, grid33):
        result = bounded_flood(grid33, 0, 8, b_min=1.0, allowance=unlimited, hop_bound=4)
        assert result.found
        assert result.messages_sent > 0
        # Flooding a 3x3 grid for 4 hops cannot exceed a few hundred messages.
        assert result.messages_sent < 500

    def test_suppression_reduces_messages(self, grid33):
        wide = bounded_flood(grid33, 0, 8, b_min=1.0, allowance=unlimited, hop_bound=8)
        # Suppression caps growth: message count stays far below the
        # naive 4^8 explosion.
        assert wide.messages_sent < 1000

    def test_invalid_args(self, line5):
        with pytest.raises(RoutingError):
            bounded_flood(line5, 0, 4, 1.0, unlimited, hop_bound=0)
        with pytest.raises(RoutingError):
            bounded_flood(line5, 0, 0, 1.0, unlimited, hop_bound=3)
        with pytest.raises(RoutingError):
            bounded_flood(line5, 0, 99, 1.0, unlimited, hop_bound=3)

    def test_max_routes_caps_collection(self, grid33):
        result = bounded_flood(
            grid33, 0, 8, b_min=1.0, allowance=unlimited, hop_bound=8, max_routes=2
        )
        assert len(result.routes) == 2


class TestFloodingRoutePair:
    def test_ring_pair_is_disjoint(self, ring6):
        primary, backup = flooding_route_pair(
            ring6, 0, 3, b_min=10.0, allowance=unlimited, hop_bound=6
        )
        assert primary is not None and backup is not None
        plinks = set(ring6.path_links(primary))
        blinks = set(ring6.path_links(backup))
        assert not plinks & blinks

    def test_line_has_no_backup(self, line5):
        primary, backup = flooding_route_pair(
            line5, 0, 4, b_min=10.0, allowance=unlimited, hop_bound=6
        )
        assert primary == [0, 1, 2, 3, 4]
        assert backup is None

    def test_no_primary_when_bandwidth_lacking(self, line5):
        primary, backup = flooding_route_pair(
            line5, 0, 4, b_min=10.0, allowance=lambda l: 1.0, hop_bound=6
        )
        assert primary is None and backup is None

    def test_backup_allowance_filter(self, ring6):
        # Primary bandwidth everywhere, but backup admission fails on the
        # counter-clockwise arc: no backup can be confirmed.
        def backup_allowance(link):
            return 0.0 if link.id == (4, 5) else 1e9

        primary, backup = flooding_route_pair(
            ring6, 0, 2, b_min=10.0, allowance=unlimited,
            backup_allowance=backup_allowance, hop_bound=6,
        )
        assert primary == [0, 1, 2]
        assert backup is None
