"""Unit tests for static chaining analysis (exact Pf / Ps)."""

import numpy as np
import pytest

from repro.analysis.chaining import (
    chaining_for_route,
    expected_arrival_chaining,
    snapshot_chaining,
)
from repro.channels.manager import NetworkManager
from repro.errors import EstimationError
from repro.topology.regular import dumbbell_network, line_network


class TestSnapshot:
    def test_empty_manager(self, ring6):
        snap = snapshot_chaining(NetworkManager(ring6))
        assert snap.num_channels == 0
        assert snap.pf == snap.ps == 0.0

    def test_two_overlapping_channels(self, contract_no_backup):
        net = line_network(4, 1000.0)
        manager = NetworkManager(net)
        manager.request_connection(0, 2, contract_no_backup)  # links (0,1),(1,2)
        manager.request_connection(1, 3, contract_no_backup)  # links (1,2),(2,3)
        snap = snapshot_chaining(manager)
        assert snap.num_channels == 2
        assert snap.pf == 1.0  # the only ordered pairs are directly chained
        assert snap.ps == 0.0

    def test_indirect_chain_of_three(self, contract_no_backup):
        net = line_network(7, 1000.0)
        manager = NetworkManager(net)
        a, _ = manager.request_connection(0, 2, contract_no_backup)
        b, _ = manager.request_connection(2, 4, contract_no_backup)  # no shared link with a
        c, _ = manager.request_connection(1, 3, contract_no_backup)  # overlaps both
        snap = snapshot_chaining(manager)
        # pairs: (a,c) and (b,c) direct (2 unordered = 4 ordered);
        # (a,b) indirect via c (2 ordered).
        assert snap.pf == pytest.approx(4 / 6)
        assert snap.ps == pytest.approx(2 / 6)
        assert snap.direct_degree[c.conn_id] == 2
        assert snap.indirect_degree[a.conn_id] == 1

    def test_disjoint_channels(self, contract_no_backup):
        net = dumbbell_network(3, 1000.0)
        manager = NetworkManager(net)
        manager.request_connection(1, 2, contract_no_backup)
        manager.request_connection(5, 6, contract_no_backup)
        snap = snapshot_chaining(manager)
        assert snap.pf == 0.0
        assert snap.ps == 0.0

    def test_mean_direct_degree(self, contract_no_backup):
        net = line_network(4, 1000.0)
        manager = NetworkManager(net)
        manager.request_connection(0, 2, contract_no_backup)
        manager.request_connection(1, 3, contract_no_backup)
        snap = snapshot_chaining(manager)
        assert snap.mean_direct_degree == pytest.approx(1.0)


class TestRouteChaining:
    def test_exact_fractions(self, contract_no_backup):
        net = line_network(5, 1000.0)
        manager = NetworkManager(net)
        manager.request_connection(0, 1, contract_no_backup)   # link (0,1)
        manager.request_connection(3, 4, contract_no_backup)   # link (3,4)
        # A route over (1,2),(2,3) touches neither channel: pf=0, ps=0.
        pf, ps = chaining_for_route(manager, [(1, 2), (2, 3)])
        assert (pf, ps) == (0.0, 0.0)
        # A route over (0,1) is direct with the first channel only.
        pf, ps = chaining_for_route(manager, [(0, 1)])
        assert pf == pytest.approx(0.5)
        assert ps == 0.0

    def test_requires_live_channels(self, ring6):
        with pytest.raises(EstimationError):
            chaining_for_route(NetworkManager(ring6), [(0, 1)])


class TestMonteCarloArrivalChaining:
    def test_matches_simulator_estimates(self, contract):
        """Static Monte-Carlo Pf must agree with the event-averaged Pf
        from the simulator on the same network and load."""
        from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
        from repro.topology.waxman import paper_random_network

        rng = np.random.default_rng(3)
        net = paper_random_network(10_000.0, rng, n=40, target_edges=90)
        config = SimulationConfig(
            qos=contract, offered_connections=200,
            warmup_events=100, measure_events=800,
        )
        sim = ElasticQoSSimulator(net, config, seed=5)
        result = sim.run()
        static_pf, static_ps = expected_arrival_chaining(
            sim.manager, num_samples=200, rng=np.random.default_rng(9)
        )
        assert static_pf == pytest.approx(result.params.pf, rel=0.35)
        assert static_ps == pytest.approx(result.params.ps, rel=0.35)

    def test_validation(self, ring6, contract_no_backup):
        manager = NetworkManager(ring6)
        manager.request_connection(0, 2, contract_no_backup)
        with pytest.raises(EstimationError):
            expected_arrival_chaining(manager, 0, np.random.default_rng(0))
