"""Unit tests for terminal charts."""

from dataclasses import dataclass

import pytest

from repro.analysis.ascii_chart import ascii_chart, chart_rows
from repro.errors import ReproError


class TestAsciiChart:
    def test_single_series_renders(self):
        text = ascii_chart({"sim": [(0, 0.0), (5, 10.0), (10, 5.0)]})
        assert "*" in text
        assert "legend: * sim" in text
        assert "10.0" in text  # y max label
        assert "0.0" in text

    def test_marker_positions_monotone_series(self):
        text = ascii_chart(
            {"up": [(0, 0.0), (1, 1.0), (2, 2.0)]}, width=12, height=5
        )
        lines = [l for l in text.splitlines() if "|" in l and "+" not in l]
        first_star = [i for i, l in enumerate(lines) if "*" in l]
        # Highest y appears in the topmost populated row.
        assert first_star[0] == 0

    def test_two_series_two_markers(self):
        text = ascii_chart(
            {"a": [(0, 1.0), (1, 2.0)], "b": [(0, 2.0), (1, 1.0)]}
        )
        assert "*" in text and "o" in text
        assert "* a" in text and "o b" in text

    def test_labels_included(self):
        text = ascii_chart(
            {"a": [(0, 1.0), (1, 2.0)]}, x_label="load", y_label="Kb/s"
        )
        assert text.splitlines()[0] == "Kb/s"
        assert "load" in text

    def test_flat_series_handled(self):
        text = ascii_chart({"flat": [(0, 5.0), (1, 5.0)]})
        assert "*" in text  # degenerate y-span must not divide by zero

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_chart({})
        with pytest.raises(ReproError):
            ascii_chart({"a": []})
        with pytest.raises(ReproError):
            ascii_chart({"a": [(0, 1.0)]}, width=3)
        with pytest.raises(ReproError):
            ascii_chart({str(i): [(0, 1.0)] for i in range(9)})


@dataclass
class FakeRow:
    offered: int
    simulated: float
    analytic: float


class TestChartRows:
    def test_renders_fields(self):
        rows = [FakeRow(100, 450.0, 440.0), FakeRow(200, 380.0, 360.0)]
        text = chart_rows(rows, "offered", ["simulated", "analytic"])
        assert "* simulated" in text
        assert "o analytic" in text

    def test_missing_field_rejected(self):
        rows = [FakeRow(1, 2.0, 3.0)]
        with pytest.raises(ReproError):
            chart_rows(rows, "offered", ["nope"])

    def test_empty_rows_rejected(self):
        with pytest.raises(ReproError):
            chart_rows([], "offered", ["simulated"])
