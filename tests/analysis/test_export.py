"""Unit tests for result export helpers."""

import csv
import io
import json
from dataclasses import dataclass

import pytest

from repro.analysis.export import rows_to_dicts, to_csv, to_json, write_csv, write_json
from repro.errors import ReproError


@dataclass
class FakeRow:
    offered: int
    simulated: float
    series: list


ROWS = [FakeRow(100, 450.0, [1, 2]), FakeRow(200, 380.5, [3])]


class TestNormalisation:
    def test_dataclasses(self):
        dicts = rows_to_dicts(ROWS)
        assert dicts[0] == {"offered": 100, "simulated": 450.0, "series": [1, 2]}

    def test_mappings(self):
        dicts = rows_to_dicts([{"a": 1}, {"a": 2}])
        assert dicts == [{"a": 1}, {"a": 2}]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            rows_to_dicts([])

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ReproError):
            rows_to_dicts([{"a": 1}, {"b": 2}])

    def test_unsupported_type_rejected(self):
        with pytest.raises(ReproError):
            rows_to_dicts([42])


class TestCsv:
    def test_roundtrip(self):
        text = to_csv(ROWS)
        reader = csv.DictReader(io.StringIO(text))
        rows = list(reader)
        assert rows[0]["offered"] == "100"
        assert json.loads(rows[0]["series"]) == [1, 2]
        assert len(rows) == 2

    def test_write(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out.csv")
        assert path.exists()
        assert "offered" in path.read_text().splitlines()[0]


class TestJson:
    def test_roundtrip(self):
        data = json.loads(to_json(ROWS))
        assert data[1]["simulated"] == 380.5

    def test_numpy_values_serialised(self):
        import numpy as np

        text = to_json([{"pi": np.array([0.5, 0.5]), "bw": np.float64(123.0)}])
        data = json.loads(text)
        assert data[0]["pi"] == [0.5, 0.5]
        assert data[0]["bw"] == 123.0

    def test_write(self, tmp_path):
        path = write_json(ROWS, tmp_path / "out.json")
        assert json.loads(path.read_text())[0]["offered"] == 100

    def test_real_experiment_rows_export(self):
        """The actual Figure-2 row type exports cleanly."""
        from repro.analysis.experiments import Figure2Row

        rows = [
            Figure2Row(offered=10, population=10.0, simulated=1.0,
                       analytic=1.0, ideal=2.0)
        ]
        data = json.loads(to_json(rows))
        assert data[0]["offered"] == 10
        assert "ideal" in to_csv(rows).splitlines()[0]
