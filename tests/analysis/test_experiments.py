"""Smoke tests for the figure/table experiment runners (tiny scales).

The benchmarks run these at realistic scale; here we only verify that
each runner produces structurally correct, internally consistent output
fast enough for the unit-test suite.
"""


from repro.analysis.experiments import (
    RunSettings,
    paper_connection_qos,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
)
from repro.topology.transit_stub import TransitStubParams

TINY = RunSettings(warmup_events=30, measure_events=120, sample_interval=5, seed=3)


class TestPaperQoS:
    def test_default_shape(self):
        qos = paper_connection_qos()
        assert qos.performance.num_levels == 9
        assert qos.dependability.num_backups == 1

    def test_large_increment(self):
        qos = paper_connection_qos(increment=100.0)
        assert qos.performance.num_levels == 5


class TestFigure2:
    def test_rows_and_monotone_ideal(self):
        result = run_figure2([50, 150], nodes=40, edges=90, settings=TINY)
        assert [row.offered for row in result.rows] == [50, 150]
        assert result.rows[0].ideal > result.rows[1].ideal
        for row in result.rows:
            assert 100.0 - 1e-6 <= row.simulated <= 500.0 + 1e-6
            assert 100.0 - 1e-6 <= row.analytic <= 500.0 + 1e-6
        assert result.nodes == 40
        assert result.average_hops > 1.0


class TestTable1:
    def test_columns_present(self):
        rows = run_table1(
            [60],
            nodes=30,
            edges=60,
            tier_params=TransitStubParams(
                transit_domains=1,
                transit_nodes_per_domain=2,
                stub_domains_per_transit_node=2,
                stub_nodes_per_domain=3,
            ),
            settings=TINY,
        )
        row = rows[0]
        assert row.offered == 60
        for cell in (
            row.random_5_states,
            row.random_9_states,
            row.tier_5_states,
            row.tier_9_states,
        ):
            assert 100.0 - 1e-6 <= cell <= 500.0 + 1e-6


class TestFigure3:
    def test_edges_grow_with_nodes(self):
        rows = run_figure3([30, 60], connections=80, settings=TINY)
        assert rows[0].nodes == 30 and rows[1].nodes == 60
        assert rows[1].edges > rows[0].edges


class TestFigure4:
    def test_analytic_sweep_per_population(self):
        series = run_figure4(
            [1e-7, 1e-5, 1e-3],
            populations=(40, 80),
            nodes=30,
            edges=60,
            settings=TINY,
        )
        assert [s.population for s in series] == [40, 80]
        for s in series:
            assert len(s.analytic) == 3
            # gamma only adds downward pressure: bandwidth never rises with it
            assert s.analytic[0] + 1e-9 >= s.analytic[-1]

    def test_simulated_checks(self):
        series = run_figure4(
            [1e-6],
            populations=(30,),
            nodes=30,
            edges=60,
            settings=TINY,
            simulate_checks=[1e-4],
        )
        checks = series[0].simulated_checks
        assert len(checks) == 1
        gamma, bw = checks[0]
        assert gamma == 1e-4
        assert 100.0 - 1e-6 <= bw <= 500.0 + 1e-6
