"""Unit tests for multi-seed replication helpers."""

import pytest

from repro.analysis.confidence import replicate
from repro.errors import SimulationError


class TestReplicate:
    def test_constant_metric_has_zero_width(self):
        result = replicate(lambda seed: 42.0, seeds=[1, 2, 3])
        assert result.mean == 42.0
        assert result.std == 0.0
        assert result.half_width == 0.0
        assert result.interval == (42.0, 42.0)

    def test_known_values(self):
        result = replicate(lambda seed: float(seed), seeds=[1, 2, 3], confidence=0.95)
        assert result.mean == pytest.approx(2.0)
        assert result.std == pytest.approx(1.0)
        assert result.half_width == pytest.approx(1.96 / 3**0.5, rel=1e-3)

    def test_confidence_levels_order(self):
        seeds = [1, 2, 3, 4]
        narrow = replicate(lambda s: float(s), seeds, confidence=0.90)
        wide = replicate(lambda s: float(s), seeds, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_describe(self):
        text = replicate(lambda s: float(s), [1, 2, 3]).describe()
        assert "95% CI" in text and "n=3" in text

    def test_relative_half_width(self):
        result = replicate(lambda s: float(s), [1, 2, 3])
        assert result.relative_half_width == pytest.approx(
            result.half_width / 2.0
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            replicate(lambda s: 1.0, seeds=[1])
        with pytest.raises(SimulationError):
            replicate(lambda s: 1.0, seeds=[1, 1])
        with pytest.raises(SimulationError):
            replicate(lambda s: 1.0, seeds=[1, 2], confidence=0.5)

    def test_simulator_bandwidth_is_stable_across_seeds(self, contract):
        """End-to-end: the headline metric replicates tightly."""
        from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
        from repro.topology.regular import complete_network

        net = complete_network(8, 2000.0)

        def metric(seed: int) -> float:
            config = SimulationConfig(
                qos=contract, offered_connections=20,
                warmup_events=30, measure_events=200,
            )
            return ElasticQoSSimulator(net, config, seed=seed).run().average_bandwidth

        result = replicate(metric, seeds=[1, 2, 3])
        assert result.relative_half_width < 0.2
