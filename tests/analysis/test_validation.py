"""Unit tests for the sim-vs-model validation report."""

import numpy as np
import pytest

from repro.analysis.validation import ValidationReport, validate_against_model
from repro.errors import MarkovModelError
from repro.qos.spec import ElasticQoS
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.topology.regular import complete_network


def make_report(sim_pi, model_pi, sim_bw=300.0, model_bw=290.0):
    bandwidths = np.array([100.0 + 50.0 * i for i in range(len(sim_pi))])
    return ValidationReport(
        simulated_bandwidth=sim_bw,
        analytic_bandwidth=model_bw,
        simulated_pi=np.asarray(sim_pi, dtype=float),
        analytic_pi=np.asarray(model_pi, dtype=float),
        level_bandwidths=bandwidths,
    )


class TestMetrics:
    def test_bandwidth_error(self):
        report = make_report([1, 0], [1, 0], sim_bw=200.0, model_bw=220.0)
        assert report.bandwidth_error == pytest.approx(0.1)

    def test_identical_distributions(self):
        report = make_report([0.5, 0.5], [0.5, 0.5])
        assert report.total_variation == 0.0
        assert report.kl_divergence == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_distributions(self):
        report = make_report([1.0, 0.0], [0.0, 1.0])
        assert report.total_variation == pytest.approx(1.0)
        assert report.kl_divergence > 1.0

    def test_per_state_rows(self):
        report = make_report([0.25, 0.75], [0.5, 0.5])
        rows = report.per_state_rows()
        assert len(rows) == 2
        assert rows[0][0] == 0
        assert rows[0][4] == pytest.approx(0.25)

    def test_render_contains_metrics(self):
        text = make_report([0.3, 0.7], [0.4, 0.6]).render()
        assert "TV distance" in text and "average bandwidth" in text


class TestValidateAgainstModel:
    def test_end_to_end(self, contract):
        net = complete_network(8, 2000.0)
        config = SimulationConfig(
            qos=contract, offered_connections=20, warmup_events=40, measure_events=300
        )
        result = ElasticQoSSimulator(net, config, seed=6).run()
        report = validate_against_model(result, contract.performance)
        assert 0.0 <= report.total_variation <= 1.0
        assert report.bandwidth_error < 0.5
        assert report.simulated_pi.shape == report.analytic_pi.shape

    def test_level_mismatch_rejected(self, contract):
        net = complete_network(6, 2000.0)
        config = SimulationConfig(
            qos=contract, offered_connections=5, warmup_events=5, measure_events=30
        )
        result = ElasticQoSSimulator(net, config, seed=6).run()
        wrong = ElasticQoS(b_min=100.0, b_max=300.0, increment=50.0)  # 5 levels
        with pytest.raises(MarkovModelError):
            validate_against_model(result, wrong)
