"""Unit tests for the ideal-average-bandwidth formula."""

import pytest

from repro.errors import SimulationError
from repro.analysis.ideal import clamped_ideal, ideal_average_bandwidth, ideal_for_network
from repro.topology.graph import Network
from repro.topology.regular import ring_network


class TestFormula:
    def test_paper_numbers(self):
        # BW=10 Mb/s, 354 edges, 1000 channels, 8 hops -> 442.5 Kb/s
        got = ideal_average_bandwidth(10_000.0, 354, 1000, 8.0)
        assert got == pytest.approx(442.5)

    def test_inverse_in_channels(self):
        one = ideal_average_bandwidth(10_000.0, 354, 1000, 8.0)
        two = ideal_average_bandwidth(10_000.0, 354, 2000, 8.0)
        assert two == pytest.approx(one / 2)

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            ideal_average_bandwidth(0.0, 354, 1000, 8.0)
        with pytest.raises(SimulationError):
            ideal_average_bandwidth(1.0, 354, 0, 8.0)
        with pytest.raises(SimulationError):
            ideal_average_bandwidth(1.0, -1, 10, 8.0)


class TestForNetwork:
    def test_ring(self):
        net = ring_network(6, 1000.0)
        # 6 edges, avg hops 1.8 (ring of 6)
        got = ideal_for_network(net, num_channels=10)
        assert got == pytest.approx(1000.0 * 6 / (10 * 1.8))

    def test_non_uniform_capacity_rejected(self):
        net = Network()
        net.add_link(0, 1, 100.0)
        net.add_link(1, 2, 200.0)
        with pytest.raises(SimulationError):
            ideal_for_network(net, 5)

    def test_empty_network_rejected(self):
        with pytest.raises(SimulationError):
            ideal_for_network(Network(), 5)


class TestClamp:
    def test_within_range(self):
        assert clamped_ideal(300.0, 100.0, 500.0) == 300.0

    def test_clamps_high(self):
        assert clamped_ideal(900.0, 100.0, 500.0) == 500.0

    def test_clamps_low(self):
        assert clamped_ideal(50.0, 100.0, 500.0) == 100.0

    def test_inverted_range_rejected(self):
        with pytest.raises(SimulationError):
            clamped_ideal(300.0, 500.0, 100.0)
