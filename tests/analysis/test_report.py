"""Unit tests for plain-text report rendering."""

import pytest

from repro.analysis.report import (
    format_cell,
    relative_error,
    render_series,
    render_table,
)


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["n", "bw"], [[100, 450.0], [5000, 131.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("n")
        assert set(lines[1]) <= {"-", " "}
        # columns right-aligned: widths consistent
        assert len(lines[2]) == len(lines[3])

    def test_title(self):
        text = render_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderSeries:
    def test_pairs(self):
        text = render_series("sim", [1, 2], [10.0, 20.0])
        assert text.startswith("sim:")
        assert "1→10.0" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", [1], [1, 2])


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")
