"""Unit tests for the elastic-QoS Markov model."""

import numpy as np
import pytest

from repro.errors import MarkovModelError
from repro.markov.model import ElasticQoSMarkovModel
from repro.markov.parameters import (
    MarkovParameters,
    identity_matrix,
    uniform_downward_matrix,
    uniform_upward_matrix,
)
from repro.qos.spec import ElasticQoS


def qos(n_levels=5):
    # b_min 100, increment 50: b_max = 100 + (n-1)*50
    return ElasticQoS(b_min=100.0, b_max=100.0 + (n_levels - 1) * 50.0, increment=50.0)


def params(n=5, **overrides):
    base = dict(
        num_levels=n,
        pf=0.4,
        ps=0.3,
        a=uniform_downward_matrix(n),
        b=uniform_upward_matrix(n),
        t=uniform_upward_matrix(n),
        arrival_rate=0.001,
        termination_rate=0.001,
        failure_rate=0.0,
    )
    base.update(overrides)
    return MarkovParameters(**base)


class TestConstruction:
    def test_level_mismatch_rejected(self):
        with pytest.raises(MarkovModelError):
            ElasticQoSMarkovModel(qos(5), params(n=4))

    def test_generator_is_valid(self):
        model = ElasticQoSMarkovModel(qos(), params())
        q = model.generator()
        assert q.shape == (5, 5)
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_paper_transition_rates(self):
        """Off-diagonal rates must match the formula under Figure 1."""
        p = params(n=3, pf=0.5, ps=0.25, arrival_rate=2.0,
                   termination_rate=3.0, failure_rate=1.0)
        model = ElasticQoSMarkovModel(qos(3), p)
        q = model.generator()
        lam, mu, gamma = 2.0, 3.0, 1.0
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                if i > j:  # downward: Pf * A_ij * (lam + gamma)
                    expected = 0.5 * p.a[i, j] * (lam + gamma)
                else:  # upward: Ps * B_ij * lam + Pf * T_ij * mu
                    expected = 0.25 * p.b[i, j] * lam + 0.5 * p.t[i, j] * mu
                assert q[i, j] == pytest.approx(expected), (i, j)


class TestSolution:
    def test_pi_is_distribution(self):
        sol = ElasticQoSMarkovModel(qos(), params()).solve()
        assert sol.pi.sum() == pytest.approx(1.0)
        assert (sol.pi >= 0).all()

    def test_average_bandwidth_within_range(self):
        sol = ElasticQoSMarkovModel(qos(), params()).solve()
        assert 100.0 <= sol.average_bandwidth <= 300.0
        assert sol.average_bandwidth == pytest.approx(
            float(sol.pi @ sol.level_bandwidths)
        )

    def test_occupancy_accessor(self):
        sol = ElasticQoSMarkovModel(qos(), params()).solve()
        assert sol.occupancy(0) == pytest.approx(float(sol.pi[0]))

    def test_methods_agree(self):
        model = ElasticQoSMarkovModel(qos(), params())
        direct = model.average_bandwidth(method="direct")
        power = model.average_bandwidth(method="power")
        assert direct == pytest.approx(power, abs=1e-6)

    def test_pure_downward_pressure_pins_to_minimum(self):
        """With no upward transitions, all mass collapses to S0."""
        n = 4
        p = params(
            n=n,
            ps=0.0,
            b=identity_matrix(n),
            t=identity_matrix(n),
            a=uniform_downward_matrix(n),
        )
        sol = ElasticQoSMarkovModel(qos(n), p).solve()
        assert sol.pi[0] == pytest.approx(1.0)
        assert sol.average_bandwidth == pytest.approx(100.0)

    def test_pure_upward_pressure_pins_to_maximum(self):
        n = 4
        p = params(n=n, a=identity_matrix(n))
        sol = ElasticQoSMarkovModel(qos(n), p).solve()
        assert sol.pi[-1] == pytest.approx(1.0)
        assert sol.average_bandwidth == pytest.approx(250.0)

    def test_failure_rate_increases_downward_pressure(self):
        base = ElasticQoSMarkovModel(qos(), params()).average_bandwidth()
        stressed = ElasticQoSMarkovModel(
            qos(), params(failure_rate=0.01)
        ).average_bandwidth()
        assert stressed < base

    def test_single_level_chain(self):
        p = params(n=1, a=np.eye(1), b=np.eye(1), t=np.eye(1))
        sol = ElasticQoSMarkovModel(qos(1), p).solve()
        assert sol.pi == pytest.approx([1.0])
        assert sol.average_bandwidth == 100.0


class TestTransient:
    def test_starts_at_minimum_by_default(self):
        model = ElasticQoSMarkovModel(qos(), params())
        assert model.transient_average_bandwidth(0.0) == pytest.approx(100.0)

    def test_converges_to_steady_state(self):
        model = ElasticQoSMarkovModel(qos(), params())
        steady = model.average_bandwidth()
        # rates are ~1e-3, so equilibration needs ~1e4 time units
        assert model.transient_average_bandwidth(1e6) == pytest.approx(
            steady, rel=1e-3
        )

    def test_custom_initial_distribution(self):
        model = ElasticQoSMarkovModel(qos(), params())
        pi0 = np.zeros(5)
        pi0[-1] = 1.0
        assert model.transient_average_bandwidth(0.0, pi0) == pytest.approx(300.0)


class TestDescribe:
    def test_mentions_key_quantities(self):
        text = ElasticQoSMarkovModel(qos(), params()).describe()
        assert "Pf=" in text and "average bandwidth" in text and "N=5" in text
