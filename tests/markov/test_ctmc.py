"""Unit tests for the generic CTMC machinery (SHARPE substitution)."""

import numpy as np
import pytest

from repro.errors import MarkovModelError
from repro.markov.ctmc import (
    expected_value,
    is_irreducible,
    mean_holding_times,
    steady_state,
    transient,
    validate_generator,
)


def birth_death_generator(n, lam, mu):
    """Birth-death chain: analytic stationary pi_i ~ (lam/mu)^i."""
    q = np.zeros((n, n))
    for i in range(n):
        if i + 1 < n:
            q[i, i + 1] = lam
        if i > 0:
            q[i, i - 1] = mu
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


def birth_death_pi(n, lam, mu):
    rho = lam / mu
    weights = np.array([rho**i for i in range(n)])
    return weights / weights.sum()


class TestValidation:
    def test_valid_generator(self):
        validate_generator(birth_death_generator(4, 1.0, 2.0))

    def test_non_square_rejected(self):
        with pytest.raises(MarkovModelError):
            validate_generator(np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(MarkovModelError):
            validate_generator(np.zeros((0, 0)))

    def test_negative_offdiagonal_rejected(self):
        q = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        with pytest.raises(MarkovModelError):
            validate_generator(q)

    def test_nonzero_rowsum_rejected(self):
        q = np.array([[-1.0, 2.0], [1.0, -1.0]])
        with pytest.raises(MarkovModelError):
            validate_generator(q)

    def test_positive_diagonal_rejected(self):
        q = np.array([[1.0, -1.0], [1.0, -1.0]])
        with pytest.raises(MarkovModelError):
            validate_generator(q)


class TestSteadyState:
    @pytest.mark.parametrize("method", ["direct", "lstsq", "power"])
    def test_birth_death_analytic(self, method):
        q = birth_death_generator(6, 1.0, 2.0)
        pi = steady_state(q, method=method)
        assert np.allclose(pi, birth_death_pi(6, 1.0, 2.0), atol=1e-8)

    @pytest.mark.parametrize("method", ["direct", "lstsq", "power"])
    def test_two_state_flip_flop(self, method):
        q = np.array([[-3.0, 3.0], [1.0, -1.0]])
        pi = steady_state(q, method=method)
        assert np.allclose(pi, [0.25, 0.75])

    def test_methods_agree_on_random_chain(self, rng):
        n = 7
        q = rng.random((n, n))
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        results = [steady_state(q, method=m) for m in ("direct", "lstsq", "power")]
        assert np.allclose(results[0], results[1], atol=1e-8)
        assert np.allclose(results[0], results[2], atol=1e-8)

    def test_single_state(self):
        assert steady_state(np.array([[0.0]])) == pytest.approx([1.0])

    def test_absorbing_state_gets_all_mass(self):
        # 0 -> 1 -> 2 (absorbing): pi = (0, 0, 1)
        q = np.array([[-1.0, 1.0, 0.0], [0.0, -1.0, 1.0], [0.0, 0.0, 0.0]])
        pi = steady_state(q)
        assert np.allclose(pi, [0.0, 0.0, 1.0], atol=1e-9)

    def test_unknown_method_rejected(self):
        with pytest.raises(MarkovModelError):
            steady_state(birth_death_generator(3, 1.0, 1.0), method="magic")

    def test_reducible_two_class_chain_rejected(self):
        # Two disconnected flip-flops: no unique stationary distribution.
        q = np.zeros((4, 4))
        q[0, 1] = q[1, 0] = 1.0
        q[2, 3] = q[3, 2] = 1.0
        np.fill_diagonal(q, -q.sum(axis=1))
        with pytest.raises(MarkovModelError):
            steady_state(q, method="direct")


class TestIrreducibility:
    def test_birth_death_irreducible(self):
        assert is_irreducible(birth_death_generator(5, 1.0, 1.0))

    def test_disconnected_not_irreducible(self):
        q = np.zeros((4, 4))
        q[0, 1] = q[1, 0] = 1.0
        q[2, 3] = q[3, 2] = 1.0
        np.fill_diagonal(q, -q.sum(axis=1))
        assert not is_irreducible(q)

    def test_single_state_irreducible(self):
        assert is_irreducible(np.array([[0.0]]))


class TestTransient:
    def test_t_zero_is_initial(self):
        q = birth_death_generator(4, 1.0, 2.0)
        pi0 = np.array([1.0, 0.0, 0.0, 0.0])
        assert np.allclose(transient(q, pi0, 0.0), pi0)

    def test_long_horizon_reaches_steady_state(self):
        q = birth_death_generator(4, 1.0, 2.0)
        pi0 = np.array([1.0, 0.0, 0.0, 0.0])
        pi_inf = steady_state(q)
        assert np.allclose(transient(q, pi0, 200.0), pi_inf, atol=1e-6)

    def test_matches_expm(self):
        from scipy.linalg import expm

        q = birth_death_generator(5, 1.3, 0.7)
        pi0 = np.array([0.2, 0.2, 0.2, 0.2, 0.2])
        for t in (0.1, 1.0, 5.0):
            expected = pi0 @ expm(q * t)
            assert np.allclose(transient(q, pi0, t), expected, atol=1e-9)

    def test_distribution_stays_normalised(self):
        q = birth_death_generator(4, 2.0, 1.0)
        pi0 = np.array([0.0, 0.0, 0.0, 1.0])
        pi_t = transient(q, pi0, 3.0)
        assert pi_t.sum() == pytest.approx(1.0)
        assert (pi_t >= 0).all()

    def test_invalid_inputs(self):
        q = birth_death_generator(3, 1.0, 1.0)
        with pytest.raises(MarkovModelError):
            transient(q, np.array([1.0, 0.0]), 1.0)  # wrong shape
        with pytest.raises(MarkovModelError):
            transient(q, np.array([0.5, 0.2, 0.2]), 1.0)  # not normalised
        with pytest.raises(MarkovModelError):
            transient(q, np.array([1.0, 0.0, 0.0]), -1.0)  # negative time

    def test_zero_generator_is_static(self):
        q = np.zeros((3, 3))
        pi0 = np.array([0.3, 0.3, 0.4])
        assert np.allclose(transient(q, pi0, 10.0), pi0)


class TestDerivedQuantities:
    def test_mean_holding_times(self):
        q = np.array([[-2.0, 2.0], [4.0, -4.0]])
        assert np.allclose(mean_holding_times(q), [0.5, 0.25])

    def test_absorbing_state_infinite_holding(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        holding = mean_holding_times(q)
        assert holding[0] == 1.0
        assert np.isinf(holding[1])

    def test_expected_value(self):
        pi = np.array([0.25, 0.75])
        values = np.array([100.0, 200.0])
        assert expected_value(pi, values) == 175.0

    def test_expected_value_shape_mismatch(self):
        with pytest.raises(MarkovModelError):
            expected_value(np.array([1.0]), np.array([1.0, 2.0]))
