"""Unit tests for first-passage and reward analysis."""

import numpy as np
import pytest

from repro.errors import MarkovModelError
from repro.markov.first_passage import (
    degradation_time,
    expected_time_above,
    mean_first_passage_times,
    reward_rate,
)


def two_state(lam, mu):
    """0 <-> 1 chain: up-rate lam, down-rate mu."""
    return np.array([[-lam, lam], [mu, -mu]])


def birth_death(n, lam, mu):
    q = np.zeros((n, n))
    for i in range(n):
        if i + 1 < n:
            q[i, i + 1] = lam
        if i > 0:
            q[i, i - 1] = mu
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


class TestFirstPassage:
    def test_two_state_analytic(self):
        # From state 1, time to hit 0 is Exp(mu): mean 1/mu.
        q = two_state(lam=2.0, mu=4.0)
        h = mean_first_passage_times(q, targets=[0])
        assert h[0] == 0.0
        assert h[1] == pytest.approx(0.25)

    def test_pure_death_chain(self):
        # 2 -> 1 -> 0 at rate 1: hitting 0 from 2 takes mean 2.
        q = np.array(
            [[0.0, 0.0, 0.0], [1.0, -1.0, 0.0], [0.0, 1.0, -1.0]]
        )
        h = mean_first_passage_times(q, targets=[0])
        assert h[1] == pytest.approx(1.0)
        assert h[2] == pytest.approx(2.0)

    def test_birth_death_monotone_in_start(self):
        q = birth_death(6, lam=1.0, mu=1.5)
        h = mean_first_passage_times(q, targets=[0])
        assert all(b > a for a, b in zip(h, h[1:]))

    def test_multiple_targets(self):
        q = birth_death(5, 1.0, 1.0)
        h = mean_first_passage_times(q, targets=[0, 4])
        assert h[0] == h[4] == 0.0
        assert h[2] == max(h)  # the middle is farthest from both ends

    def test_unreachable_target_is_infinite(self):
        # State 1 is absorbing; it can never reach 0.
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        h = mean_first_passage_times(q, targets=[0])
        assert np.isinf(h[1])

    def test_invalid_targets(self):
        q = two_state(1.0, 1.0)
        with pytest.raises(MarkovModelError):
            mean_first_passage_times(q, targets=[])
        with pytest.raises(MarkovModelError):
            mean_first_passage_times(q, targets=[5])

    def test_all_states_targets(self):
        q = two_state(1.0, 1.0)
        assert np.allclose(mean_first_passage_times(q, targets=[0, 1]), 0.0)


class TestTimeAbove:
    def test_two_state(self):
        q = two_state(lam=3.0, mu=1.0)  # pi = (1/4, 3/4)
        assert expected_time_above(q, 1) == pytest.approx(0.75)
        assert expected_time_above(q, 0) == pytest.approx(1.0)

    def test_out_of_range(self):
        with pytest.raises(MarkovModelError):
            expected_time_above(two_state(1.0, 1.0), 5)


class TestRewardRate:
    def test_weighted_by_pi(self):
        q = two_state(lam=1.0, mu=1.0)  # pi = (1/2, 1/2)
        assert reward_rate(q, [0.0, 10.0]) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(MarkovModelError):
            reward_rate(two_state(1.0, 1.0), [1.0, 2.0, 3.0])


class TestDegradationTime:
    def test_defaults_to_top_state(self):
        q = birth_death(4, 1.0, 2.0)
        assert degradation_time(q) == pytest.approx(
            mean_first_passage_times(q, [0])[3]
        )

    def test_explicit_start(self):
        q = birth_death(4, 1.0, 2.0)
        assert degradation_time(q, from_state=1) < degradation_time(q, from_state=3)

    def test_invalid_start(self):
        with pytest.raises(MarkovModelError):
            degradation_time(birth_death(3, 1.0, 1.0), from_state=7)

    def test_on_elastic_chain(self):
        """More downward pressure shortens the degradation time."""
        from repro.markov.model import ElasticQoSMarkovModel
        from repro.markov.parameters import (
            MarkovParameters,
            uniform_downward_matrix,
            uniform_upward_matrix,
        )
        from repro.qos.spec import ElasticQoS

        qos = ElasticQoS(b_min=100.0, b_max=300.0, increment=50.0)

        def chain(pf):
            params = MarkovParameters(
                num_levels=5,
                pf=pf,
                ps=0.2,
                a=uniform_downward_matrix(5),
                b=uniform_upward_matrix(5),
                t=uniform_upward_matrix(5),
                arrival_rate=0.001,
                termination_rate=0.001,
            )
            return ElasticQoSMarkovModel(qos, params).generator()

        assert degradation_time(chain(0.6)) < degradation_time(chain(0.2))
