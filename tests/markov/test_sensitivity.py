"""Unit tests for Markov-model sensitivity analysis."""

import pytest

from repro.errors import MarkovModelError
from repro.markov.parameters import (
    MarkovParameters,
    uniform_downward_matrix,
    uniform_upward_matrix,
)
from repro.markov.sensitivity import (
    SCALAR_PARAMETERS,
    local_sensitivities,
    sweep_parameter,
)
from repro.qos.spec import ElasticQoS


def qos():
    return ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0)


def params(**overrides):
    base = dict(
        num_levels=9,
        pf=0.3,
        ps=0.3,
        a=uniform_downward_matrix(9),
        b=uniform_upward_matrix(9),
        t=uniform_upward_matrix(9),
        arrival_rate=0.001,
        termination_rate=0.001,
        failure_rate=1e-5,
    )
    base.update(overrides)
    return MarkovParameters(**base)


class TestSweep:
    def test_failure_rate_sweep_monotone_down(self):
        points = sweep_parameter(qos(), params(), "failure_rate",
                                 [1e-6, 1e-4, 1e-3, 1e-2])
        values = [bw for _, bw in points]
        assert values == sorted(values, reverse=True)

    def test_ps_sweep_monotone_up(self):
        points = sweep_parameter(qos(), params(), "ps", [0.1, 0.3, 0.5, 0.7])
        values = [bw for _, bw in points]
        assert values == sorted(values)

    def test_original_params_untouched(self):
        p = params()
        sweep_parameter(qos(), p, "pf", [0.1, 0.2])
        assert p.pf == 0.3

    def test_unknown_parameter_rejected(self):
        with pytest.raises(MarkovModelError):
            sweep_parameter(qos(), params(), "magic", [1.0])

    def test_infeasible_value_raises(self):
        with pytest.raises(MarkovModelError):
            sweep_parameter(qos(), params(ps=0.5), "pf", [0.9])  # pf+ps > 1


class TestLocalSensitivities:
    def test_all_parameters_reported(self):
        out = local_sensitivities(qos(), params())
        assert set(out) == set(SCALAR_PARAMETERS)
        for name, sens in out.items():
            assert sens.parameter == name

    def test_signs_match_intuition(self):
        out = local_sensitivities(qos(), params())
        # More terminations (upward pressure) -> more bandwidth.
        assert out["termination_rate"].elasticity > 0
        # More indirect chaining -> more upward transitions.
        assert out["ps"].elasticity > 0
        # More failures -> less bandwidth.
        assert out["failure_rate"].elasticity < 0

    def test_zero_parameter_handled(self):
        out = local_sensitivities(qos(), params(failure_rate=0.0))
        assert out["failure_rate"].elasticity == 0.0
        assert out["failure_rate"].derivative <= 0.0

    def test_step_validated(self):
        with pytest.raises(MarkovModelError):
            local_sensitivities(qos(), params(), relative_step=0.9)
