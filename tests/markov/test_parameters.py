"""Unit tests for Markov model parameter containers."""

import numpy as np
import pytest

from repro.errors import MarkovModelError
from repro.markov.parameters import (
    MarkovParameters,
    identity_matrix,
    uniform_downward_matrix,
    uniform_upward_matrix,
)


def make_params(n=3, **overrides):
    base = dict(
        num_levels=n,
        pf=0.3,
        ps=0.2,
        a=uniform_downward_matrix(n),
        b=uniform_upward_matrix(n),
        t=uniform_upward_matrix(n),
        arrival_rate=0.001,
        termination_rate=0.001,
        failure_rate=0.0,
    )
    base.update(overrides)
    return MarkovParameters(**base)


class TestSyntheticMatrices:
    def test_downward_structure(self):
        a = uniform_downward_matrix(4)
        assert np.allclose(a.sum(axis=1), 1.0)
        assert np.allclose(np.triu(a, k=1), 0.0)
        assert a[2, 0] == pytest.approx(1.0 / 3.0)

    def test_upward_structure(self):
        b = uniform_upward_matrix(4)
        assert np.allclose(b.sum(axis=1), 1.0)
        assert np.allclose(np.tril(b, k=-1), 0.0)
        assert b[3, 3] == 1.0

    def test_identity(self):
        assert np.array_equal(identity_matrix(3), np.eye(3))


class TestValidation:
    def test_valid(self):
        make_params()

    def test_bad_probabilities(self):
        with pytest.raises(MarkovModelError):
            make_params(pf=1.2)
        with pytest.raises(MarkovModelError):
            make_params(ps=-0.1)
        with pytest.raises(MarkovModelError):
            make_params(pf=0.7, ps=0.6)

    def test_bad_rates(self):
        with pytest.raises(MarkovModelError):
            make_params(arrival_rate=-1.0)
        with pytest.raises(MarkovModelError):
            make_params(failure_rate=-0.5)

    def test_non_stochastic_matrix_rejected(self):
        bad = np.full((3, 3), 0.5)
        with pytest.raises(MarkovModelError):
            make_params(a=bad)

    def test_negative_entries_rejected(self):
        bad = uniform_downward_matrix(3)
        bad[0, 0] = -0.5
        bad[0, 1] = 1.5
        with pytest.raises(MarkovModelError):
            make_params(a=bad)

    def test_wrong_shape_rejected(self):
        with pytest.raises(MarkovModelError):
            make_params(a=uniform_downward_matrix(4))

    def test_zero_levels_rejected(self):
        with pytest.raises(MarkovModelError):
            make_params(n=0)

    def test_optional_f_validated(self):
        make_params(f=identity_matrix(3))
        with pytest.raises(MarkovModelError):
            make_params(f=np.zeros((3, 3)))


class TestHelpers:
    def test_failure_matrix_defaults_to_a(self):
        params = make_params()
        assert params.failure_matrix is params.a
        with_f = make_params(f=identity_matrix(3))
        assert np.array_equal(with_f.failure_matrix, np.eye(3))

    def test_with_failure_rate_copies(self):
        params = make_params()
        swept = params.with_failure_rate(0.01)
        assert swept.failure_rate == 0.01
        assert params.failure_rate == 0.0
        assert np.array_equal(swept.a, params.a)
        swept.a[0, 0] = 99.0  # mutating the copy must not touch the original
        assert params.a[0, 0] != 99.0

    def test_observations_dict_copied(self):
        params = make_params()
        params.observations["a"] = 5
        swept = params.with_failure_rate(0.1)
        swept.observations["a"] = 7
        assert params.observations["a"] == 5
