"""Property-based tests for the run-time scheduling substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.interval import IntervalQoS, IntervalRegulator, SkipOverRegulator
from repro.runtime.link_sim import LinkSimulation
from repro.runtime.sources import CbrSource

RUNTIME_SETTINGS = settings(max_examples=40, deadline=None)


# ----------------------------------------------------------------------
# Interval regulators
# ----------------------------------------------------------------------
@given(
    k=st.integers(min_value=0, max_value=10),
    extra=st.integers(min_value=0, max_value=10),
    pattern=st.lists(st.booleans(), min_size=1, max_size=400),
)
@RUNTIME_SETTINGS
def test_interval_regulator_never_breaks_the_floor(k, extra, pattern):
    """Whatever the drop-request pattern, every completed window
    forwards at least k packets, and forwarded + dropped == offered."""
    qos = IntervalQoS(k=k, m=k + extra + 1)
    reg = IntervalRegulator(qos)
    for wants_drop in pattern:
        reg.offer(drop_requested=wants_drop)
    reg.verify_guarantee()
    stats = reg.stats
    assert stats.forwarded + stats.dropped == stats.offered == len(pattern)
    assert all(count >= k for count in stats.window_history)


@given(
    s=st.integers(min_value=2, max_value=12),
    pattern=st.lists(st.booleans(), min_size=1, max_size=400),
)
@RUNTIME_SETTINGS
def test_skip_over_never_skips_consecutively(s, pattern):
    """Skip-over: between any two drops there are >= s-1 forwards."""
    reg = SkipOverRegulator(s)
    outcomes = [reg.offer(drop_requested=wants_drop) for wants_drop in pattern]
    since_drop = s  # start "charged"
    for forwarded in outcomes:
        if forwarded:
            since_drop += 1
        else:
            assert since_drop >= s - 1
            since_drop = 0


# ----------------------------------------------------------------------
# Link simulation conservation
# ----------------------------------------------------------------------
@given(
    rates=st.lists(
        st.integers(min_value=1, max_value=40), min_size=1, max_size=5
    ),
    capacity_factor=st.floats(min_value=0.5, max_value=3.0),
)
@RUNTIME_SETTINGS
def test_packet_conservation(rates, capacity_factor):
    """offered == delivered + dropped + undelivered, per channel, for
    any mix of rates and any (under/over provisioned) capacity."""
    rates_kbps = [10.0 * r for r in rates]
    capacity = max(10.0, capacity_factor * sum(rates_kbps))
    sim = LinkSimulation(capacity=capacity)
    for cid, rate in enumerate(rates_kbps):
        sim.add_channel(cid, reserved_rate=rate, source=CbrSource(cid, rate * 1.5))
    report = sim.run(horizon=3.0)
    for cid in range(len(rates_kbps)):
        stats = report.stats[cid]
        assert (
            stats.delivered_packets + stats.dropped_packets + report.undelivered[cid]
            == stats.offered_packets
        )
        assert all(d >= 0 for d in stats.delays)


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_conforming_channel_throughput_under_contention(seed):
    """A channel sending exactly its reservation gets (almost) exactly
    its reservation, no matter what a competing channel does."""
    rng = np.random.default_rng(seed)
    greedy_rate = float(rng.integers(100, 900))
    sim = LinkSimulation(capacity=1000.0)
    sim.add_channel(1, reserved_rate=400.0, source=CbrSource(1, 400.0))
    sim.add_channel(2, reserved_rate=100.0, source=CbrSource(2, greedy_rate))
    report = sim.run(horizon=10.0)
    assert report.throughput(1) == pytest.approx(400.0, rel=0.1)
