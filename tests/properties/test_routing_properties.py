"""Property-based tests for routing and topology generation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.disjoint import disjoint_path
from repro.routing.flooding import bounded_flood
from repro.routing.ksp import k_shortest_paths
from repro.routing.shortest import path_hops, shortest_path
from repro.topology.waxman import WaxmanParams, expected_edges, waxman_network

ROUTING_SETTINGS = settings(max_examples=30, deadline=None)


def random_connected_network(seed: int, n: int = 12):
    rng = np.random.default_rng(seed)
    return waxman_network(n, WaxmanParams(alpha=0.5, beta=0.4), 100.0, rng)


def brute_force_shortest_hops(net, src, dst, max_len=6):
    """Exhaustive shortest-hop search on a small graph (test oracle)."""
    best = None
    frontier = [[src]]
    for _length in range(max_len):
        next_frontier = []
        for path in frontier:
            if path[-1] == dst:
                return len(path) - 1
            for nbr in net.neighbors(path[-1]):
                if nbr not in path:
                    next_frontier.append(path + [nbr])
        frontier = next_frontier
    return best


@given(
    seed=st.integers(min_value=0, max_value=500),
    src=st.integers(min_value=0, max_value=11),
    dst=st.integers(min_value=0, max_value=11),
)
@ROUTING_SETTINGS
def test_shortest_path_is_optimal(seed, src, dst):
    if src == dst:
        return
    net = random_connected_network(seed)
    path = shortest_path(net, src, dst)
    oracle = brute_force_shortest_hops(net, src, dst)
    if oracle is None:
        # Path longer than the oracle's depth bound: just check validity.
        assert path is None or net.is_path(path)
        return
    assert path is not None
    assert net.is_path(path)
    assert path_hops(path) == oracle


@given(
    seed=st.integers(min_value=0, max_value=500),
    src=st.integers(min_value=0, max_value=11),
    dst=st.integers(min_value=0, max_value=11),
)
@ROUTING_SETTINGS
def test_flooding_first_route_matches_shortest_hops(seed, src, dst):
    """The first flood copy to arrive used a shortest (hop) route."""
    if src == dst:
        return
    net = random_connected_network(seed)
    result = bounded_flood(net, src, dst, b_min=1.0, allowance=lambda l: 1e9, hop_bound=11)
    best = shortest_path(net, src, dst)
    assert result.found and best is not None
    assert result.routes[0].hops == path_hops(best)


@given(
    seed=st.integers(min_value=0, max_value=500),
    src=st.integers(min_value=0, max_value=11),
    dst=st.integers(min_value=0, max_value=11),
    k=st.integers(min_value=1, max_value=5),
)
@ROUTING_SETTINGS
def test_k_shortest_paths_sorted_unique_loopless(seed, src, dst, k):
    if src == dst:
        return
    net = random_connected_network(seed)
    paths = k_shortest_paths(net, src, dst, k)
    hops = [path_hops(p) for p in paths]
    assert hops == sorted(hops)
    assert len({tuple(p) for p in paths}) == len(paths)
    for p in paths:
        assert net.is_path(p)


@given(
    seed=st.integers(min_value=0, max_value=500),
    src=st.integers(min_value=0, max_value=11),
    dst=st.integers(min_value=0, max_value=11),
)
@ROUTING_SETTINGS
def test_disjoint_path_overlap_is_minimal_possible(seed, src, dst):
    """Whenever disjoint_path reports overlap 0, the paths truly share
    nothing; whenever it reports overlap > 0, no fully disjoint path
    exists in the residual graph."""
    if src == dst:
        return
    net = random_connected_network(seed)
    primary = shortest_path(net, src, dst)
    assert primary is not None
    avoid = frozenset(net.path_links(primary))
    result = disjoint_path(net, src, dst, avoid)
    assert result is not None  # the topology is connected with no filter
    backup, overlap = result
    shared = sum(1 for a, b in zip(backup, backup[1:]) if net.get_link(a, b).id in avoid)
    assert shared == overlap
    if overlap > 0:
        strict = disjoint_path(net, src, dst, avoid, allow_partial=False)
        assert strict is None


@given(
    alpha_lo=st.floats(min_value=0.05, max_value=0.4),
    bump=st.floats(min_value=0.1, max_value=0.5),
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=30, deadline=None)
def test_waxman_expected_edges_monotone_in_alpha(alpha_lo, bump, seed):
    rng = np.random.default_rng(seed)
    points = rng.random((30, 2))
    lo = expected_edges(points, WaxmanParams(alpha_lo, 0.3))
    hi = expected_edges(points, WaxmanParams(min(1.0, alpha_lo + bump), 0.3))
    assert hi >= lo


# ---------------------------------------------------------------------------
# Lazy k-shortest-paths vs. the original eager implementation
# ---------------------------------------------------------------------------

def eager_k_shortest_paths(net, source, destination, k, link_filter=None):
    """The pre-heap, pre-lazy Yen's implementation (regression oracle).

    Verbatim port of the original eager algorithm: full shortest-path
    calls per spur, a sorted candidate list re-sorted per accepted path,
    and nothing computed lazily.  The production generator promises a
    bitwise-identical enumeration order.
    """
    first = shortest_path(net, source, destination, link_filter)
    if first is None:
        return []
    paths = [first]
    candidates = []
    seen = {tuple(first)}
    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            removed_links = set()
            for path in paths:
                if len(path) > i and path[: i + 1] == root:
                    removed_links.add(net.get_link(path[i], path[i + 1]).id)
            banned_nodes = set(root[:-1])

            def spur_filter(link):
                if link.id in removed_links:
                    return False
                if link.u in banned_nodes or link.v in banned_nodes:
                    return False
                return link_filter is None or link_filter(link)

            spur = shortest_path(net, spur_node, destination, spur_filter)
            if spur is None:
                continue
            total = root[:-1] + spur
            key = tuple(total)
            if key in seen:
                continue
            seen.add(key)
            candidates.append((path_hops(total), total))
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        _, best = candidates.pop(0)
        paths.append(best)
    return paths


@given(
    seed=st.integers(min_value=0, max_value=500),
    src=st.integers(min_value=0, max_value=11),
    dst=st.integers(min_value=0, max_value=11),
    k=st.integers(min_value=1, max_value=8),
)
@ROUTING_SETTINGS
def test_lazy_ksp_matches_eager_oracle(seed, src, dst, k):
    if src == dst:
        return
    net = random_connected_network(seed)
    assert k_shortest_paths(net, src, dst, k) == eager_k_shortest_paths(net, src, dst, k)


@given(
    seed=st.integers(min_value=0, max_value=500),
    src=st.integers(min_value=0, max_value=11),
    dst=st.integers(min_value=0, max_value=11),
    banned=st.sets(st.integers(min_value=0, max_value=11), max_size=3),
)
@ROUTING_SETTINGS
def test_lazy_ksp_matches_eager_oracle_filtered(seed, src, dst, banned):
    """Equivalence must also hold under admission-style link filters."""
    if src == dst:
        return
    net = random_connected_network(seed)
    flt = lambda link: link.u not in banned and link.v not in banned  # noqa: E731
    assert k_shortest_paths(net, src, dst, 6, link_filter=flt) == eager_k_shortest_paths(
        net, src, dst, 6, link_filter=flt
    )
