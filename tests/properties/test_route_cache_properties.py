"""Cached routing must be observationally identical to uncached routing.

The route cache (repro.routing.cache) promises that enabling it never
changes a single route, acceptance decision, or bandwidth number — it
only changes how fast the answers arrive.  These properties drive twin
managers (one cached, one with ``route_cache_probe=0``) through the
same randomized workload of arrivals, terminations, link failures and
repairs on random Waxman topologies, and require the observable state
to stay bitwise identical throughout.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.manager import NetworkManager
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.topology.waxman import WaxmanParams, waxman_network

PROPERTY_SETTINGS = settings(max_examples=12, deadline=None)

QOS = ConnectionQoS(
    performance=ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0),
    dependability=DependabilityQoS(),
)
QOS_UNPROTECTED = ConnectionQoS(
    performance=ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0),
    dependability=DependabilityQoS(num_backups=0),
)


def twin_managers(seed: int, n: int = 12):
    rng = np.random.default_rng(seed)
    net = waxman_network(n, WaxmanParams(alpha=0.5, beta=0.4), 2000.0, rng)
    return net, NetworkManager(net), NetworkManager(net, route_cache_probe=0)


def assert_twins_agree(cached: NetworkManager, plain: NetworkManager) -> None:
    assert sorted(cached.connections) == sorted(plain.connections)
    for cid, conn in cached.connections.items():
        other = plain.connections[cid]
        assert conn.primary_path == other.primary_path
        assert conn.backup_path == other.backup_path
        assert conn.level == other.level
        assert conn.state == other.state
    assert cached.average_live_bandwidth() == plain.average_live_bandwidth()


@given(seed=st.integers(min_value=0, max_value=10_000))
@PROPERTY_SETTINGS
def test_cached_equals_uncached_under_load(seed):
    """Arrivals and terminations: identical accepts, routes and levels."""
    net, cached, plain = twin_managers(seed)
    rng = np.random.default_rng(seed + 1)
    nodes = np.array(net.nodes())
    live: list[int] = []
    for step in range(60):
        if live and rng.random() < 0.3:
            cid = live.pop(int(rng.integers(len(live))))
            cached.terminate_connection(cid)
            plain.terminate_connection(cid)
        else:
            src, dst = rng.choice(nodes, size=2, replace=False)
            qos = QOS if rng.random() < 0.7 else QOS_UNPROTECTED
            conn_a, _ = cached.request_connection(int(src), int(dst), qos)
            conn_b, _ = plain.request_connection(int(src), int(dst), qos)
            assert (conn_a is None) == (conn_b is None)
            if conn_a is not None:
                assert conn_a.conn_id == conn_b.conn_id
                live.append(conn_a.conn_id)
    assert_twins_agree(cached, plain)
    cached.check_invariants()


@given(seed=st.integers(min_value=0, max_value=10_000))
@PROPERTY_SETTINGS
def test_cached_equals_uncached_through_failures(seed):
    """Fail/repair sequences: invalidation must never leak stale routes."""
    net, cached, plain = twin_managers(seed)
    rng = np.random.default_rng(seed + 2)
    nodes = np.array(net.nodes())
    links = net.link_ids()
    failed: list = []
    for step in range(50):
        roll = rng.random()
        if roll < 0.2 and failed:
            lid = failed.pop(int(rng.integers(len(failed))))
            cached.repair_link(lid)
            plain.repair_link(lid)
        elif roll < 0.4:
            lid = links[int(rng.integers(len(links)))]
            if not cached.state.is_failed(lid):
                failed.append(lid)
                cached.fail_link(lid)
                plain.fail_link(lid)
        else:
            src, dst = rng.choice(nodes, size=2, replace=False)
            conn_a, _ = cached.request_connection(int(src), int(dst), QOS)
            conn_b, _ = plain.request_connection(int(src), int(dst), QOS)
            assert (conn_a is None) == (conn_b is None)
            if conn_a is not None:
                assert conn_a.primary_path == conn_b.primary_path
                assert conn_a.backup_path == conn_b.backup_path
    assert_twins_agree(cached, plain)
    assert cached.state.failed_links == plain.state.failed_links
