"""Property-based tests (hypothesis) for the library's core invariants.

These encode DESIGN.md §6: capacity invariants under arbitrary event
sequences, water-filling maximality, multiplexing safety, CTMC solver
agreement, and quantisation round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channels.manager import NetworkManager
from repro.channels.records import ConnectionState
from repro.elastic.redistribute import is_maximal
from repro.markov.ctmc import steady_state
from repro.network.link_state import EPSILON
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.sim.engine import EventScheduler
from repro.topology.regular import complete_network

#: Shared hypothesis settings: the manager-driven properties run whole
#: event sequences per example, so keep example counts moderate.
SEQ_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# ElasticQoS quantisation
# ----------------------------------------------------------------------
@given(
    b_min=st.floats(min_value=1.0, max_value=1e4),
    steps=st.integers(min_value=0, max_value=64),
    increment=st.floats(min_value=0.5, max_value=1e3),
)
def test_level_roundtrip(b_min, steps, increment):
    qos = ElasticQoS(
        b_min=b_min, b_max=b_min + steps * increment, increment=increment
    )
    assert qos.num_levels == steps + 1
    for level in range(qos.num_levels):
        bw = qos.level_bandwidth(level)
        assert qos.level_of(bw) == level
        assert b_min - 1e-9 <= bw <= qos.b_max + 1e-9


# ----------------------------------------------------------------------
# CTMC solvers
# ----------------------------------------------------------------------
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_ctmc_solvers_agree_on_random_irreducible_chains(n, seed):
    rng = np.random.default_rng(seed)
    q = rng.random((n, n)) + 0.01  # strictly positive off-diagonals
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    pis = [steady_state(q, method=m) for m in ("direct", "lstsq", "power")]
    for pi in pis:
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= -1e-12).all()
        assert np.abs(pi @ q).max() < 1e-8
    assert np.allclose(pis[0], pis[1], atol=1e-8)
    assert np.allclose(pis[0], pis[2], atol=1e-8)


# ----------------------------------------------------------------------
# Event engine ordering
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_engine_fires_in_nondecreasing_time_order(times):
    sched = EventScheduler()
    fired = []
    for t in times:
        sched.schedule_at(t, lambda t=t: fired.append(t))
    sched.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)


# ----------------------------------------------------------------------
# Manager event sequences
# ----------------------------------------------------------------------
def _contract(elastic: bool, backups: int) -> ConnectionQoS:
    if elastic:
        perf = ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0)
    else:
        perf = ElasticQoS(b_min=100.0, b_max=100.0, increment=100.0)
    return ConnectionQoS(
        performance=perf, dependability=DependabilityQoS(num_backups=backups)
    )


op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["arrive", "terminate", "fail", "repair"]),
        st.integers(min_value=0, max_value=10_000),
        st.booleans(),  # elastic?
        st.booleans(),  # with backup?
    ),
    min_size=1,
    max_size=40,
)


def _apply_ops(manager: NetworkManager, net, ops):
    """Drive the manager through an arbitrary op sequence."""
    nodes = net.nodes()
    links = net.link_ids()
    for op, choice, elastic, backup in ops:
        if op == "arrive":
            src = nodes[choice % len(nodes)]
            dst = nodes[(choice // 7 + 1 + src) % len(nodes)]
            if src == dst:
                dst = nodes[(dst + 1) % len(nodes)]
            manager.request_connection(src, dst, _contract(elastic, int(backup)))
        elif op == "terminate":
            live = manager.live_connection_ids()
            if live:
                manager.terminate_connection(live[choice % len(live)])
        elif op == "fail":
            alive = [l for l in links if not manager.state.is_failed(l)]
            if len(alive) > len(links) - 2:  # keep at most 2 links down
                manager.fail_link(alive[choice % len(alive)])
        elif op == "repair":
            failed = sorted(manager.state.failed_links)
            if failed:
                manager.repair_link(failed[choice % len(failed)])


@given(ops=op_strategy)
@SEQ_SETTINGS
def test_invariants_hold_under_arbitrary_event_sequences(ops):
    net = complete_network(6, 1000.0)
    manager = NetworkManager(net)
    _apply_ops(manager, net, ops)
    manager.check_invariants()
    # Usage never exceeds capacity on any link, failures or not.
    for ls in manager.state.links():
        assert ls.used <= ls.capacity + EPSILON


@given(ops=op_strategy)
@SEQ_SETTINGS
def test_levels_stay_quantised_and_in_range(ops):
    net = complete_network(6, 1000.0)
    manager = NetworkManager(net)
    _apply_ops(manager, net, ops)
    for conn in manager.connections.values():
        qos = conn.qos.performance
        assert 0 <= conn.level <= qos.max_level
        bw = conn.bandwidth
        assert qos.b_min - 1e-9 <= bw <= qos.b_max + 1e-9
        # quantised: offset is an integral multiple of the increment
        steps = (bw - qos.b_min) / qos.increment
        assert abs(steps - round(steps)) < 1e-9


@given(ops=op_strategy)
@SEQ_SETTINGS
def test_allocation_is_maximal_after_every_sequence(ops):
    net = complete_network(6, 1000.0)
    manager = NetworkManager(net)
    _apply_ops(manager, net, ops)
    participants = {
        cid: conn
        for cid, conn in manager.connections.items()
        if conn.is_elastic_participant
    }
    assert is_maximal(manager.state, manager.connections, participants.keys())


@given(ops=op_strategy)
@SEQ_SETTINGS
def test_backup_multiplexing_safety(ops):
    """For every link and every single failure, the backups that failure
    would activate fit inside the link's backup reservation."""
    net = complete_network(6, 1000.0)
    manager = NetworkManager(net)
    # Exclude failures: the multiplexing guarantee is a pre-failure one.
    ops = [op for op in ops if op[0] not in ("fail", "repair")]
    if not ops:
        return
    _apply_ops(manager, net, ops)
    for ls in manager.state.links():
        for f, demand in ls.backup_demand.items():
            assert demand <= ls.backup_reserved + EPSILON
        # and the reservation is honourable:
        assert (
            ls.primary_min_total + ls.backup_reserved + ls.activated_total
            <= ls.capacity + EPSILON
        )


@given(ops=op_strategy)
@SEQ_SETTINGS
def test_backup_disjointness_on_rich_topology(ops):
    """On a complete graph a link-disjoint backup always exists, so every
    admitted connection's backup must be fully disjoint."""
    net = complete_network(6, 1000.0)
    manager = NetworkManager(net)
    _apply_ops(manager, net, ops)
    for conn in manager.connections.values():
        if conn.state is ConnectionState.ACTIVE and conn.backup_links:
            assert conn.backup_overlap == 0
            assert not set(conn.primary_links) & set(conn.backup_links)
