"""Unit tests for the Waxman and transit-stub topology generators."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.metrics import is_connected
from repro.topology.transit_stub import (
    TransitStubParams,
    stub_node_ids,
    transit_node_ids,
    transit_stub_network,
)
from repro.topology.waxman import (
    WaxmanParams,
    calibrate_beta,
    expected_edges,
    paper_random_network,
    waxman_edge_probability,
    waxman_network,
)


class TestWaxmanParams:
    def test_valid(self):
        WaxmanParams(alpha=0.33, beta=0.2)

    def test_alpha_range(self):
        with pytest.raises(TopologyError):
            WaxmanParams(alpha=0.0, beta=0.2)
        with pytest.raises(TopologyError):
            WaxmanParams(alpha=1.5, beta=0.2)

    def test_beta_zero_rejected(self):
        # The paper's quoted beta = 0 is degenerate (DESIGN.md).
        with pytest.raises(TopologyError):
            WaxmanParams(alpha=0.33, beta=0.0)


class TestEdgeProbability:
    def test_decreases_with_distance(self):
        params = WaxmanParams(alpha=0.5, beta=0.3)
        near = waxman_edge_probability(0.1, 1.0, params)
        far = waxman_edge_probability(0.9, 1.0, params)
        assert near > far

    def test_alpha_is_cap(self):
        params = WaxmanParams(alpha=0.5, beta=0.3)
        assert waxman_edge_probability(0.0, 1.0, params) == pytest.approx(0.5)

    def test_scale_must_be_positive(self):
        with pytest.raises(TopologyError):
            waxman_edge_probability(0.1, 0.0, WaxmanParams(0.5, 0.3))


class TestWaxmanNetwork:
    def test_deterministic_with_seed(self):
        a = waxman_network(30, WaxmanParams(0.4, 0.3), 100.0, np.random.default_rng(5))
        b = waxman_network(30, WaxmanParams(0.4, 0.3), 100.0, np.random.default_rng(5))
        assert a.link_ids() == b.link_ids()

    def test_connected_by_default(self, rng):
        net = waxman_network(40, WaxmanParams(0.2, 0.1), 100.0, rng)
        assert is_connected(net)

    def test_nodes_have_positions(self, rng):
        net = waxman_network(10, WaxmanParams(0.5, 0.5), 100.0, rng)
        assert all(net.position(n) is not None for n in net.nodes())

    def test_uniform_capacity(self, rng):
        net = waxman_network(15, WaxmanParams(0.5, 0.5), 123.0, rng)
        assert all(link.capacity == 123.0 for link in net.links())

    def test_too_few_nodes(self, rng):
        with pytest.raises(TopologyError):
            waxman_network(1, WaxmanParams(0.5, 0.5), 1.0, rng)

    def test_raw_model_can_be_disconnected(self):
        # With a minuscule alpha the raw model has almost no edges.
        rng = np.random.default_rng(0)
        net = waxman_network(
            20, WaxmanParams(0.01, 0.05), 1.0, rng, ensure_connected=False
        )
        assert net.num_links < 20  # raw: far fewer than a spanning tree needs


class TestCalibration:
    def test_expected_edges_monotone_in_beta(self, rng):
        points = rng.random((50, 2))
        low = expected_edges(points, WaxmanParams(0.33, 0.05))
        high = expected_edges(points, WaxmanParams(0.33, 0.5))
        assert high > low

    def test_calibrate_hits_target(self, rng):
        points = rng.random((60, 2))
        target = 120.0
        beta = calibrate_beta(points, 0.33, target)
        got = expected_edges(points, WaxmanParams(0.33, beta))
        assert got == pytest.approx(target, abs=1.0)

    def test_unreachable_target_rejected(self, rng):
        points = rng.random((10, 2))
        with pytest.raises(TopologyError):
            calibrate_beta(points, 0.33, 1000.0)  # more than alpha * C(10,2)
        with pytest.raises(TopologyError):
            calibrate_beta(points, 0.33, 0.0)


class TestPaperRandomNetwork:
    def test_edge_count_near_target(self, rng):
        net = paper_random_network(10_000.0, rng, n=100, target_edges=354)
        assert net.num_nodes == 100
        # Sampled edge count fluctuates around the calibrated expectation.
        assert 280 <= net.num_links <= 440
        assert is_connected(net)

    def test_density_scales_with_nodes(self):
        small = paper_random_network(1.0, np.random.default_rng(1), n=50)
        large = paper_random_network(1.0, np.random.default_rng(1), n=100)
        # Default target scales ~n^2: edges should grow much faster than n.
        assert large.num_links > 2.5 * small.num_links


class TestTransitStub:
    def test_default_node_count(self, rng):
        params = TransitStubParams()
        net = transit_stub_network(params, 100.0, rng)
        assert net.num_nodes == params.total_nodes == 104

    def test_connected(self, rng):
        net = transit_stub_network(TransitStubParams(), 100.0, rng)
        assert is_connected(net)

    def test_node_id_partition(self):
        params = TransitStubParams()
        transit = transit_node_ids(params)
        stub = stub_node_ids(params)
        assert len(transit) + len(stub) == params.total_nodes
        assert set(transit).isdisjoint(stub)
        assert transit == list(range(len(transit)))

    def test_deterministic_with_seed(self):
        params = TransitStubParams()
        a = transit_stub_network(params, 1.0, np.random.default_rng(3))
        b = transit_stub_network(params, 1.0, np.random.default_rng(3))
        assert a.link_ids() == b.link_ids()

    def test_invalid_params(self):
        with pytest.raises(TopologyError):
            TransitStubParams(transit_domains=0)
        with pytest.raises(TopologyError):
            TransitStubParams(intra_domain_edge_prob=1.5)
        with pytest.raises(TopologyError):
            TransitStubParams(stub_nodes_per_domain=0)

    def test_transit_capacity_override(self, rng):
        params = TransitStubParams(transit_domains=2, transit_nodes_per_domain=2,
                                   stub_domains_per_transit_node=1, stub_nodes_per_domain=2)
        net = transit_stub_network(params, 100.0, rng, transit_capacity=500.0)
        transit = set(transit_node_ids(params))
        core_links = [l for l in net.links() if l.u in transit and l.v in transit]
        assert core_links, "expected at least one transit-core link"
        assert all(l.capacity == 500.0 for l in core_links)

    def test_stub_nodes_attach_via_transit(self, rng):
        """Removing all transit nodes' links must disconnect every stub domain
        from stubs of other transit nodes: stub-to-stub traffic crosses the core."""
        params = TransitStubParams()
        net = transit_stub_network(params, 100.0, rng)
        transit = set(transit_node_ids(params))
        # every stub node reaches a transit node within its domain depth
        from repro.topology.metrics import bfs_distances
        for stub in stub_node_ids(params)[:10]:
            dist = bfs_distances(net, stub)
            assert any(t in dist for t in transit)
