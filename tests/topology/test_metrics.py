"""Unit tests for topology metrics."""

import pytest

from repro.errors import TopologyError
from repro.topology.graph import Network
from repro.topology.metrics import (
    average_degree,
    average_shortest_path_hops,
    bfs_distances,
    connected_components,
    degree_histogram,
    diameter,
    eccentricity,
    is_connected,
    leaf_nodes,
)
from repro.topology.regular import complete_network, line_network, ring_network


class TestBfsDistances:
    def test_line(self, line5):
        dist = bfs_distances(line5, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unknown_source(self, line5):
        with pytest.raises(TopologyError):
            bfs_distances(line5, 99)

    def test_disconnected_reaches_only_component(self):
        net = Network()
        net.add_link(0, 1, 1.0)
        net.add_link(2, 3, 1.0)
        assert set(bfs_distances(net, 0)) == {0, 1}


class TestComponents:
    def test_single_component(self, ring6):
        assert connected_components(ring6) == [[0, 1, 2, 3, 4, 5]]

    def test_two_components(self):
        net = Network()
        net.add_link(0, 1, 1.0)
        net.add_link(2, 3, 1.0)
        assert connected_components(net) == [[0, 1], [2, 3]]

    def test_is_connected(self, ring6):
        assert is_connected(ring6)
        net = Network()
        net.add_link(0, 1, 1.0)
        net.add_node(5)
        assert not is_connected(net)

    def test_empty_is_connected(self):
        assert is_connected(Network())


class TestDegreeMetrics:
    def test_average_degree_ring(self, ring6):
        assert average_degree(ring6) == pytest.approx(2.0)

    def test_average_degree_complete(self):
        net = complete_network(5, 1.0)
        assert average_degree(net) == pytest.approx(4.0)

    def test_average_degree_empty_rejected(self):
        with pytest.raises(TopologyError):
            average_degree(Network())

    def test_degree_histogram(self, line5):
        assert degree_histogram(line5) == {1: 2, 2: 3}

    def test_leaf_nodes(self, line5):
        assert leaf_nodes(line5) == [0, 4]
        assert leaf_nodes(ring_network(4, 1.0)) == []


class TestDiameter:
    def test_line_diameter(self, line5):
        assert diameter(line5) == 4

    def test_ring_diameter(self, ring6):
        assert diameter(ring6) == 3

    def test_complete_diameter(self):
        assert diameter(complete_network(4, 1.0)) == 1

    def test_eccentricity(self, line5):
        assert eccentricity(line5, 0) == 4
        assert eccentricity(line5, 2) == 2

    def test_eccentricity_disconnected_rejected(self):
        net = Network()
        net.add_link(0, 1, 1.0)
        net.add_node(9)
        with pytest.raises(TopologyError):
            eccentricity(net, 0)

    def test_sampled_diameter_is_lower_bound(self):
        net = line_network(20, 1.0)
        full = diameter(net)
        sampled = diameter(net, sample=5)
        assert sampled <= full


class TestAveragePath:
    def test_line3(self):
        net = line_network(3, 1.0)
        # pairs: (0,1)=1 (0,2)=2 (1,2)=1 -> mean 4/3 over ordered pairs is same
        assert average_shortest_path_hops(net) == pytest.approx(4.0 / 3.0)

    def test_complete(self):
        net = complete_network(6, 1.0)
        assert average_shortest_path_hops(net) == pytest.approx(1.0)

    def test_single_node_rejected(self):
        net = Network()
        net.add_node(0)
        with pytest.raises(TopologyError):
            average_shortest_path_hops(net)
