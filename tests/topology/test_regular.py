"""Unit tests for the regular test topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology.metrics import diameter, is_connected
from repro.topology.regular import (
    complete_network,
    dumbbell_network,
    grid_network,
    line_network,
    ring_network,
)


class TestLine:
    def test_shape(self):
        net = line_network(4, 10.0)
        assert net.num_nodes == 4
        assert net.num_links == 3

    def test_min_size(self):
        with pytest.raises(TopologyError):
            line_network(1, 10.0)


class TestRing:
    def test_shape(self):
        net = ring_network(5, 10.0)
        assert net.num_nodes == 5
        assert net.num_links == 5
        assert all(net.degree(n) == 2 for n in net.nodes())

    def test_min_size(self):
        with pytest.raises(TopologyError):
            ring_network(2, 10.0)


class TestComplete:
    def test_shape(self):
        net = complete_network(6, 10.0)
        assert net.num_links == 15
        assert diameter(net) == 1

    def test_min_size(self):
        with pytest.raises(TopologyError):
            complete_network(1, 10.0)


class TestGrid:
    def test_shape(self):
        net = grid_network(3, 4, 10.0)
        assert net.num_nodes == 12
        # 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8
        assert net.num_links == 17
        assert is_connected(net)

    def test_positions(self):
        net = grid_network(2, 2, 10.0)
        assert net.position(0) == (0.0, 0.0)
        assert net.position(3) == (1.0, 1.0)

    def test_min_size(self):
        with pytest.raises(TopologyError):
            grid_network(1, 1, 10.0)


class TestDumbbell:
    def test_shape(self):
        net = dumbbell_network(3, 10.0)
        # 3 leaves + hub per side + bottleneck
        assert net.num_nodes == 8
        assert net.num_links == 7
        assert net.has_link(0, 4)  # the bottleneck between hubs 0 and side+1

    def test_bottleneck_capacity(self):
        net = dumbbell_network(2, 10.0, bottleneck_capacity=5.0)
        assert net.get_link(0, 3).capacity == 5.0

    def test_min_size(self):
        with pytest.raises(TopologyError):
            dumbbell_network(0, 10.0)
