"""Unit tests for the flat (pure-random) topology generator."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.metrics import is_connected
from repro.topology.random_flat import pure_random_network, pure_random_with_edge_target


class TestPureRandom:
    def test_deterministic(self):
        a = pure_random_network(30, 0.2, 1.0, np.random.default_rng(8))
        b = pure_random_network(30, 0.2, 1.0, np.random.default_rng(8))
        assert a.link_ids() == b.link_ids()

    def test_connected_by_default(self, rng):
        net = pure_random_network(40, 0.05, 1.0, rng)
        assert is_connected(net)

    def test_zero_probability_yields_spanning_bridges_only(self, rng):
        net = pure_random_network(10, 0.0, 1.0, rng)
        # Connectivity repair adds exactly n-1 bridges to an empty graph.
        assert net.num_links == 9
        assert is_connected(net)

    def test_full_probability_is_complete(self, rng):
        net = pure_random_network(8, 1.0, 1.0, rng)
        assert net.num_links == 28

    def test_raw_model_can_be_disconnected(self):
        net = pure_random_network(
            20, 0.01, 1.0, np.random.default_rng(0), ensure_connected=False
        )
        assert not is_connected(net)

    def test_invalid_inputs(self, rng):
        with pytest.raises(TopologyError):
            pure_random_network(1, 0.5, 1.0, rng)
        with pytest.raises(TopologyError):
            pure_random_network(5, 1.5, 1.0, rng)

    def test_no_positions(self, rng):
        net = pure_random_network(10, 0.3, 1.0, rng)
        assert all(net.position(n) is None for n in net.nodes())


class TestEdgeTarget:
    def test_expected_count_close(self):
        counts = []
        for seed in range(8):
            net = pure_random_with_edge_target(
                50, 150, 1.0, np.random.default_rng(seed)
            )
            counts.append(net.num_links)
        # Connectivity repair can only add; binomial spread is ~11.
        assert 120 <= float(np.mean(counts)) <= 185

    def test_invalid_targets(self, rng):
        with pytest.raises(TopologyError):
            pure_random_with_edge_target(10, 0, 1.0, rng)
        with pytest.raises(TopologyError):
            pure_random_with_edge_target(10, 100, 1.0, rng)
