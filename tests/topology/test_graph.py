"""Unit tests for the Network graph substrate."""

import pytest

from repro.errors import TopologyError
from repro.topology.graph import Link, Network, link_id, network_from_edges


class TestLinkId:
    def test_canonical_order(self):
        assert link_id(3, 1) == (1, 3)
        assert link_id(1, 3) == (1, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            link_id(2, 2)


class TestLink:
    def test_endpoint_order_enforced(self):
        with pytest.raises(TopologyError):
            Link(u=3, v=1, capacity=10.0)

    def test_positive_capacity_required(self):
        with pytest.raises(TopologyError):
            Link(u=1, v=2, capacity=0.0)

    def test_positive_length_required(self):
        with pytest.raises(TopologyError):
            Link(u=1, v=2, capacity=10.0, length=-1.0)

    def test_other_endpoint(self):
        link = Link(u=1, v=2, capacity=10.0)
        assert link.other(1) == 2
        assert link.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        link = Link(u=1, v=2, capacity=10.0)
        with pytest.raises(TopologyError):
            link.other(3)

    def test_id(self):
        assert Link(u=1, v=2, capacity=10.0).id == (1, 2)


class TestNetworkConstruction:
    def test_empty(self):
        net = Network()
        assert net.num_nodes == 0
        assert net.num_links == 0
        assert net.nodes() == []
        assert net.links() == []

    def test_add_link_adds_nodes(self):
        net = Network()
        net.add_link(1, 2, 100.0)
        assert net.num_nodes == 2
        assert net.num_links == 1
        assert net.has_link(2, 1)

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_link(1, 2, 100.0)
        with pytest.raises(TopologyError):
            net.add_link(2, 1, 100.0)

    def test_remove_link(self):
        net = Network()
        net.add_link(1, 2, 100.0)
        net.remove_link(1, 2)
        assert net.num_links == 0
        assert not net.has_link(1, 2)
        # nodes survive link removal
        assert net.num_nodes == 2

    def test_remove_missing_link_rejected(self):
        net = Network()
        net.add_node(1)
        net.add_node(2)
        with pytest.raises(TopologyError):
            net.remove_link(1, 2)

    def test_positions_default_length(self):
        net = Network()
        net.add_node(0, (0.0, 0.0))
        net.add_node(1, (3.0, 4.0))
        link = net.add_link(0, 1, 100.0)
        assert link.length == pytest.approx(5.0)

    def test_explicit_length_wins(self):
        net = Network()
        net.add_node(0, (0.0, 0.0))
        net.add_node(1, (3.0, 4.0))
        link = net.add_link(0, 1, 100.0, length=7.0)
        assert link.length == 7.0

    def test_length_defaults_to_one_without_positions(self):
        net = Network()
        link = net.add_link(0, 1, 100.0)
        assert link.length == 1.0


class TestNetworkQueries:
    def test_neighbors_sorted(self, ring6):
        assert ring6.neighbors(0) == [1, 5]

    def test_neighbors_unknown_node(self, ring6):
        with pytest.raises(TopologyError):
            ring6.neighbors(99)

    def test_degree(self, ring6):
        for node in ring6.nodes():
            assert ring6.degree(node) == 2

    def test_degree_unknown_node(self, ring6):
        with pytest.raises(TopologyError):
            ring6.degree(99)

    def test_get_link_missing(self, ring6):
        with pytest.raises(TopologyError):
            ring6.get_link(0, 3)

    def test_incident_links(self, ring6):
        links = ring6.incident_links(0)
        assert [l.id for l in links] == [(0, 1), (0, 5)]

    def test_contains(self, ring6):
        assert 0 in ring6
        assert 99 not in ring6

    def test_link_ids_sorted(self, line5):
        assert line5.link_ids() == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_distance_requires_positions(self, line5):
        with pytest.raises(TopologyError):
            line5.distance(0, 1)


class TestPathHelpers:
    def test_path_links(self, line5):
        assert line5.path_links([0, 1, 2]) == [(0, 1), (1, 2)]

    def test_path_links_rejects_missing_hop(self, line5):
        with pytest.raises(TopologyError):
            line5.path_links([0, 2])

    def test_is_path(self, line5):
        assert line5.is_path([0, 1, 2, 3])
        assert not line5.is_path([0, 2])        # missing link
        assert not line5.is_path([0, 1, 0])     # repeated node
        assert not line5.is_path([0])           # too short


class TestCopy:
    def test_copy_is_independent(self, line5):
        clone = line5.copy()
        clone.add_link(0, 4, 100.0)
        assert clone.num_links == line5.num_links + 1
        assert not line5.has_link(0, 4)

    def test_copy_preserves_positions(self):
        net = Network()
        net.add_node(0, (0.5, 0.5))
        clone = net.copy()
        assert clone.position(0) == (0.5, 0.5)


class TestNetworkFromEdges:
    def test_builds_uniform_capacity(self):
        net = network_from_edges([(0, 1), (1, 2)], capacity=42.0)
        assert net.num_links == 2
        assert all(link.capacity == 42.0 for link in net.links())

    def test_with_positions(self):
        net = network_from_edges(
            [(0, 1)], capacity=1.0, positions={0: (0, 0), 1: (1, 0)}
        )
        assert net.get_link(0, 1).length == pytest.approx(1.0)
