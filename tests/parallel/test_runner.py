"""Runner mechanics: worker-count resolution, ordering, fallback."""

import pickle

import pytest

from repro.analysis.experiments import RunSettings, paper_connection_qos
from repro.errors import SimulationError
from repro.parallel import (
    SimJob,
    TopologySpec,
    derive_seeds,
    execute_sim_job,
    parallel_map,
    resolve_jobs,
    run_sim_jobs,
)
from repro.parallel.runner import JOBS_ENV_VAR

TINY = RunSettings(warmup_events=20, measure_events=60, sample_interval=5, seed=3)


def tiny_jobs(count: int = 3):
    seeds = derive_seeds(TINY.seed, 1 + count)
    topology = TopologySpec("waxman", TINY.capacity, seeds[0], nodes=24, edges=45)
    qos = paper_connection_qos()
    return [
        SimJob.from_settings(("tiny", i), topology, 60 + 10 * i, qos, TINY, seeds[1 + i])
        for i in range(count)
    ]


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            resolve_jobs(-2)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(SimulationError):
            resolve_jobs(None)


class TestSimJobPlumbing:
    def test_job_is_picklable(self):
        job = tiny_jobs(1)[0]
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job

    def test_execute_records_timing(self):
        res = execute_sim_job(tiny_jobs(1)[0])
        assert res.wall_time > 0.0
        assert res.worker_pid > 0
        assert res.key == ("tiny", 0)

    def test_topology_build_is_deterministic(self):
        spec = TopologySpec("waxman", 155_000.0, 11, nodes=24, edges=45)
        a, b = spec.build(), spec.build()
        assert a.num_nodes == b.num_nodes
        assert sorted(l.id for l in a.links()) == sorted(l.id for l in b.links())


class TestRunSimJobs:
    def test_submission_order_preserved(self):
        batch = tiny_jobs(3)
        results = run_sim_jobs(batch, jobs=2)
        assert [r.key for r in results] == [j.key for j in batch]

    def test_progress_callback_sees_every_job(self):
        batch = tiny_jobs(3)
        seen = []
        run_sim_jobs(batch, jobs=1, progress=lambda r: seen.append(r.key))
        assert sorted(seen) == sorted(j.key for j in batch)

    def test_empty_batch(self):
        assert run_sim_jobs([], jobs=4) == []


def _double(x: int) -> int:
    return 2 * x


class TestParallelMap:
    def test_order_preserving(self):
        assert parallel_map(_double, [3, 1, 2], jobs=2) == [6, 2, 4]

    def test_sequential_path(self):
        assert parallel_map(_double, [5], jobs=4) == [10]

    def test_unpicklable_falls_back_to_sequential(self):
        # A lambda cannot be sent to a worker process; the runner must
        # degrade to an in-process map instead of raising.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], jobs=2) == [2, 3, 4]
