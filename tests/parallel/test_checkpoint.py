"""Crash resilience: atomic writes, retries, timeouts, checkpoint resume."""

import shutil
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace

import pytest

from repro.analysis.experiments import RunSettings, paper_connection_qos
from repro.errors import SimulationError
from repro.parallel import (
    CampaignCheckpoint,
    RetryPolicy,
    SimJob,
    TopologySpec,
    atomic_write_bytes,
    atomic_write_text,
    derive_seeds,
    execute_sim_job,
    run_sim_jobs,
)
from repro.parallel import runner as runner_module

TINY = RunSettings(warmup_events=10, measure_events=40, sample_interval=5, seed=3)


def tiny_jobs(count: int = 4):
    seeds = derive_seeds(TINY.seed, 1 + count)
    topology = TopologySpec("waxman", TINY.capacity, seeds[0], nodes=16, edges=30)
    qos = paper_connection_qos()
    return [
        SimJob.from_settings(("ckpt", i), topology, 30 + 5 * i, qos, TINY, seeds[1 + i])
        for i in range(count)
    ]


def result_signature(res):
    """The bitwise-comparable core of one job result."""
    return (
        res.key,
        res.result.average_bandwidth,
        res.result.end_time,
        res.result.manager_stats,
    )


class TestAtomicWrites:
    def test_text_roundtrip_without_tmp_leftover(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        assert not path.with_name(path.name + ".tmp").exists()

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "artifact.txt"
        path.write_text("old")  # repro-lint: disable=ART001 — seeding a pre-existing file
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"
        assert list(tmp_path.iterdir()) == [path]


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.timeout is None

    def test_negative_retries_rejected(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(SimulationError):
            RetryPolicy(timeout=0.0)

    def test_bad_backoff_rejected(self):
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0)
        assert [policy.backoff(a) for a in range(3)] == [0.5, 1.0, 2.0]


class TestCampaignCheckpoint:
    def test_record_and_load_roundtrip(self, tmp_path):
        batch = tiny_jobs(2)
        checkpoint = CampaignCheckpoint(tmp_path / "camp")
        first = execute_sim_job(batch[0])
        checkpoint.record(0, batch[0], first)
        resumed = CampaignCheckpoint(tmp_path / "camp", resume=True)
        restored = resumed.load_completed(batch)
        assert list(restored) == [0]
        assert result_signature(restored[0]) == result_signature(first)

    def test_without_resume_starts_fresh(self, tmp_path):
        batch = tiny_jobs(1)
        checkpoint = CampaignCheckpoint(tmp_path / "camp")
        checkpoint.record(0, batch[0], execute_sim_job(batch[0]))
        fresh = CampaignCheckpoint(tmp_path / "camp", resume=False)
        assert fresh.load_completed(batch) == {}

    def test_spec_mismatch_is_rerun(self, tmp_path):
        batch = tiny_jobs(1)
        checkpoint = CampaignCheckpoint(tmp_path / "camp")
        checkpoint.record(0, batch[0], execute_sim_job(batch[0]))
        edited = [replace(batch[0], measure_events=batch[0].measure_events + 10)]
        resumed = CampaignCheckpoint(tmp_path / "camp", resume=True)
        assert resumed.load_completed(edited) == {}

    def test_corrupt_result_file_is_rerun(self, tmp_path):
        batch = tiny_jobs(1)
        checkpoint = CampaignCheckpoint(tmp_path / "camp")
        checkpoint.record(0, batch[0], execute_sim_job(batch[0]))
        job_id = CampaignCheckpoint.job_id(0, batch[0])
        (tmp_path / "camp" / f"{job_id}.pkl").write_bytes(b"garbage")  # repro-lint: disable=ART001 — deliberate corruption
        resumed = CampaignCheckpoint(tmp_path / "camp", resume=True)
        assert resumed.load_completed(batch) == {}

    def test_corrupt_manifest_starts_fresh(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "camp")
        (tmp_path / "camp" / "manifest.json").write_text("{not json")  # repro-lint: disable=ART001 — deliberate corruption
        resumed = CampaignCheckpoint(tmp_path / "camp", resume=True)
        assert resumed.completed_ids == []

    def test_manifest_never_references_missing_file(self, tmp_path):
        import json

        batch = tiny_jobs(1)
        checkpoint = CampaignCheckpoint(tmp_path / "camp")
        checkpoint.record(0, batch[0], execute_sim_job(batch[0]))
        manifest = json.loads((tmp_path / "camp" / "manifest.json").read_text())
        for filename in manifest["jobs"].values():
            assert (tmp_path / "camp" / filename).exists()


class TestInterruptAndResume:
    """An interrupted campaign resumed later aggregates bitwise identically."""

    def test_resume_matches_uninterrupted_at_any_worker_count(self, tmp_path):
        batch = tiny_jobs(4)
        baseline = [result_signature(r) for r in run_sim_jobs(batch, jobs=1)]

        # Interrupt: the progress callback blows up after two completions.
        seen = []

        def explode(result):
            seen.append(result)
            if len(seen) == 2:
                raise KeyboardInterrupt("simulated ctrl-C")

        interrupt_dir = tmp_path / "interrupted"
        with pytest.raises(KeyboardInterrupt):
            run_sim_jobs(
                batch,
                jobs=1,
                progress=explode,
                checkpoint=CampaignCheckpoint(interrupt_dir),
            )
        partial = CampaignCheckpoint(interrupt_dir, resume=True)
        assert len(partial.load_completed(batch)) == 2

        # Resume sequentially and in a pool, from identical partial state.
        pool_dir = tmp_path / "interrupted-pool"
        shutil.copytree(interrupt_dir, pool_dir)
        seq = run_sim_jobs(
            batch, jobs=1, checkpoint=CampaignCheckpoint(interrupt_dir, resume=True)
        )
        par = run_sim_jobs(
            batch, jobs=2, checkpoint=CampaignCheckpoint(pool_dir, resume=True)
        )
        assert [result_signature(r) for r in seq] == baseline
        assert [result_signature(r) for r in par] == baseline

    def test_restored_results_do_not_retrigger_progress(self, tmp_path):
        batch = tiny_jobs(2)
        checkpoint_dir = tmp_path / "camp"
        run_sim_jobs(batch, jobs=1, checkpoint=CampaignCheckpoint(checkpoint_dir))
        seen = []
        results = run_sim_jobs(
            batch,
            jobs=1,
            progress=lambda r: seen.append(r.key),
            checkpoint=CampaignCheckpoint(checkpoint_dir, resume=True),
        )
        assert seen == []
        assert [r.key for r in results] == [j.key for j in batch]


class TestSequentialRetries:
    def test_flaky_job_retried_with_backoff(self, monkeypatch):
        batch = tiny_jobs(1)
        failures = {"left": 2}
        real = execute_sim_job

        def flaky(job):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient")
            return real(job)

        sleeps = []
        monkeypatch.setattr(runner_module, "execute_sim_job", flaky)
        monkeypatch.setattr(runner_module, "_sleep", sleeps.append)
        results = run_sim_jobs(
            batch, jobs=1, retry=RetryPolicy(max_retries=2, backoff_base=0.5)
        )
        assert len(results) == 1
        assert sleeps == [0.5, 1.0]

    def test_budget_exhausted_raises(self, monkeypatch):
        batch = tiny_jobs(1)

        def always_fails(job):
            raise OSError("persistent")

        monkeypatch.setattr(runner_module, "execute_sim_job", always_fails)
        monkeypatch.setattr(runner_module, "_sleep", lambda s: None)
        with pytest.raises(OSError):
            run_sim_jobs(batch, jobs=1, retry=RetryPolicy(max_retries=1))

    def test_default_policy_fails_fast(self, monkeypatch):
        batch = tiny_jobs(1)
        calls = {"n": 0}

        def fails_once(job):
            calls["n"] += 1
            raise OSError("boom")

        monkeypatch.setattr(runner_module, "execute_sim_job", fails_once)
        with pytest.raises(OSError):
            run_sim_jobs(batch, jobs=1)
        assert calls["n"] == 1


class TestSequentialFallbackWarning:
    def test_pool_failure_warns_and_matches_sequential(self, monkeypatch, tmp_path):
        batch = tiny_jobs(3)
        baseline = [result_signature(r) for r in run_sim_jobs(batch, jobs=1)]

        class NoPool:
            def __init__(self, max_workers=None):
                raise OSError("no process support here")

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", NoPool)
        with pytest.warns(RuntimeWarning, match="running sequentially"):
            results = run_sim_jobs(batch, jobs=2)
        assert [result_signature(r) for r in results] == baseline


class _FakePoolBase:
    """Minimal stand-in for ProcessPoolExecutor; subclasses set behaviour."""

    created = 0

    def __init__(self, max_workers=None):
        type(self).created += 1
        self.instance = type(self).created

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestBrokenPoolRecovery:
    def make_pool_class(self):
        class FlakyPool(_FakePoolBase):
            created = 0

            def submit(self, fn, job):
                future = Future()
                if self.instance == 1:
                    future.set_exception(BrokenProcessPool("worker died"))
                else:
                    future.set_result(fn(job))
                return future

        return FlakyPool

    def test_pool_rebuilt_and_jobs_rerun(self, monkeypatch):
        batch = tiny_jobs(2)
        baseline = [result_signature(r) for r in run_sim_jobs(batch, jobs=1)]
        FlakyPool = self.make_pool_class()
        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", FlakyPool)
        monkeypatch.setattr(runner_module, "_sleep", lambda s: None)
        results = run_sim_jobs(
            batch, jobs=2, retry=RetryPolicy(max_retries=1, backoff_base=0.0)
        )
        assert FlakyPool.created == 2
        assert [result_signature(r) for r in results] == baseline

    def test_broken_pool_charges_attempts(self, monkeypatch):
        batch = tiny_jobs(2)
        FlakyPool = self.make_pool_class()
        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", FlakyPool)
        with pytest.raises(SimulationError, match="exhausted 1 attempts"):
            run_sim_jobs(batch, jobs=2, retry=RetryPolicy(max_retries=0))


class TestJobTimeout:
    def test_hung_job_replaced_after_pool_restart(self, monkeypatch):
        batch = tiny_jobs(2)
        baseline = [result_signature(r) for r in run_sim_jobs(batch, jobs=1)]

        class HangingPool(_FakePoolBase):
            created = 0

            def submit(self, fn, job):
                future = Future()
                if self.instance == 1:
                    # Mark running so cancel() fails, like a live worker.
                    future.set_running_or_notify_cancel()
                else:
                    future.set_result(fn(job))
                return future

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", HangingPool)
        monkeypatch.setattr(runner_module, "_sleep", lambda s: None)
        results = run_sim_jobs(
            batch,
            jobs=2,
            retry=RetryPolicy(max_retries=1, timeout=0.05, backoff_base=0.0),
        )
        assert HangingPool.created == 2
        assert [result_signature(r) for r in results] == baseline

    def test_hung_job_with_no_retries_raises(self, monkeypatch):
        batch = tiny_jobs(2)

        class HangingPool(_FakePoolBase):
            created = 0

            def submit(self, fn, job):
                future = Future()
                future.set_running_or_notify_cancel()
                return future

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", HangingPool)
        with pytest.raises(SimulationError, match="timed out"):
            run_sim_jobs(
                batch, jobs=2, retry=RetryPolicy(max_retries=0, timeout=0.05)
            )


class TestCheckpointedPoolRun:
    def test_pool_run_checkpoints_every_job(self, tmp_path):
        batch = tiny_jobs(3)
        checkpoint_dir = tmp_path / "camp"
        run_sim_jobs(batch, jobs=2, checkpoint=CampaignCheckpoint(checkpoint_dir))
        resumed = CampaignCheckpoint(checkpoint_dir, resume=True)
        restored = resumed.load_completed(batch)
        assert sorted(restored) == [0, 1, 2]
        # Stored pickles round-trip to the same results.
        direct = run_sim_jobs(batch, jobs=1)
        assert [result_signature(restored[i]) for i in range(3)] == [
            result_signature(r) for r in direct
        ]


class TestRetryManifest:
    """Per-job failure classes and retry counts in the checkpoint manifest."""

    def read_manifest(self, directory):
        import json

        return json.loads((directory / "manifest.json").read_text())

    def test_clean_run_has_no_retries_key(self, tmp_path):
        batch = tiny_jobs(2)
        run_sim_jobs(batch, jobs=1, checkpoint=CampaignCheckpoint(tmp_path / "c"))
        assert "retries" not in self.read_manifest(tmp_path / "c")

    def test_sequential_exception_classed_and_completed(self, monkeypatch, tmp_path):
        batch = tiny_jobs(1)
        failures = {"left": 2}
        real = execute_sim_job

        def flaky(job):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient")
            return real(job)

        monkeypatch.setattr(runner_module, "execute_sim_job", flaky)
        monkeypatch.setattr(runner_module, "_sleep", lambda s: None)
        checkpoint = CampaignCheckpoint(tmp_path / "c")
        run_sim_jobs(
            batch, jobs=1, retry=RetryPolicy(max_retries=2, backoff_base=0.0),
            checkpoint=checkpoint,
        )
        (entry,) = self.read_manifest(tmp_path / "c")["retries"].values()
        assert entry["attempts"] == 2
        assert entry["classes"] == ["exception", "exception"]
        assert entry["final"] == "completed"
        assert "transient" in entry["last_reason"]

    def test_sequential_exhaustion_marked(self, monkeypatch, tmp_path):
        batch = tiny_jobs(1)

        def always_fails(job):
            raise OSError("persistent")

        monkeypatch.setattr(runner_module, "execute_sim_job", always_fails)
        monkeypatch.setattr(runner_module, "_sleep", lambda s: None)
        checkpoint = CampaignCheckpoint(tmp_path / "c")
        with pytest.raises(OSError):
            run_sim_jobs(
                batch, jobs=1, retry=RetryPolicy(max_retries=1, backoff_base=0.0),
                checkpoint=checkpoint,
            )
        (entry,) = self.read_manifest(tmp_path / "c")["retries"].values()
        assert entry["attempts"] == 1
        assert entry["classes"] == ["exception"]
        assert entry["final"] == "exhausted"

    def test_pool_crash_classed_pool_crash(self, monkeypatch, tmp_path):
        batch = tiny_jobs(2)

        class FlakyPool(_FakePoolBase):
            created = 0

            def submit(self, fn, job):
                future = Future()
                if self.instance == 1:
                    future.set_exception(BrokenProcessPool("worker died"))
                else:
                    future.set_result(fn(job))
                return future

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", FlakyPool)
        monkeypatch.setattr(runner_module, "_sleep", lambda s: None)
        checkpoint = CampaignCheckpoint(tmp_path / "c")
        run_sim_jobs(
            batch, jobs=2, retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            checkpoint=checkpoint,
        )
        retries = self.read_manifest(tmp_path / "c")["retries"]
        assert len(retries) == 2
        for entry in retries.values():
            assert entry["classes"] == ["pool-crash"]
            assert entry["final"] == "completed"

    def test_timeout_classed_timeout(self, monkeypatch, tmp_path):
        batch = tiny_jobs(1)
        real = execute_sim_job

        class HangingPool(_FakePoolBase):
            created = 0

            def submit(self, fn, job):
                future = Future()
                if self.instance == 1:
                    # Running so cancel() fails: forces the restart path.
                    future.set_running_or_notify_cancel()
                else:
                    future.set_result(real(job))
                return future

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", HangingPool)
        monkeypatch.setattr(runner_module, "_sleep", lambda s: None)
        checkpoint = CampaignCheckpoint(tmp_path / "c")
        # Two jobs so the pool path is taken; both hang in pool 1, are
        # charged a timeout, and complete in pool 2.
        batch = tiny_jobs(2)
        run_sim_jobs(
            batch, jobs=2,
            retry=RetryPolicy(max_retries=1, timeout=0.05, backoff_base=0.0),
            checkpoint=checkpoint,
        )
        retries = self.read_manifest(tmp_path / "c")["retries"]
        assert retries
        for entry in retries.values():
            assert entry["classes"] == ["timeout"]
            assert entry["final"] == "completed"

    def test_resume_reloads_retry_history(self, monkeypatch, tmp_path):
        batch = tiny_jobs(1)
        checkpoint = CampaignCheckpoint(tmp_path / "c")
        checkpoint.note_attempt(0, batch[0], "pool-crash", "worker OOM-killed")
        resumed = CampaignCheckpoint(tmp_path / "c", resume=True)
        report = resumed.retry_report()
        (entry,) = report.values()
        assert entry["attempts"] == 1
        assert entry["classes"] == ["pool-crash"]
        assert entry["final"] is None

    def test_unknown_failure_class_rejected(self, tmp_path):
        batch = tiny_jobs(1)
        checkpoint = CampaignCheckpoint(tmp_path / "c")
        with pytest.raises(SimulationError, match="unknown failure class"):
            checkpoint.note_attempt(0, batch[0], "cosmic-ray", "bit flip")
