"""Bitwise determinism: jobs=1 and jobs=4 must agree exactly.

This is the acceptance gate of the parallel runner: every campaign job
is self-contained (its own topology seed and simulation seed), so the
worker count can only change *where* a job runs, never what it
computes.  The comparisons below are exact equality on the result
dataclasses, not tolerance checks.
"""

from repro.analysis.experiments import RunSettings, run_figure2, run_table1
from repro.parallel import run_sim_jobs
from tests.parallel.test_runner import tiny_jobs

TINY = RunSettings(warmup_events=30, measure_events=120, sample_interval=5, seed=3)


class TestCampaignDeterminism:
    def test_figure2_jobs1_equals_jobs4(self):
        counts = (40, 80, 120)
        seq = run_figure2(counts, nodes=30, edges=55, settings=TINY, jobs=1)
        par = run_figure2(counts, nodes=30, edges=55, settings=TINY, jobs=4)
        assert seq == par

    def test_table1_jobs1_equals_jobs4(self):
        counts = (40, 80)
        seq = run_table1(counts, nodes=30, edges=55, settings=TINY, jobs=1)
        par = run_table1(counts, nodes=30, edges=55, settings=TINY, jobs=4)
        assert seq == par


class TestJobDeterminism:
    def test_sim_results_identical_across_worker_counts(self):
        batch = tiny_jobs(4)
        seq = run_sim_jobs(batch, jobs=1)
        par = run_sim_jobs(batch, jobs=4)
        for a, b in zip(seq, par):
            assert a.job == b.job
            assert a.result.average_bandwidth == b.result.average_bandwidth
            assert a.result.initial_population == b.result.initial_population
            assert a.result.events == b.result.events
            assert (a.result.params.a == b.result.params.a).all()
            assert (a.result.params.b == b.result.params.b).all()
            assert (a.result.params.t == b.result.params.t).all()
            assert a.result.params.pf == b.result.params.pf
            assert a.result.params.ps == b.result.params.ps
