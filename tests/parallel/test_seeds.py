"""The seeding scheme: deterministic, independent, prefix-stable."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.parallel import derive_seeds


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(7, 10) == derive_seeds(7, 10)

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seeds(7, 5) != derive_seeds(8, 5)

    def test_all_unique(self):
        seeds = derive_seeds(123, 200)
        assert len(set(seeds)) == 200

    def test_prefix_stable(self):
        # Growing a campaign must not reshuffle the points already run.
        assert derive_seeds(7, 5)[:3] == derive_seeds(7, 3)

    def test_matches_seedsequence_spawn(self):
        # The contract documented in DESIGN.md: child i is
        # SeedSequence(root).spawn(n)[i] collapsed to one uint64.
        children = np.random.SeedSequence(42).spawn(4)
        expected = [int(c.generate_state(1, np.uint64)[0]) for c in children]
        assert derive_seeds(42, 4) == expected

    def test_zero_count(self):
        assert derive_seeds(7, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            derive_seeds(7, -1)

    def test_seeds_fit_uint64(self):
        for seed in derive_seeds(99, 50):
            assert 0 <= seed < 2**64
