"""Unit tests for network-wide reservation state (path operations)."""

import pytest

from repro.errors import ReservationError, TopologyError
from repro.network.state import NetworkState


@pytest.fixture
def state(line5):
    return NetworkState(line5)


PATH = [(0, 1), (1, 2), (2, 3)]


class TestLinkAccess:
    def test_link_lookup(self, state):
        assert state.link((0, 1)).capacity == 1000.0

    def test_unknown_link_rejected(self, state):
        with pytest.raises(TopologyError):
            state.link((0, 9))

    def test_links_iterates_all(self, state):
        assert len(list(state.links())) == 4


class TestFailures:
    def test_fail_and_repair(self, state):
        state.fail_link((1, 2))
        assert state.is_failed((1, 2))
        assert state.failed_links == frozenset({(1, 2)})
        state.repair_link((1, 2))
        assert not state.is_failed((1, 2))

    def test_double_fail_rejected(self, state):
        state.fail_link((1, 2))
        with pytest.raises(ReservationError):
            state.fail_link((1, 2))

    def test_repair_of_healthy_rejected(self, state):
        with pytest.raises(ReservationError):
            state.repair_link((1, 2))

    def test_path_is_alive(self, state):
        assert state.path_is_alive(PATH)
        state.fail_link((1, 2))
        assert not state.path_is_alive(PATH)
        assert state.path_is_alive([(3, 4)])


class TestPrimaryPaths:
    def test_reserve_and_release(self, state):
        state.reserve_primary_path(1, PATH, 100.0)
        assert state.primary_level_bandwidth(1, PATH) == 100.0
        freed = state.release_primary_path(1, PATH)
        assert freed == 300.0  # 100 on each of 3 links

    def test_admission_test(self, state):
        assert state.can_admit_primary_path(PATH, 1000.0)
        state.reserve_primary_path(1, PATH, 600.0)
        assert not state.can_admit_primary_path(PATH, 500.0)
        assert state.can_admit_primary_path([(3, 4)], 1000.0)

    def test_atomic_rollback_on_failure(self, state):
        # Fill (2,3) so a reservation across it must fail midway.
        state.reserve_primary_path(9, [(2, 3)], 950.0)
        with pytest.raises(Exception):
            state.reserve_primary_path(1, PATH, 100.0)
        # Links before the failing one must have been rolled back.
        assert not state.link((0, 1)).has_primary(1)
        assert not state.link((1, 2)).has_primary(1)

    def test_inconsistent_path_bandwidth_detected(self, state):
        state.reserve_primary_path(1, PATH, 100.0)
        state.link((1, 2)).grant_extra(1, 50.0)  # corrupt: only one link raised
        with pytest.raises(ReservationError):
            state.primary_level_bandwidth(1, PATH)

    def test_empty_path_rejected(self, state):
        with pytest.raises(ReservationError):
            state.primary_level_bandwidth(1, [])

    def test_drop_extras_reports_affected(self, state):
        state.reserve_primary_path(1, PATH, 100.0)
        for lid in PATH[:2]:
            state.link(lid).grant_extra(1, 50.0)
        affected = state.drop_extras_of(1, PATH)
        assert affected == PATH[:2]


class TestBackupPaths:
    def test_reserve_activate_release(self, state):
        primary = frozenset({(3, 4)})
        state.reserve_backup_path(1, PATH, 100.0, primary)
        assert all(state.link(lid).has_backup(1) for lid in PATH)
        assert state.can_activate_backup_path(1, PATH)
        state.activate_backup_path(1, PATH)
        assert all(state.link(lid).activated.get(1) == 100.0 for lid in PATH)
        freed = state.release_activated_path(1, PATH)
        assert freed == 300.0

    def test_release_inactive_backup(self, state):
        primary = frozenset({(3, 4)})
        state.reserve_backup_path(1, PATH, 100.0, primary)
        state.release_backup_path(1, PATH)
        assert all(not state.link(lid).has_backup(1) for lid in PATH)

    def test_backup_admission(self, state):
        primary = frozenset({(3, 4)})
        state.reserve_primary_path(9, PATH, 950.0)
        assert not state.can_admit_backup_path(PATH, 100.0, primary)
        assert state.can_admit_backup_path(PATH, 50.0, primary)

    def test_reserve_backup_rollback(self, state):
        primary = frozenset({(3, 4)})
        state.reserve_primary_path(9, [(2, 3)], 950.0)
        with pytest.raises(Exception):
            state.reserve_backup_path(1, PATH, 100.0, primary)
        assert not state.link((0, 1)).has_backup(1)
        assert not state.link((1, 2)).has_backup(1)

    def test_activate_empty_path_rejected(self, state):
        with pytest.raises(ReservationError):
            state.activate_backup_path(1, [])

    def test_activate_unknown_backup_rejected(self, state):
        with pytest.raises(ReservationError):
            state.activate_backup_path(1, PATH)

    def test_activation_rollback_midway(self, state):
        """If one path link cannot activate, earlier links are restored."""
        primary = frozenset({(9, 10)})
        state.reserve_backup_path(1, PATH, 100.0, primary)
        # Saturate (2,3) with another *activated* backup (sequential
        # failures are the only way activation can become infeasible).
        state.reserve_backup_path(7, [(2, 3)], 950.0, frozenset({(11, 12)}))
        state.activate_backup_path(7, [(2, 3)])
        assert not state.can_activate_backup_path(1, PATH)
        with pytest.raises(Exception):
            state.activate_backup_path(1, PATH)
        # (0,1) and (1,2) must hold the reservation again, not an activation.
        for lid in PATH:
            assert state.link(lid).has_backup(1)
            assert 1 not in state.link(lid).activated


class TestDiagnostics:
    def test_totals_and_utilization(self, state):
        assert state.total_capacity() == 4000.0
        state.reserve_primary_path(1, PATH, 100.0)
        assert state.total_used() == 300.0
        assert state.utilization() == pytest.approx(300.0 / 4000.0)

    def test_check_invariants_clean(self, state):
        state.reserve_primary_path(1, PATH, 100.0)
        state.check_invariants()
