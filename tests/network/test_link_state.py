"""Unit tests for per-link reservation accounting."""

import pytest

from repro.errors import AdmissionError, ReservationError
from repro.network.link_state import LinkState


def make_link(capacity=1000.0):
    return LinkState(link=(0, 1), capacity=capacity)


class TestPrimaryReservations:
    def test_add_and_totals(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        ls.add_primary(2, 200.0)
        assert ls.primary_min_total == 300.0
        assert ls.used == 300.0
        assert ls.spare_for_extras == 700.0

    def test_duplicate_rejected(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        with pytest.raises(ReservationError):
            ls.add_primary(1, 100.0)

    def test_non_positive_rejected(self):
        ls = make_link()
        with pytest.raises(ReservationError):
            ls.add_primary(1, 0.0)

    def test_overcommit_rejected(self):
        ls = make_link(capacity=150.0)
        ls.add_primary(1, 100.0)
        with pytest.raises(AdmissionError):
            ls.add_primary(2, 100.0)

    def test_can_admit_primary(self):
        ls = make_link(capacity=250.0)
        ls.add_primary(1, 100.0)
        assert ls.can_admit_primary(150.0)
        assert not ls.can_admit_primary(151.0)

    def test_failed_link_admits_nothing(self):
        ls = make_link()
        ls.failed = True
        assert not ls.can_admit_primary(1.0)

    def test_remove_returns_min_plus_extra(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        ls.grant_extra(1, 50.0)
        assert ls.remove_primary(1) == 150.0
        assert ls.used == 0.0
        assert not ls.has_primary(1)

    def test_remove_unknown_rejected(self):
        with pytest.raises(ReservationError):
            make_link().remove_primary(7)


class TestExtras:
    def test_grant_and_drop(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        ls.grant_extra(1, 50.0)
        ls.grant_extra(1, 50.0)
        assert ls.extra_of(1) == 100.0
        assert ls.primary_extra_total == 100.0
        assert ls.drop_extra(1) == 100.0
        assert ls.extra_of(1) == 0.0

    def test_grant_beyond_spare_rejected(self):
        ls = make_link(capacity=200.0)
        ls.add_primary(1, 100.0)
        with pytest.raises(AdmissionError):
            ls.grant_extra(1, 150.0)

    def test_grant_to_unknown_channel_rejected(self):
        ls = make_link()
        with pytest.raises(ReservationError):
            ls.grant_extra(9, 10.0)

    def test_grant_must_be_positive(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        with pytest.raises(ReservationError):
            ls.grant_extra(1, 0.0)

    def test_drop_all_extras(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        ls.add_primary(2, 100.0)
        ls.grant_extra(1, 100.0)
        ls.grant_extra(2, 200.0)
        assert ls.drop_all_extras() == 300.0
        assert ls.primary_extra_total == 0.0

    def test_extras_can_borrow_backup_reservation(self):
        """The paper's core idea: inactive backup capacity is usable as extras."""
        ls = make_link(capacity=300.0)
        ls.add_primary(1, 100.0)
        ls.add_backup(2, 100.0, frozenset({(5, 6)}))
        assert ls.backup_reserved == 100.0
        # Extra pool ignores the backup reservation: 300 - 100 = 200.
        assert ls.spare_for_extras == 200.0
        ls.grant_extra(1, 200.0)  # borrows the backup's 100
        assert ls.used == 300.0


class TestBackupMultiplexing:
    def test_disjoint_failure_sets_share_reservation(self):
        """Backups whose primaries cannot fail together share capacity."""
        ls = make_link(capacity=1000.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.add_backup(2, 100.0, frozenset({(20, 21)}))
        assert ls.backup_reserved == 100.0  # multiplexed, not 200

    def test_shared_failure_link_adds_up(self):
        ls = make_link(capacity=1000.0)
        shared = frozenset({(10, 11)})
        ls.add_backup(1, 100.0, shared)
        ls.add_backup(2, 100.0, shared)
        assert ls.backup_reserved == 200.0

    def test_worst_case_over_failures(self):
        ls = make_link(capacity=1000.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11), (11, 12)}))
        ls.add_backup(2, 150.0, frozenset({(11, 12)}))
        ls.add_backup(3, 120.0, frozenset({(10, 11)}))
        # failure (11,12): 100 + 150 = 250; failure (10,11): 100 + 120 = 220
        assert ls.backup_reserved == 250.0

    def test_remove_backup_recomputes_max(self):
        ls = make_link(capacity=1000.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.add_backup(2, 150.0, frozenset({(20, 21)}))
        assert ls.backup_reserved == 150.0
        ls.remove_backup(2)
        assert ls.backup_reserved == 100.0
        ls.remove_backup(1)
        assert ls.backup_reserved == 0.0
        assert ls.backup_demand == {}

    def test_remove_unknown_backup_rejected(self):
        with pytest.raises(ReservationError):
            make_link().remove_backup(3)

    def test_duplicate_backup_rejected(self):
        ls = make_link()
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        with pytest.raises(ReservationError):
            ls.add_backup(1, 100.0, frozenset({(10, 11)}))

    def test_empty_primary_links_rejected(self):
        with pytest.raises(ReservationError):
            make_link().add_backup(1, 100.0, frozenset())

    def test_admission_counts_only_growth(self):
        ls = make_link(capacity=250.0)
        ls.add_primary(9, 100.0)  # headroom now 150
        ls.add_backup(1, 150.0, frozenset({(10, 11)}))
        # A second multiplexable backup needs no new reservation:
        assert ls.can_admit_backup(150.0, frozenset({(20, 21)}))
        # A conflicting one would need 300 total backup reservation:
        assert not ls.can_admit_backup(150.0, frozenset({(10, 11)}))

    def test_backup_overcommit_rejected(self):
        ls = make_link(capacity=100.0)
        ls.add_primary(9, 50.0)
        with pytest.raises(AdmissionError):
            ls.add_backup(1, 100.0, frozenset({(10, 11)}))


class TestActivation:
    def test_activate_moves_to_live(self):
        ls = make_link(capacity=500.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        assert ls.can_activate_backup(1)
        assert ls.activate_backup(1) == 100.0
        assert ls.activated_total == 100.0
        assert ls.backup_reserved == 0.0
        assert not ls.has_backup(1)

    def test_activation_blocked_by_minimums(self):
        ls = make_link(capacity=250.0)
        ls.add_primary(9, 100.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.add_backup(2, 100.0, frozenset({(20, 21)}))  # multiplexed
        ls.activate_backup(1)
        # min(100) + activated(100) + 100 would exceed the capacity.
        assert not ls.can_activate_backup(2)

    def test_activation_not_blocked_by_extras(self):
        ls = make_link(capacity=300.0)
        ls.add_primary(9, 100.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.grant_extra(9, 200.0)  # extras fill the link completely
        # Extras are reclaimable, so activation remains possible.
        assert ls.can_activate_backup(1)

    def test_sequential_failure_activation_can_fail(self):
        """Multiplexing guarantees one failure; a second may not fit."""
        ls = make_link(capacity=100.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.add_backup(2, 100.0, frozenset({(20, 21)}))  # multiplexed onto same 100
        ls.activate_backup(1)
        assert not ls.can_activate_backup(2)
        with pytest.raises(AdmissionError):
            ls.activate_backup(2)

    def test_release_activated(self):
        ls = make_link()
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.activate_backup(1)
        assert ls.release_activated(1) == 100.0
        assert ls.activated_total == 0.0

    def test_release_unknown_activated_rejected(self):
        with pytest.raises(ReservationError):
            make_link().release_activated(4)

    def test_activate_unknown_rejected(self):
        with pytest.raises(ReservationError):
            make_link().activate_backup(4)

    def test_failed_link_cannot_activate(self):
        ls = make_link()
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.failed = True
        assert not ls.can_activate_backup(1)


class TestInvariants:
    def test_clean_state_passes(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        ls.grant_extra(1, 50.0)
        ls.add_backup(2, 100.0, frozenset({(10, 11)}))
        ls.check_invariants()

    def test_cache_corruption_detected(self):
        ls = make_link()
        ls.add_primary(1, 100.0)
        ls._min_total = 999.0
        with pytest.raises(ReservationError):
            ls.check_invariants()

    def test_demand_corruption_detected(self):
        ls = make_link()
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.backup_demand[(10, 11)] = 55.0
        with pytest.raises(ReservationError):
            ls.check_invariants()

    def test_strict_reservation_toggle(self):
        """After activations, invariant 2 may be relaxed."""
        ls = make_link(capacity=100.0)
        ls.add_backup(1, 100.0, frozenset({(10, 11)}))
        ls.add_backup(2, 100.0, frozenset({(20, 21)}))
        ls.activate_backup(1)
        # activated(100) + reserved(100) > capacity: strict check fails...
        with pytest.raises(ReservationError):
            ls.check_invariants(strict_reservation=True)
        # ...but usage is fine.
        ls.check_invariants(strict_reservation=False)
