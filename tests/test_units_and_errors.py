"""Unit tests for the units module, error hierarchy and public API."""

import pytest

import repro
from repro import errors, units


class TestUnits:
    def test_conversions(self):
        assert units.mbps(10) == 10_000.0
        assert units.kbps(50) == 50.0

    def test_paper_constants_consistent(self):
        assert units.PAPER_LINK_CAPACITY == units.mbps(10)
        assert units.PAPER_B_MIN == 100.0
        assert units.PAPER_B_MAX == 500.0
        span = units.PAPER_B_MAX - units.PAPER_B_MIN
        assert span % units.PAPER_INCREMENT_SMALL == 0
        assert span % units.PAPER_INCREMENT_LARGE == 0
        # Δ=50 -> 9 states; Δ=100 -> 5 states (paper §4)
        assert 1 + span / units.PAPER_INCREMENT_SMALL == 9
        assert 1 + span / units.PAPER_INCREMENT_LARGE == 5

    def test_failure_rates_span_paper_sweep(self):
        rates = units.PAPER_FAILURE_RATES
        assert rates[0] == 1e-7
        assert rates[-1] == 1e-2
        assert list(rates) == sorted(rates)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.TopologyError,
            errors.QoSSpecError,
            errors.RoutingError,
            errors.AdmissionError,
            errors.ReservationError,
            errors.SimulationError,
            errors.MarkovModelError,
            errors.EstimationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_base_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.markov
        import repro.qos
        import repro.routing
        import repro.runtime
        import repro.sim
        import repro.topology

        for module in (
            repro.analysis,
            repro.markov,
            repro.qos,
            repro.routing,
            repro.runtime,
            repro.sim,
            repro.topology,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestEventImpactHelpers:
    def test_merge_change_keeps_first_before(self):
        from repro.channels.records import EventImpact, EventKind

        impact = EventImpact(kind=EventKind.ARRIVAL)
        impact.merge_change(1, before=5, after=0, direct=True)
        impact.merge_change(1, before=0, after=3, direct=True)
        assert impact.direct[1] == (5, 3)

    def test_merge_change_routes_by_directness(self):
        from repro.channels.records import EventImpact, EventKind

        impact = EventImpact(kind=EventKind.ARRIVAL)
        impact.merge_change(1, 2, 3, direct=False)
        assert impact.indirect_changed[1] == (2, 3)
        assert 1 not in impact.direct
