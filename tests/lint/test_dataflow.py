"""Unit tests for the must-facts dataflow engine."""

import ast

from repro.lint.dataflow import analyze_function


def call_gen(name):
    """Gen callback: calling ``name(...)`` establishes the fact ``name``."""

    def gen(call):
        func = call.func
        label = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return {label} if label == name else set()

    return gen


def guard_cond(fact="guarded"):
    """Cond callback: the true branch of any ``x is None`` test grants
    ``fact`` (mirrors the DUR wal-is-None idiom)."""

    def cond(test, value):
        if (
            value
            and isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
        ):
            return {fact}
        return set()

    return cond


def facts_at_sink(source, gen=None, cond=None, entry=None):
    """Facts holding just before the single call to ``sink(...)``."""
    func = ast.parse(source).body[0]
    sinks = [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sink"
    ]
    assert len(sinks) == 1
    results = analyze_function(func, sinks, gen=gen, cond=cond, entry=entry)
    return results.get(id(sinks[0]))  # repro-lint: disable=DET002 — result keys are live AST node ids


GEN = call_gen("log")


class TestStraightLine:
    def test_fact_flows_forward(self):
        src = "def f():\n    log()\n    sink()\n"
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_site_sees_pre_state_of_its_own_statement(self):
        # gen and sink in the same statement: sink must NOT see the fact.
        src = "def f():\n    sink(log())\n"
        assert facts_at_sink(src, gen=GEN) == frozenset()

    def test_entry_facts_are_visible(self):
        src = "def f():\n    sink()\n"
        assert facts_at_sink(src, gen=GEN, entry={"caller-logged"}) == {
            "caller-logged"
        }


class TestBranchJoins:
    def test_both_branches_gen_survives_join(self):
        src = (
            "def f(x):\n"
            "    if x:\n        log()\n"
            "    else:\n        log()\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_one_sided_gen_dies_at_join(self):
        src = "def f(x):\n    if x:\n        log()\n    sink()\n"
        assert facts_at_sink(src, gen=GEN) == frozenset()

    def test_terminated_branch_does_not_constrain_join(self):
        src = (
            "def f(x):\n"
            "    if x:\n        raise ValueError\n"
            "    log()\n"
            "    sink()\n"
        )
        # (the one-sided branch raised, so only the fall-through matters)
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_early_return_branch_excluded(self):
        src = (
            "def f(x):\n"
            "    if x:\n        log()\n"
            "    else:\n        return None\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_cond_fact_inside_true_branch(self):
        src = (
            "def f(wal):\n"
            "    if wal is None:\n        sink()\n"
        )
        assert facts_at_sink(src, cond=guard_cond()) == {"guarded"}

    def test_cond_fact_does_not_leak_past_join(self):
        src = (
            "def f(wal):\n"
            "    if wal is None:\n        pass\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, cond=guard_cond()) == frozenset()

    def test_not_flips_branch_polarity(self):
        src = (
            "def f(wal):\n"
            "    if not (wal is None):\n        pass\n"
            "    else:\n        sink()\n"
        )
        assert facts_at_sink(src, cond=guard_cond()) == {"guarded"}

    def test_elif_chain_all_arms_must_gen(self):
        src = (
            "def f(a, b):\n"
            "    if a:\n        log()\n"
            "    elif b:\n        log()\n"
            "    else:\n        log()\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, gen=GEN) == {"log"}


class TestLoops:
    def test_loop_body_sees_in_iteration_facts(self):
        src = "def f(xs):\n    for x in xs:\n        log()\n        sink()\n"
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_loop_gen_does_not_escape(self):
        src = "def f(xs):\n    for x in xs:\n        log()\n    sink()\n"
        assert facts_at_sink(src, gen=GEN) == frozenset()

    def test_pre_loop_facts_visible_inside_body(self):
        src = "def f(xs):\n    log()\n    for x in xs:\n        sink()\n"
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_while_cond_facts_enter_body(self):
        src = "def f(wal):\n    while wal is None:\n        sink()\n"
        assert facts_at_sink(src, cond=guard_cond()) == {"guarded"}


class TestTryFinally:
    def test_handler_sees_entry_state_only(self):
        src = (
            "def f():\n"
            "    try:\n        log()\n        risky()\n"
            "    except OSError:\n        sink()\n"
        )
        # The body may fail before log() completed; entry state only.
        assert facts_at_sink(src, gen=GEN) == frozenset()

    def test_both_body_and_handler_gen_survives_join(self):
        src = (
            "def f():\n"
            "    try:\n        log()\n"
            "    except OSError:\n        log()\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_silent_handler_kills_body_fact_at_join(self):
        src = (
            "def f():\n"
            "    try:\n        log()\n"
            "    except OSError:\n        pass\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, gen=GEN) == frozenset()

    def test_finally_facts_stack_onto_join(self):
        src = (
            "def f():\n"
            "    try:\n        risky()\n"
            "    finally:\n        log()\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, gen=GEN) == {"log"}

    def test_with_body_is_transparent(self):
        src = "def f(cm):\n    with cm:\n        log()\n        sink()\n"
        assert facts_at_sink(src, gen=GEN) == {"log"}


class TestOpacity:
    def test_nested_def_site_is_unreachable(self):
        src = (
            "def f():\n"
            "    log()\n"
            "    def inner():\n        sink()\n"
            "    return inner\n"
        )
        assert facts_at_sink(src, gen=GEN) is None

    def test_nested_def_gen_does_not_pollute_outer(self):
        src = (
            "def f():\n"
            "    def inner():\n        log()\n"
            "    sink()\n"
        )
        assert facts_at_sink(src, gen=GEN) == frozenset()

    def test_lambda_body_is_opaque(self):
        src = "def f():\n    g = lambda: log()\n    sink()\n"
        assert facts_at_sink(src, gen=GEN) == frozenset()
