"""Unit tests for the symbol resolver and the conservative call graph."""

import ast

from repro.lint.graph import async_roots, build_call_graph
from repro.lint.project import build_project_index, module_name_for_path


def index_of(sources):
    return build_project_index(
        [(path, ast.parse(text)) for path, text in sources.items()]
    )


def edge_pairs(graph):
    return {
        (site.caller, site.callee)
        for sites in graph.out_edges.values()
        for site in sites
    }


class TestModuleNaming:
    def test_src_rooted_paths_drop_the_prefix(self):
        assert module_name_for_path("src/repro/sim/engine.py") == "repro.sim.engine"
        assert (
            module_name_for_path("/root/repo/src/repro/service/wal.py")
            == "repro.service.wal"
        )

    def test_init_maps_to_package(self):
        assert module_name_for_path("src/repro/lint/__init__.py") == "repro.lint"

    def test_tests_paths_keep_full_dotted_name(self):
        assert (
            module_name_for_path("tests/lint/test_engine.py")
            == "tests.lint.test_engine"
        )

    def test_windows_separators(self):
        assert module_name_for_path("src\\repro\\sim\\core.py") == "repro.sim.core"


class TestResolver:
    def test_absolute_from_import(self):
        index = index_of(
            {
                "src/pkg/a.py": "def fn():\n    pass\n",
                "src/pkg/b.py": "from pkg.a import fn\n",
            }
        )
        assert index.resolve("pkg.b", "fn") == "pkg.a.fn"

    def test_relative_import_from_sibling(self):
        index = index_of(
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "def fn():\n    pass\n",
                "src/pkg/b.py": "from .a import fn\n",
            }
        )
        assert index.resolve("pkg.b", "fn") == "pkg.a.fn"

    def test_relative_import_inside_package_init(self):
        index = index_of(
            {
                "src/pkg/__init__.py": "from .a import fn\n",
                "src/pkg/a.py": "def fn():\n    pass\n",
            }
        )
        assert index.resolve("pkg", "fn") == "pkg.a.fn"

    def test_reexport_chain_through_init(self):
        index = index_of(
            {
                "src/pkg/__init__.py": "from .engine import run\n",
                "src/pkg/engine.py": "def run():\n    pass\n",
                "src/app.py": "from pkg import run\n",
            }
        )
        assert index.resolve("app", "run") == "pkg.engine.run"
        assert index.canonicalize("pkg.run") == "pkg.engine.run"

    def test_import_cycle_does_not_hang(self):
        index = index_of(
            {
                "src/pkg/a.py": "from pkg.b import x\n",
                "src/pkg/b.py": "from pkg.a import x\n",
            }
        )
        # A genuinely circular binding canonicalizes to *something*
        # without infinite recursion; the exact fixpoint is unspecified.
        assert isinstance(index.canonicalize("pkg.a.x"), str)

    def test_unknown_prefix_passes_through(self):
        index = index_of({"src/pkg/a.py": "import os\n"})
        assert index.canonicalize("os.path.join") == "os.path.join"

    def test_dotted_module_attribute_resolves(self):
        index = index_of(
            {
                "src/pkg/wal.py": "def log_events(ev):\n    pass\n",
                "src/pkg/svc.py": "from pkg import wal\n",
            }
        )
        assert index.resolve("pkg.svc", "wal.log_events") == "pkg.wal.log_events"


class TestMethodResolution:
    BASE = (
        "class Base:\n"
        "    def shared(self):\n        pass\n"
        "    def overridden(self):\n        pass\n"
    )
    CHILD = (
        "from pkg.base import Base\n\n\n"
        "class Child(Base):\n"
        "    def overridden(self):\n        pass\n"
        "    def caller(self):\n"
        "        self.shared()\n"
        "        self.overridden()\n"
    )

    def test_nearest_definition_wins(self):
        index = index_of(
            {"src/pkg/base.py": self.BASE, "src/pkg/child.py": self.CHILD}
        )
        assert (
            index.resolve_method("pkg.child.Child", "overridden")
            == "pkg.child.Child.overridden"
        )
        assert (
            index.resolve_method("pkg.child.Child", "shared")
            == "pkg.base.Base.shared"
        )

    def test_self_calls_edge_through_hierarchy(self):
        index = index_of(
            {"src/pkg/base.py": self.BASE, "src/pkg/child.py": self.CHILD}
        )
        edges = edge_pairs(build_call_graph(index))
        assert ("pkg.child.Child.caller", "pkg.base.Base.shared") in edges
        assert ("pkg.child.Child.caller", "pkg.child.Child.overridden") in edges

    def test_inheritance_cycle_terminates(self):
        src = (
            "class A(B):\n    def m(self):\n        pass\n\n\n"
            "class B(A):\n    def n(self):\n        pass\n"
        )
        index = index_of({"src/pkg/a.py": src})
        assert index.resolve_method("pkg.a.A", "n") == "pkg.a.B.n"
        assert index.resolve_method("pkg.a.A", "missing") is None

    def test_unknown_external_base_ends_the_chain(self):
        src = "import enum\n\n\nclass Mode(enum.Enum):\n    A = 1\n"
        index = index_of({"src/pkg/a.py": src})
        assert index.resolve_method("pkg.a.Mode", "name") is None


class TestCallGraph:
    def test_direct_call_and_constructor_edge(self):
        src = (
            "class Engine:\n"
            "    def __init__(self):\n        pass\n\n\n"
            "def main():\n"
            "    eng = Engine()\n"
        )
        index = index_of({"src/pkg/a.py": src})
        edges = edge_pairs(build_call_graph(index))
        assert ("pkg.a.main", "pkg.a.Engine.__init__") in edges

    def test_annotated_receiver_resolves(self):
        src = (
            "class Table:\n"
            "    def refresh(self):\n        pass\n\n\n"
            "def touch(t: Table):\n"
            "    t.refresh()\n"
        )
        index = index_of({"src/pkg/a.py": src})
        assert ("pkg.a.touch", "pkg.a.Table.refresh") in edge_pairs(
            build_call_graph(index)
        )

    def test_attr_typed_receiver_resolves(self):
        src = (
            "class Engine:\n"
            "    def apply(self):\n        pass\n\n\n"
            "class Svc:\n"
            "    def __init__(self, engine: Engine):\n"
            "        self.engine = engine\n"
            "    def run(self):\n"
            "        self.engine.apply()\n"
        )
        index = index_of({"src/pkg/a.py": src})
        assert ("pkg.a.Svc.run", "pkg.a.Engine.apply") in edge_pairs(
            build_call_graph(index)
        )

    def test_unique_name_fallback_requires_exactly_one(self):
        one = (
            "def helper_unique():\n    pass\n\n\n"
            "def caller(obj):\n    obj.helper_unique()\n"
        )
        index = index_of({"src/pkg/a.py": one})
        assert ("pkg.a.caller", "pkg.a.helper_unique") in edge_pairs(
            build_call_graph(index)
        )
        two = one + "\n\nclass Other:\n    def helper_unique(self):\n        pass\n"
        index2 = index_of({"src/pkg/a.py": two})
        graph2 = build_call_graph(index2)
        assert all(
            callee != "pkg.a.helper_unique"
            for _, callee in edge_pairs(graph2)
        )
        assert graph2.unresolved.get("pkg.a.caller", 0) >= 1

    def test_unresolved_call_produces_no_edge(self):
        src = "import os\n\n\ndef main(obj):\n    os.getcwd()\n"
        index = index_of({"src/pkg/a.py": src})
        graph = build_call_graph(index)
        assert edge_pairs(graph) == set()
        assert graph.unresolved.get("pkg.a.main", 0) == 1

    def test_function_reference_is_not_an_edge(self):
        src = (
            "def slow():\n    pass\n\n\n"
            "def main(executor):\n"
            "    executor.submit(slow)\n"
        )
        index = index_of({"src/pkg/a.py": src})
        assert all(
            callee != "pkg.a.slow" for _, callee in edge_pairs(build_call_graph(index))
        )

    def test_nested_def_calls_fold_into_enclosing_function(self):
        src = (
            "def target():\n    pass\n\n\n"
            "def outer():\n"
            "    def closure():\n"
            "        target()\n"
            "    return closure\n"
        )
        index = index_of({"src/pkg/a.py": src})
        assert ("pkg.a.outer", "pkg.a.target") in edge_pairs(build_call_graph(index))


class TestReachability:
    SRC = (
        "async def root():\n    mid()\n\n\n"
        "def mid():\n    leaf()\n\n\n"
        "def leaf():\n    pass\n\n\n"
        "def island():\n    pass\n"
    )

    def test_bfs_closure_and_origin_tracking(self):
        index = index_of({"src/pkg/a.py": self.SRC})
        graph = build_call_graph(index)
        reached = graph.reachable_from(["pkg.a.root"])
        assert set(reached) == {"pkg.a.root", "pkg.a.mid", "pkg.a.leaf"}
        assert reached["pkg.a.leaf"] == "pkg.a.root"

    def test_skip_marks_barriers_reached_but_not_descended(self):
        index = index_of({"src/pkg/a.py": self.SRC})
        graph = build_call_graph(index)
        reached = graph.reachable_from(
            ["pkg.a.root"], skip=lambda f: f.name == "mid"
        )
        assert "pkg.a.mid" in reached
        assert "pkg.a.leaf" not in reached

    def test_async_roots_filters_by_prefix(self):
        index = index_of(
            {"src/pkg/a.py": self.SRC, "src/other/b.py": "async def also():\n    pass\n"}
        )
        assert async_roots(index, "pkg") == {"pkg.a.root"}
        assert async_roots(index) == {"pkg.a.root", "other.b.also"}
