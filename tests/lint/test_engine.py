"""Engine, CLI, and repo-wide meta-tests for ``repro.lint``."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    PARSE_ERROR_RULE,
    RULES,
    RULES_BY_ID,
    expand_rule_selection,
    iter_python_files,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.sarif import SARIF_VERSION, to_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSuppressionDirectives:
    def test_line_directive_only_covers_its_line(self):
        src = (
            "import time\n"
            "a = time.time()  # repro-lint: disable=DET003 — demo\n"
            "b = time.time()\n"
        )
        findings = lint_source(src, "src/repro/sim/x.py")
        assert [(f.rule, f.line) for f in findings] == [("DET003", 3)]

    def test_line_directive_is_rule_specific(self):
        src = "import time\nt = time.time()  # repro-lint: disable=DET002\n"
        assert [f.rule for f in lint_source(src, "src/repro/sim/x.py")] == ["DET003"]

    def test_disable_all_on_line(self):
        src = "cache[id(x)] = time.time()  # repro-lint: disable=all\nimport time\n"
        assert lint_source(src, "src/repro/sim/x.py") == []

    def test_file_directive_covers_whole_file(self):
        src = (
            "# repro-lint: disable-file=DET003 — clock shim module\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert lint_source(src, "src/repro/sim/x.py") == []

    def test_file_directive_leaves_other_rules_armed(self):
        src = (
            "# repro-lint: disable-file=DET003\n"
            "import time\n"
            "a = time.time()\n"
            "cache[id(x)] = a\n"
        )
        assert [f.rule for f in lint_source(src, "src/repro/sim/x.py")] == ["DET002"]

    def test_directive_inside_string_literal_is_ignored(self):
        src = (
            'doc = "suppress with # repro-lint: disable=DET002"\n'
            "cache[id(x)] = 1\n"
        )
        assert [f.rule for f in lint_source(src, "src/repro/sim/x.py")] == ["DET002"]

    def test_typoed_rule_id_does_not_suppress(self):
        src = "cache[id(x)] = 1  # repro-lint: disable=DET002X\n"
        assert [f.rule for f in lint_source(src, "src/repro/sim/x.py")] == ["DET002"]


class TestEngineBasics:
    def test_parse_error_becomes_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/sim/x.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]

    def test_findings_sorted_and_structured(self):
        src = "import time\nb = time.time()\ncache[id(x)] = b\n"
        findings = lint_source(src, "src/repro/sim/x.py")
        assert [(f.rule, f.line) for f in findings] == [("DET003", 2), ("DET002", 3)]
        for finding in findings:
            assert finding.path == "src/repro/sim/x.py"
            assert finding.hint
            data = finding.to_json()
            assert set(data) == {"path", "line", "col", "rule", "message", "hint"}

    def test_select_narrows_rules(self):
        src = "import time\nb = time.time()\ncache[id(x)] = b\n"
        findings = lint_source(src, "src/repro/sim/x.py", select={"DET002"})
        assert [f.rule for f in findings] == ["DET002"]

    def test_family_expansion(self):
        assert expand_rule_selection(("RNG",)) == ("RNG001", "RNG002", "RNG003")
        assert expand_rule_selection(("det002", "ART")) == ("DET002", "ART001")
        with pytest.raises(ValueError):
            expand_rule_selection(("NOPE",))

    def test_discovery_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")  # repro-lint: disable=ART001 — fixture setup
        (tmp_path / "a.py").write_text("x = 1\n")  # repro-lint: disable=ART001 — fixture setup
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "z.py").write_text("x = 1\n")  # repro-lint: disable=ART001 — fixture setup
        found = [p.name for p in iter_python_files([str(tmp_path)])]
        assert found == ["a.py", "b.py"]

    def test_rule_catalogue_consistency(self):
        assert len(RULES) >= 16
        families = {rule.id[:3] for rule in RULES}
        assert {"RNG", "DET", "ART", "FLT", "ASY", "DUR", "SOA"} <= families
        assert all(RULES_BY_ID[rule.id] is rule for rule in RULES)

    def test_project_rules_are_flagged(self):
        project_rules = {rule.id for rule in RULES if rule.project}
        assert {"ASYNC001", "ASYNC002", "ASYNC003"} <= project_rules
        assert {"DUR001", "DUR002", "DUR003"} <= project_rules
        assert {"SOA001", "SOA002"} <= project_rules
        # File-local rules stay out of the project pass and vice versa.
        assert not any(RULES_BY_ID[r].project for r in ("RNG001", "DET002", "ART001"))


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")  # repro-lint: disable=ART001 — fixture setup
        assert lint_main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one_with_hint(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("cache[id(x)] = 1\n")  # repro-lint: disable=ART001 — fixture setup
        assert lint_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "hint:" in out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\nt = time.time()\n")  # repro-lint: disable=ART001 — fixture setup
        assert lint_main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "DET003"

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out

    def test_module_entry_point(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("from random import shuffle\nshuffle(x)\n")  # repro-lint: disable=ART001 — fixture setup
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(target)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RNG001" in proc.stdout


def _write_service_fixture(tmp_path):
    """A tiny src tree with one ASYNC001 violation, for CLI/engine tests."""
    pkg = tmp_path / "src" / "repro" / "service"
    pkg.mkdir(parents=True)
    target = pkg / "mod.py"
    target.write_text(  # repro-lint: disable=ART001 — fixture setup
        "import time\n\n\nasync def handler():\n    time.sleep(0.5)\n"
    )
    return tmp_path / "src"


class TestProjectPass:
    def test_run_lint_report_shape(self, tmp_path):
        root = _write_service_fixture(tmp_path)
        report = run_lint([str(root)], project=True)
        assert [f.rule for f in report.findings] == ["ASYNC001"]
        assert report.files == 1
        assert report.rule_counts.get("ASYNC001") == 1
        for key in ("discovery", "file-pass", "project-index", "call-graph"):
            assert key in report.timings, key
        assert any(key.startswith("project:") for key in report.timings)

    def test_project_off_skips_project_rules(self, tmp_path):
        root = _write_service_fixture(tmp_path)
        report = run_lint([str(root)], project=False)
        assert report.findings == []

    def test_jobs_parallel_matches_serial(self, tmp_path):
        root = _write_service_fixture(tmp_path)
        extra = root / "repro" / "service" / "other.py"
        extra.write_text(  # repro-lint: disable=ART001 — fixture setup
            "import time\n\n\nt = time.time()\n"
        )
        serial = run_lint([str(root)], project=True, jobs=1)
        parallel = run_lint([str(root)], project=True, jobs=2)
        as_tuples = lambda report: [  # noqa: E731
            (f.path, f.line, f.col, f.rule) for f in report.findings
        ]
        assert as_tuples(serial) == as_tuples(parallel)
        assert len(serial.findings) == 2

    def test_cli_project_flag_and_stats(self, tmp_path, capsys):
        root = _write_service_fixture(tmp_path)
        assert lint_main([str(root), "--project", "--stats"]) == 1
        captured = capsys.readouterr()
        assert "ASYNC001" in captured.out
        assert "file-pass" in captured.err  # stats land on stderr

    def test_cli_without_project_flag_stays_file_local(self, tmp_path, capsys):
        root = _write_service_fixture(tmp_path)
        assert lint_main([str(root)]) == 0
        capsys.readouterr()


class TestSarif:
    def test_to_sarif_structure(self, tmp_path):
        root = _write_service_fixture(tmp_path)
        report = run_lint([str(root)], project=True)
        doc = to_sarif(report.findings)
        assert doc["version"] == SARIF_VERSION
        run = doc["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"ASYNC001", "DET002", "LNT000"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "ASYNC001"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 5
        assert location["region"]["startColumn"] >= 1  # SARIF is 1-based

    def test_cli_sarif_format_is_valid_json(self, tmp_path, capsys):
        root = _write_service_fixture(tmp_path)
        assert lint_main([str(root), "--project", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == SARIF_VERSION
        assert doc["runs"][0]["results"][0]["ruleId"] == "ASYNC001"

    def test_clean_run_emits_empty_results(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")  # repro-lint: disable=ART001 — fixture setup
        assert lint_main([str(target), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestRepoIsClean:
    """The commit-time gate, asserted from inside the test suite too."""

    def test_src_and_tests_lint_clean(self):
        findings = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_project_pass_on_src_and_tests_is_clean(self):
        """`repro lint --project src tests` exits 0 — the whole-program
        rules hold over the real codebase (suppressions carry reasons)."""
        findings = lint_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], project=True
        )
        assert findings == [], "\n".join(f.render() for f in findings)
