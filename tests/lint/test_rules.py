"""Per-rule fixture tests for the determinism lint pass.

Every rule family is exercised three ways: a seeded violation the rule
must catch (true positive), adjacent compliant code it must stay silent
on (true negative), and the same violation under an inline suppression
directive.  Fixtures are linted through :func:`repro.lint.lint_source`
with a virtual path, so path-scoped rules can be probed from both sides
of their scope.
"""

from repro.lint import lint_source

#: Virtual path inside simulation logic: every rule applies.
SIM_PATH = "src/repro/sim/fixture.py"


def rules_at(source: str, path: str = SIM_PATH):
    return [finding.rule for finding in lint_source(source, path)]


class TestRNG001StdlibRandom:
    def test_module_function_call_flagged(self):
        src = "import random\nx = random.random()\n"
        assert rules_at(src) == ["RNG001"]

    def test_from_import_call_flagged(self):
        src = "from random import shuffle\nshuffle(items)\n"
        assert rules_at(src) == ["RNG001"]

    def test_aliased_module_flagged(self):
        src = "import random as rnd\nrnd.seed(7)\n"
        assert rules_at(src) == ["RNG001"]

    def test_seeded_instance_is_clean(self):
        src = (
            "import random\n"
            "rng = random.Random(5)\n"
            "x = rng.random()\n"
            "y = rng.shuffle(items)\n"
        )
        assert rules_at(src) == []

    def test_unrelated_module_named_like_function_is_clean(self):
        # `.shuffle` on an object that is not the random module.
        src = "deck.shuffle()\n"
        assert rules_at(src) == []

    def test_suppressed(self):
        src = (
            "import random\n"
            "x = random.random()  # repro-lint: disable=RNG001 — demo script\n"
        )
        assert rules_at(src) == []


class TestRNG002NumpyGlobalRandom:
    def test_np_random_call_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_at(src) == ["RNG002"]

    def test_numpy_random_module_alias_flagged(self):
        src = "import numpy.random as npr\nx = npr.randint(10)\n"
        assert rules_at(src) == ["RNG002"]

    def test_from_numpy_random_import_flagged(self):
        src = "from numpy.random import choice\nx = choice(a)\n"
        assert rules_at(src) == ["RNG002"]

    def test_default_rng_is_clean(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "seq = np.random.SeedSequence(3)\n"
            "gen = np.random.Generator(np.random.PCG64(seq))\n"
            "x = rng.random()\n"
        )
        assert rules_at(src) == []

    def test_suppressed(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand()  # repro-lint: disable=RNG002 — scratch\n"
        )
        assert rules_at(src) == []


class TestRNG003RandomState:
    def test_attribute_construction_flagged(self):
        src = "import numpy as np\nrs = np.random.RandomState(0)\n"
        assert rules_at(src) == ["RNG003"]

    def test_imported_name_flagged(self):
        src = "from numpy.random import RandomState\nrs = RandomState(0)\n"
        assert rules_at(src) == ["RNG003"]

    def test_generator_is_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_at(src) == []

    def test_suppressed(self):
        src = (
            "import numpy as np\n"
            "rs = np.random.RandomState(0)  # repro-lint: disable=RNG003 — "
            "legacy comparison\n"
        )
        assert rules_at(src) == []


class TestDET001SetIteration:
    def test_for_over_set_call_flagged(self):
        src = "for x in set(items):\n    queue.append(x)\n"
        assert rules_at(src) == ["DET001"]

    def test_for_over_set_literal_flagged(self):
        src = "for x in {a, b, c}:\n    out.append(x)\n"
        assert rules_at(src) == ["DET001"]

    def test_list_comprehension_over_union_flagged(self):
        src = "routes = [f(x) for x in set(a).union(b)]\n"
        assert rules_at(src) == ["DET001"]

    def test_list_of_set_flagged(self):
        src = "order = list(frozenset(items))\n"
        assert rules_at(src) == ["DET001"]

    def test_star_unpack_flagged(self):
        src = "args = [*{1, 2, 3}]\n"
        assert rules_at(src) == ["DET001"]

    def test_sorted_set_is_clean(self):
        src = "for x in sorted(set(items)):\n    queue.append(x)\n"
        assert rules_at(src) == []

    def test_set_comprehension_target_is_clean(self):
        # Iterating a set into another set stays unordered: no hazard.
        src = "seen = {f(x) for x in set(items)}\n"
        assert rules_at(src) == []

    def test_dict_literal_iteration_is_clean(self):
        # Dicts are insertion-ordered; only sets are flagged.
        src = "for k in {'a': 1, 'b': 2}:\n    out.append(k)\n"
        assert rules_at(src) == []

    def test_membership_test_is_clean(self):
        src = "hit = x in {1, 2, 3}\n"
        assert rules_at(src) == []

    def test_suppressed(self):
        src = (
            "for x in set(items):  # repro-lint: disable=DET001 — "
            "order-insensitive count\n"
            "    n += 1\n"
        )
        assert rules_at(src) == []


class TestDET002IdAsKey:
    def test_id_subscript_key_flagged(self):
        src = "cache[id(obj)] = value\n"
        assert rules_at(src) == ["DET002"]

    def test_id_get_flagged(self):
        src = "value = cache.get(id(obj))\n"
        assert rules_at(src) == ["DET002"]

    def test_value_key_is_clean(self):
        src = "cache[obj.conn_id] = value\nother = cache.get(qos)\n"
        assert rules_at(src) == []

    def test_attribute_named_id_is_clean(self):
        src = "lid = link.id()\n"
        assert rules_at(src) == []

    def test_suppressed(self):
        src = "print(id(obj))  # repro-lint: disable=DET002 — debug print\n"
        assert rules_at(src) == []


class TestDET003WallClock:
    def test_time_time_flagged(self):
        src = "import time\nstamp = time.time()\n"
        assert rules_at(src) == ["DET003"]

    def test_from_time_import_flagged(self):
        src = "from time import perf_counter\nt0 = perf_counter()\n"
        assert rules_at(src) == ["DET003"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nstamp = datetime.now()\n"
        assert rules_at(src) == ["DET003"]

    def test_datetime_module_form_flagged(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        assert rules_at(src) == ["DET003"]

    def test_event_clock_is_clean(self):
        src = "now = engine.current_time\nwhen = now + delay\n"
        assert rules_at(src) == []

    def test_timing_infra_is_exempt(self):
        src = "import time\nstart = time.perf_counter()\n"
        assert rules_at(src, path="src/repro/parallel/runner.py") == []
        assert rules_at(src, path="benchmarks/bench_core_ops.py") == []

    def test_service_timing_plane_is_exempt(self):
        # The serving shell, telemetry and loadgen are timing layers:
        # deadlines and latency measurement are their whole job.
        src = "import time\nstart = time.perf_counter()\n"
        for path in (
            "src/repro/service/server.py",
            "src/repro/service/telemetry.py",
            "src/repro/service/loadgen.py",
            "tests/service/test_server.py",
        ):
            assert rules_at(src, path=path) == [], path

    def test_service_decision_plane_is_checked(self):
        # Engine/WAL/shedding/replay/protocol must stay clock-free so a
        # live run replays bitwise; the exemption must NOT cover them.
        src = "import time\nstamp = time.time()\n"
        for path in (
            "src/repro/service/engine.py",
            "src/repro/service/wal.py",
            "src/repro/service/shedding.py",
            "src/repro/service/replay.py",
            "src/repro/service/protocol.py",
        ):
            assert rules_at(src, path=path) == ["DET003"], path

    def test_suppressed(self):
        src = (
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=DET003 — log header\n"
        )
        assert rules_at(src) == []


class TestDET004ItemAccumulationDrift:
    #: Virtual path inside a bitwise-pinned package: DET004 applies.
    PINNED = "src/repro/elastic/fixture.py"

    def test_item_in_augadd_flagged(self):
        src = "total += spare[li].item()\n"
        assert rules_at(src, path=self.PINNED) == ["DET004"]

    def test_item_in_augsub_flagged(self):
        src = "extra -= (reserved[li] - used[li]).item()\n"
        assert rules_at(src, path=self.PINNED) == ["DET004"]

    def test_item_nested_in_expression_flagged(self):
        src = "acc += 2.0 * demand[i].item() + base\n"
        assert rules_at(src, path=self.PINNED) == ["DET004"]

    def test_plain_augadd_is_clean(self):
        src = "total += spare[li]\n"
        assert rules_at(src, path=self.PINNED) == []

    def test_item_outside_accumulation_is_clean(self):
        src = "value = spare[li].item()\n"
        assert rules_at(src, path=self.PINNED) == []

    def test_item_with_args_is_unrelated_method(self):
        # `.item(key)` is a different API (e.g. a mapping helper).
        src = "total += row.item(3)\n"
        assert rules_at(src, path=self.PINNED) == []

    def test_unpinned_package_is_exempt(self):
        src = "total += spare[li].item()\n"
        assert rules_at(src, path=SIM_PATH) == []
        assert rules_at(src, path="src/repro/channels/manager.py") == []

    def test_suppressed(self):
        src = (
            "total += spare[li].item()"
            "  # repro-lint: disable=DET004 — display only\n"
        )
        assert rules_at(src, path=self.PINNED) == []


class TestART001RawArtifactWrite:
    def test_open_write_flagged(self):
        src = "with open(path, 'w') as fh:\n    fh.write(text)\n"
        assert rules_at(src) == ["ART001"]

    def test_open_append_flagged(self):
        src = "fh = open(path, mode='a')\n"
        assert rules_at(src) == ["ART001"]

    def test_path_write_text_flagged(self):
        src = "path.write_text(payload)\n"
        assert rules_at(src) == ["ART001"]

    def test_path_write_bytes_flagged(self):
        src = "path.write_bytes(blob)\n"
        assert rules_at(src) == ["ART001"]

    def test_read_open_is_clean(self):
        src = (
            "with open(path) as fh:\n"
            "    text = fh.read()\n"
            "more = open(path, 'rb').read()\n"
        )
        assert rules_at(src) == []

    def test_atomic_primitive_call_is_clean(self):
        src = (
            "from repro.parallel import atomic_write_text\n"
            "atomic_write_text(path, text)\n"
        )
        assert rules_at(src) == []

    def test_suppressed(self):
        src = (
            "path.write_text(x)  # repro-lint: disable=ART001 — scratch file\n"
        )
        assert rules_at(src) == []


class TestFLT001FloatLiteralEquality:
    def test_nonintegral_literal_equality_flagged(self):
        src = "ok = total == 0.3\n"
        assert rules_at(src) == ["FLT001"]

    def test_not_equal_flagged(self):
        src = "if rate != 0.25:\n    raise ValueError\n"
        assert rules_at(src) == ["FLT001"]

    def test_integral_float_is_clean(self):
        # Exact zero/whole-number comparisons are deliberate and safe.
        src = "done = remaining == 0.0\nfull = level == 8.0\n"
        assert rules_at(src) == []

    def test_epsilon_comparison_is_clean(self):
        src = "ok = abs(total - 0.3) < 1e-9\n"
        assert rules_at(src) == []

    def test_tests_are_exempt(self):
        # Bitwise regression tests pin exact floats on purpose.
        src = "assert result.average_bandwidth == 500.0000000000003\n"
        assert rules_at(src, path="tests/faults/test_regression.py") == []

    def test_suppressed(self):
        src = (
            "ok = x == 0.5  # repro-lint: disable=FLT001 — exactly "
            "representable by construction\n"
        )
        assert rules_at(src) == []


class TestScratchBufferIdiomStaysClean:
    """The SoA fill's scalar scratch-buffer idiom must stay lintable.

    The hot fills copy bitwise-pinned columns into Python lists
    (``column.tolist()``), accumulate on the plain floats, and write
    the buffer back with one slice assign (see
    ``repro/elastic/array_fill.py``).  The floats come off the column
    without ``.item()`` laundering — ``tolist()`` preserves the exact
    float64 values — so the DET rules must stay silent; flagging this
    idiom would outlaw the array core's fast path.
    """

    PINNED = "src/repro/elastic/fixture.py"

    def test_tolist_scratch_accumulation_is_clean(self):
        src = (
            "extra_py = links.primary_extra.tolist()\n"
            "spare = (links.capacity - links.primary_min"
            " - links.activated).tolist()\n"
            "for li in path:\n"
            "    extra_py[li] += delta\n"
            "links.primary_extra[:] = extra_py\n"
        )
        assert rules_at(src, path=self.PINNED) == []

    def test_immutable_mirror_probe_is_clean(self):
        src = (
            "thr = thr_py[h]\n"
            "for li in path_py[h]:\n"
            "    if spare[li] - extra_py[li] < thr:\n"
            "        break\n"
        )
        assert rules_at(src, path=self.PINNED) == []

    def test_item_laundering_in_the_same_idiom_still_flagged(self):
        src = (
            "extra_py = links.primary_extra.tolist()\n"
            "extra_py[li] += links.primary_extra[li].item()\n"
        )
        assert rules_at(src, path=self.PINNED) == ["DET004"]
