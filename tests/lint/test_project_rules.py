"""TP/TN/suppressed fixtures for every whole-program rule family.

Each rule gets at least three fixtures: one where it must fire (true
positive), one exercising the same shape legitimately (true negative),
and one where a ``# repro-lint: disable`` directive silences a
deliberate violation.  Fixtures are virtual in-memory modules whose
paths place them inside the scopes the rules police.
"""

from repro.lint import lint_project_sources

SERVICE = "src/repro/service/fixture_mod.py"
NETWORK = "src/repro/network/fixture_mod.py"

#: Minimal LinkTable double matching the real two-tier protocol surface.
LINK_TABLE = '''
import numpy as np


class LinkTable:
    def __init__(self, n):
        self.primary_min = np.zeros(n)
        self.primary_extra = np.zeros(n)
        self.activated = np.zeros(n)
        self.backup_reserved = np.zeros(n)
        self.capacity = np.zeros(n)
        self.failed = np.zeros(n, dtype=bool)
        self.failed_py = [False] * n

    def _refresh_cell(self, li): ...

    def refresh_cells(self, idx): ...

    def mark_aggregates_dirty(self): ...
'''


def rules_at(sources, select):
    findings = lint_project_sources(sources, select=select)
    return [(f.rule, f.line) for f in findings]


def rule_ids(sources, select):
    return [rule for rule, _ in rules_at(sources, select)]


class TestAsync001BlockingReachable:
    def test_direct_blocking_call_in_async_def_fires(self):
        src = "import time\n\n\nasync def handler():\n    time.sleep(0.5)\n"
        assert rule_ids({SERVICE: src}, ["ASYNC001"]) == ["ASYNC001"]

    def test_blocking_call_reachable_through_sync_helper_fires(self):
        src = (
            "import time\n\n\n"
            "def helper():\n    time.sleep(0.5)\n\n\n"
            "async def handler():\n    helper()\n"
        )
        findings = rules_at({SERVICE: src}, ["ASYNC001"])
        assert [rule for rule, _ in findings] == ["ASYNC001"]
        assert findings[0][1] == 5  # reported at the blocking site

    def test_cross_module_reachability_fires(self):
        helper = "import subprocess\n\n\ndef spawn():\n    subprocess.run(['x'])\n"
        server = (
            "from repro.service.helper_mod import spawn\n\n\n"
            "async def handler():\n    spawn()\n"
        )
        assert rule_ids(
            {"src/repro/service/helper_mod.py": helper, SERVICE: server},
            ["ASYNC001"],
        ) == ["ASYNC001"]

    def test_executor_offload_is_clean(self):
        src = (
            "import asyncio\nimport time\n\n\n"
            "def slow():\n    time.sleep(0.5)\n\n\n"
            "async def handler():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, slow)\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC001"]) == []

    def test_wal_barrier_module_is_exempt(self):
        wal = "import os\n\n\ndef log_events(fd, events):\n    os.fsync(fd)\n"
        server = (
            "from repro.service.wal import log_events\n\n\n"
            "async def apply(fd, batch):\n    log_events(fd, batch)\n"
        )
        assert rule_ids(
            {"src/repro/service/wal.py": wal, SERVICE: server}, ["ASYNC001"]
        ) == []

    def test_blocking_only_in_sync_world_is_clean(self):
        src = "import time\n\n\ndef cli_loop():\n    time.sleep(0.5)\n"
        assert rule_ids({SERVICE: src}, ["ASYNC001"]) == []

    def test_suppression_silences_deliberate_block(self):
        src = (
            "import time\n\n\nasync def handler():\n"
            "    time.sleep(0.5)  # repro-lint: disable=ASYNC001 — startup-only warmup\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC001"]) == []


class TestAsync002UnawaitedCoroutine:
    def test_bare_coroutine_call_fires(self):
        src = (
            "async def work():\n    return 1\n\n\n"
            "async def main():\n    work()\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC002"]) == ["ASYNC002"]

    def test_awaited_and_tasked_calls_are_clean(self):
        src = (
            "import asyncio\n\n\n"
            "async def work():\n    return 1\n\n\n"
            "async def main():\n"
            "    await work()\n"
            "    task = asyncio.create_task(work())\n"
            "    await task\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC002"]) == []

    def test_bare_sync_call_is_clean(self):
        src = "def work():\n    return 1\n\n\ndef main():\n    work()\n"
        assert rule_ids({SERVICE: src}, ["ASYNC002"]) == []

    def test_suppression_respected(self):
        src = (
            "async def work():\n    return 1\n\n\n"
            "async def main():\n"
            "    work()  # repro-lint: disable=ASYNC002 — fire-and-forget demo\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC002"]) == []


class TestAsync003SharedStateOffBatcherPath:
    HEAD = (
        "import asyncio\n\n\n"
        "class Svc:\n"
        "    async def start(self):\n"
        "        self._task = asyncio.create_task(self._loop())\n"
    )

    def test_handler_writing_mode_fires(self):
        src = self.HEAD + (
            "\n    async def _loop(self):\n        pass\n"
            "\n    async def _handle_frame(self, line):\n"
            "        self.mode = 'healthy'\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC003"]) == ["ASYNC003"]

    def test_batcher_reachable_sync_helper_is_clean(self):
        src = self.HEAD + (
            "\n    async def _loop(self):\n        self._enter_degraded()\n"
            "\n    def _enter_degraded(self):\n        self.mode = 'degraded'\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC003"]) == []

    def test_signal_handler_target_is_clean(self):
        src = (
            "import asyncio\nimport signal\n\n\n"
            "class Svc:\n"
            "    async def start(self):\n"
            "        self._task = asyncio.create_task(self._loop())\n"
            "        loop = asyncio.get_running_loop()\n"
            "        loop.add_signal_handler(signal.SIGTERM, self.initiate_drain)\n"
            "\n    async def _loop(self):\n        pass\n"
            "\n    def initiate_drain(self):\n        self._draining = True\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC003"]) == []

    def test_unprotected_counter_in_handler_is_clean(self):
        src = self.HEAD + (
            "\n    async def _loop(self):\n        pass\n"
            "\n    async def _handle_frame(self, line):\n"
            "        self.shed_count += 1\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC003"]) == []

    def test_suppression_respected(self):
        src = self.HEAD + (
            "\n    async def _loop(self):\n        pass\n"
            "\n    async def _handle_frame(self, line):\n"
            "        self.mode = 'x'  # repro-lint: disable=ASYNC003 — test shim\n"
        )
        assert rule_ids({SERVICE: src}, ["ASYNC003"]) == []


class TestDur001DurabilityDomination:
    def test_unlogged_mutation_fires(self):
        src = (
            "class Engine:\n"
            "    def apply(self, req):\n"
            "        self.manager.request_connection(req.src, req.dst, req.qos)\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR001"]) == ["DUR001"]

    def test_wal_append_dominates_all_branches(self):
        src = (
            "class Engine:\n"
            "    def apply(self, batch, journal=None):\n"
            "        if journal is not None:\n"
            "            journal.extend(batch)\n"
            "        elif self.wal is not None:\n"
            "            self.wal.log_events(batch)\n"
            "        for req in batch:\n"
            "            self.manager.request_connection(req.src, req.dst, req.qos)\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR001"]) == []

    def test_one_undominated_branch_fires(self):
        src = (
            "class Engine:\n"
            "    def apply(self, req, fast):\n"
            "        if not fast:\n"
            "            self.wal.log_events([req])\n"
            "        self.manager.fail_link(req.link)\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR001"]) == ["DUR001"]

    def test_caller_justification_through_call_graph(self):
        src = (
            "class Engine:\n"
            "    def _apply_one(self, req):\n"
            "        self.manager.terminate_connection(req.conn_id)\n"
            "\n"
            "    def apply(self, batch):\n"
            "        self.wal.log_events(batch)\n"
            "        for req in batch:\n"
            "            self._apply_one(req)\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR001"]) == []

    def test_suppression_respected(self):
        src = (
            "class Engine:\n"
            "    def apply(self, req):\n"
            "        self.manager.repair_link(req.link)  # repro-lint: disable=DUR001 — offline tool\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR001"]) == []


class TestDur002JournalFlush:
    def test_unflushed_journal_fires(self):
        src = (
            "class Svc:\n"
            "    async def loop(self):\n"
            "        self._journal.append(1)\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR002"]) == ["DUR002"]

    def test_journal_kwarg_without_flush_fires(self):
        src = (
            "class Svc:\n"
            "    async def loop(self, batch):\n"
            "        self.engine.apply_batch(batch, journal=self._journal)\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR002"]) == ["DUR002"]

    def test_flush_reachable_from_batcher_is_clean(self):
        src = (
            "class Svc:\n"
            "    async def loop(self):\n"
            "        self._journal.append(1)\n"
            "        self._rearm()\n"
            "\n"
            "    def _rearm(self):\n"
            "        self.wal.log_events(self._journal)\n"
            "        self._journal.clear()\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR002"]) == []

    def test_suppression_respected(self):
        src = (
            "class Svc:\n"
            "    async def loop(self):\n"
            "        self._journal.append(1)  # repro-lint: disable=DUR002 — bounded debug buffer\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR002"]) == []


class TestDur003FdDurabilityOutsideWal:
    def test_direct_fsync_fires(self):
        src = "import os\n\n\ndef flush(fd):\n    os.fsync(fd)\n"
        assert rule_ids({SERVICE: src}, ["DUR003"]) == ["DUR003"]

    def test_wal_module_is_exempt(self):
        src = "import os\n\n\ndef log_events(fd, ev):\n    os.fsync(fd)\n"
        assert rule_ids({"src/repro/service/wal.py": src}, ["DUR003"]) == []

    def test_non_service_module_is_out_of_scope(self):
        src = "import os\n\n\ndef flush(fd):\n    os.fsync(fd)\n"
        assert rule_ids({"src/repro/parallel/fixture_mod.py": src}, ["DUR003"]) == []

    def test_suppression_respected(self):
        src = (
            "import os\n\n\ndef surgery(path, n):\n"
            "    os.truncate(path, n)  # repro-lint: disable=DUR003 — tear removal, re-verified\n"
        )
        assert rule_ids({SERVICE: src}, ["DUR003"]) == []


class TestSoa001AggregateRefresh:
    def test_column_write_without_refresh_fires(self):
        src = LINK_TABLE + (
            "\n\ndef reserve(links: LinkTable, li, amt):\n"
            "    links.primary_min[li] += amt\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA001"]) == ["SOA001"]

    def test_alias_write_without_refresh_fires(self):
        src = LINK_TABLE + (
            "\n\ndef reserve(links: LinkTable, li, amt):\n"
            "    col = links.primary_min\n"
            "    col[li] += amt\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA001"]) == ["SOA001"]

    def test_ufunc_scatter_write_fires(self):
        src = LINK_TABLE + (
            "\n\ndef reclaim(links: LinkTable, idx, amounts):\n"
            "    np.add.at(links.primary_extra, idx, -amounts)\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA001"]) == ["SOA001"]

    def test_refresh_in_same_function_is_clean(self):
        src = LINK_TABLE + (
            "\n\ndef reserve(links: LinkTable, li, amt):\n"
            "    links.primary_min[li] += amt\n"
            "    links.refresh_cells([li])\n"
            "\n\ndef bulk(links: LinkTable):\n"
            "    links.primary_extra[:] = 0.0\n"
            "    links.mark_aggregates_dirty()\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA001"]) == []

    def test_same_attr_name_on_non_linktable_is_clean(self):
        src = (
            "class LinkState:\n"
            "    def __init__(self):\n"
            "        self.primary_min = {}\n"
            "\n"
            "    def grant(self, conn_id, b_min):\n"
            "        self.primary_min[conn_id] = b_min\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA001"]) == []

    def test_tolist_copy_is_not_an_alias(self):
        src = LINK_TABLE + (
            "\n\ndef snapshot(links: LinkTable):\n"
            "    extra_py = links.primary_extra.tolist()\n"
            "    extra_py[0] += 1.0\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA001"]) == []

    def test_suppression_respected(self):
        src = LINK_TABLE + (
            "\n\ndef reserve(links: LinkTable, li, amt):\n"
            "    links.primary_min[li] += amt  # repro-lint: disable=SOA001 — caller refreshes\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA001"]) == []


class TestSoa002FailedMirror:
    def test_failed_without_mirror_fires(self):
        src = LINK_TABLE + (
            "\n\ndef fail(links: LinkTable, li):\n"
            "    links.failed[li] = True\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA002"]) == ["SOA002"]

    def test_mirror_without_failed_fires(self):
        src = LINK_TABLE + (
            "\n\ndef fail(links: LinkTable, li):\n"
            "    links.failed_py[li] = True\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA002"]) == ["SOA002"]

    def test_both_sides_written_is_clean(self):
        src = LINK_TABLE + (
            "\n\ndef fail(links: LinkTable, li):\n"
            "    links.failed[li] = True\n"
            "    links.failed_py[li] = True\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA002"]) == []

    def test_type_gate_ignores_unrelated_failed_dict(self):
        src = (
            "class Probe:\n"
            "    def __init__(self):\n"
            "        self.failed = {}\n"
            "\n"
            "    def mark(self, key):\n"
            "        self.failed[key] = True\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA002"]) == []

    def test_suppression_respected(self):
        src = LINK_TABLE + (
            "\n\ndef fail(links: LinkTable, li):\n"
            "    links.failed[li] = True  # repro-lint: disable=SOA002 — mirror updated by caller\n"
        )
        assert rule_ids({NETWORK: src}, ["SOA002"]) == []


class TestScopeAndSelection:
    def test_project_rules_do_not_fire_in_tests_paths(self):
        src = "import time\n\n\nasync def handler():\n    time.sleep(0.5)\n"
        assert rule_ids({"tests/service/test_fixture.py": src}, ["ASYNC001"]) == []

    def test_select_filters_project_families(self):
        src = (
            "import os\nimport time\n\n\n"
            "async def handler(fd):\n"
            "    time.sleep(0.5)\n"
            "    os.fsync(fd)\n"
        )
        only_dur = rule_ids({SERVICE: src}, ["DUR003"])
        assert only_dur == ["DUR003"]
        both = rule_ids({SERVICE: src}, ["ASYNC001", "DUR003"])
        assert sorted(set(both)) == ["ASYNC001", "DUR003"]
