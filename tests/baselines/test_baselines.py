"""Unit tests for baseline contracts and the comparison harness."""

import pytest

from repro.baselines.compare import compare_schemes, multiplexing_savings
from repro.baselines.contracts import no_backup_contract, single_value_contract
from repro.channels.manager import NetworkManager
from repro.topology.regular import complete_network, ring_network


class TestContracts:
    def test_single_value_is_degenerate(self):
        qos = single_value_contract(250.0)
        assert qos.performance.num_levels == 1
        assert qos.performance.b_min == qos.performance.b_max == 250.0
        assert qos.dependability.num_backups == 1

    def test_single_value_without_backup(self):
        qos = single_value_contract(250.0, num_backups=0)
        assert not qos.dependability.wants_backup

    def test_no_backup_contract(self):
        qos = no_backup_contract(100.0, 500.0, 50.0)
        assert qos.performance.num_levels == 9
        assert not qos.dependability.wants_backup


class TestCompareSchemes:
    def test_same_request_sequence(self):
        net = complete_network(8, 2000.0)
        schemes = [
            ("elastic", no_backup_contract(100.0, 500.0, 50.0)),
            ("single-min", single_value_contract(100.0, num_backups=0)),
        ]
        outcomes = compare_schemes(net, schemes, offered=40, seed=1)
        assert [o.name for o in outcomes] == ["elastic", "single-min"]
        assert all(o.offered == 40 for o in outcomes)

    def test_elastic_beats_single_min_bandwidth(self):
        """Elasticity recovers idle capacity: higher average bandwidth."""
        net = complete_network(8, 2000.0)
        schemes = [
            ("elastic", no_backup_contract(100.0, 500.0, 50.0)),
            ("single-min", single_value_contract(100.0, num_backups=0)),
        ]
        elastic, single = compare_schemes(net, schemes, offered=30, seed=2)
        assert single.average_bandwidth == pytest.approx(100.0)
        assert elastic.average_bandwidth > 200.0
        assert elastic.accepted == single.accepted  # same admission footprint

    def test_single_max_rejects_more(self):
        """Reserving the maximum everywhere exhausts the network sooner."""
        net = ring_network(8, 1000.0)
        schemes = [
            ("single-min", single_value_contract(100.0, num_backups=0)),
            ("single-max", single_value_contract(500.0, num_backups=0)),
        ]
        low, high = compare_schemes(net, schemes, offered=60, seed=3)
        assert high.accepted < low.accepted
        assert high.acceptance_ratio < low.acceptance_ratio

    def test_backup_scheme_costs_capacity(self):
        """Reserving backups lowers the acceptance count."""
        net = ring_network(8, 1000.0)
        schemes = [
            ("no-backup", single_value_contract(100.0, num_backups=0)),
            ("with-backup", single_value_contract(100.0, num_backups=1)),
        ]
        plain, protected = compare_schemes(net, schemes, offered=80, seed=4)
        assert protected.accepted <= plain.accepted
        assert protected.total_reserved_backup > 0.0
        assert plain.total_reserved_backup == 0.0


class TestMultiplexingSavings:
    def test_savings_positive_with_disjoint_primaries(self, contract):
        net = ring_network(8, 1000.0)
        manager = NetworkManager(net)
        # Several connections whose primaries are spread around the ring:
        # their backups multiplex on the opposite arc.
        for pair in ((0, 1), (2, 3), (4, 5)):
            conn, _ = manager.request_connection(*pair, contract)
            assert conn is not None
        savings = multiplexing_savings(manager)
        assert savings["naive_reservation"] > savings["multiplexed_reservation"]
        assert savings["saved"] > 0
        assert 0.0 < savings["savings_ratio"] < 1.0

    def test_no_backups_no_savings(self, contract_no_backup):
        net = ring_network(6, 1000.0)
        manager = NetworkManager(net)
        manager.request_connection(0, 2, contract_no_backup)
        savings = multiplexing_savings(manager)
        assert savings["naive_reservation"] == 0.0
        assert savings["savings_ratio"] == 0.0
