"""Tests for injected backup-activation faults (graceful drop path)."""

import numpy as np
import pytest

from repro.channels.manager import NetworkManager
from repro.channels.records import ConnectionState
from repro.errors import FaultInjectionError
from repro.faults import FaultConfig
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.workload import WorkloadConfig


class TestSetActivationFaults:
    def test_probability_out_of_range_rejected(self, ring6):
        manager = NetworkManager(ring6)
        with pytest.raises(FaultInjectionError):
            manager.set_activation_faults(-0.1, np.random.default_rng(0))
        with pytest.raises(FaultInjectionError):
            manager.set_activation_faults(1.1, np.random.default_rng(0))

    def test_positive_probability_requires_rng(self, ring6):
        manager = NetworkManager(ring6)
        with pytest.raises(FaultInjectionError):
            manager.set_activation_faults(0.5, None)

    def test_zero_probability_without_rng_allowed(self, ring6):
        manager = NetworkManager(ring6)
        manager.set_activation_faults(0.0, None)


class TestActivationFaultBehaviour:
    def test_certain_fault_drops_instead_of_activating(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.set_activation_faults(1.0, np.random.default_rng(0))
        conn, _ = manager.request_connection(0, 2, contract)
        impact = manager.fail_link((0, 1))
        assert conn.state is ConnectionState.DROPPED
        assert impact.activation_faults == [conn.conn_id]
        assert conn.conn_id in impact.dropped
        assert impact.activated == []
        assert manager.stats.activation_faults == 1
        assert manager.stats.backups_activated == 0
        # An activation fault is a double failure from the QoS viewpoint:
        # the connection had protection and still went down.
        assert manager.stats.double_failure_drops == 1
        manager.check_invariants()

    def test_zero_probability_activates_normally(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.set_activation_faults(0.0, np.random.default_rng(0))
        conn, _ = manager.request_connection(0, 2, contract)
        impact = manager.fail_link((0, 1))
        assert conn.state is ConnectionState.FAILED_OVER
        assert impact.activated == [conn.conn_id]
        assert impact.activation_faults == []
        assert manager.stats.activation_faults == 0
        assert manager.stats.backups_activated == 1
        manager.check_invariants()

    def test_faulted_activation_releases_backup_resources(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.set_activation_faults(1.0, np.random.default_rng(0))
        manager.request_connection(0, 2, contract)
        manager.fail_link((0, 1))
        # The dropped connection must leave no reservations behind on the
        # backup path it failed to switch onto.
        for lid in ring6.link_ids():
            ls = manager.state.link(lid)
            assert not ls.activated
            assert not ls.primary_min


class TestSimulatorIntegration:
    def make_config(self, contract, prob):
        return SimulationConfig(
            qos=contract,
            workload=WorkloadConfig(
                arrival_rate=0.001,
                termination_rate=0.001,
                link_failure_rate=0.0005,
                repair_rate=1.0,
            ),
            offered_connections=4,
            warmup_events=0,
            measure_events=600,
            faults=FaultConfig(activation_fault_prob=prob),
        )

    def test_certain_faults_suppress_all_activations(self, ring6, contract):
        config = self.make_config(contract, 1.0)
        result = ElasticQoSSimulator(ring6, config, seed=11).run()
        stats = result.manager_stats
        assert stats.activation_faults > 0
        assert stats.backups_activated == 0
        assert stats.double_failure_drops >= stats.activation_faults

    def test_disabled_faults_leave_stats_clean(self, ring6, contract):
        config = self.make_config(contract, 0.0)
        result = ElasticQoSSimulator(ring6, config, seed=11).run()
        stats = result.manager_stats
        assert stats.activation_faults == 0
        assert stats.backups_activated > 0
