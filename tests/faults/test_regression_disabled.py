"""With fault injection disabled the simulator must match main bit for bit.

The expected values below were produced on ``main`` (before the fault
subsystem existed) by the exact runs coded here.  Exact float equality
is deliberate: the injector refactor reshuffled *how* failure/repair
rates and victims are computed, and these tests pin down that the rng
stream and arithmetic are untouched when injection is off.
"""

import numpy as np

from repro.analysis.experiments import paper_connection_qos
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.workload import WorkloadConfig
from repro.topology.waxman import paper_random_network


def run_case(capacity, offered, seed, gamma=0.0, rho=1.0):
    net = paper_random_network(capacity, np.random.default_rng(42), n=24, target_edges=45)
    config = SimulationConfig(
        qos=paper_connection_qos(),
        workload=WorkloadConfig(
            arrival_rate=0.001,
            termination_rate=0.001,
            link_failure_rate=gamma,
            repair_rate=rho,
        ),
        offered_connections=offered,
        warmup_events=50,
        measure_events=400,
        sample_interval=5.0,
    )
    return ElasticQoSSimulator(net, config, seed=seed).run()


def test_no_failure_run_matches_main_exactly():
    result = run_case(155_000.0, 80, seed=3)
    assert result.average_bandwidth == 500.0000000000003
    assert result.measurement.average_population == 80.52862386091589
    assert result.end_time == 232394.570368206
    assert list(result.level_occupancy) == [0.0] * 8 + [1.0]
    stats = result.manager_stats
    assert stats.requests == 305
    assert stats.accepted == 305
    assert stats.terminated == 225
    assert stats.link_failures == 0
    assert result.audit_checks == 0


def test_failure_run_matches_main_exactly():
    result = run_case(155_000.0, 80, seed=11, gamma=2e-4, rho=1.0)
    assert result.average_bandwidth == 247.9336775429752
    assert result.measurement.average_population == 6.814063750271312
    assert result.end_time == 18170.5834132207
    stats = result.manager_stats
    assert stats.requests == 97
    assert stats.accepted == 97
    assert stats.terminated == 17
    assert stats.link_failures == 208
    assert stats.link_repairs == 208
    assert stats.backups_activated == 39
    assert stats.connections_dropped == 80
    assert stats.backups_lost == 49
    # New counters must stay pure observers of the legacy dynamics.
    assert stats.node_failures == 0
    assert stats.double_failure_drops == 40
    assert stats.activation_faults == 0


def test_contended_run_matches_main_exactly():
    result = run_case(6_000.0, 120, seed=5)
    assert result.average_bandwidth == 490.4121894025636
    assert result.measurement.average_population == 120.49755124368187
    assert result.end_time == 210598.67850106105
    assert list(result.level_occupancy) == [
        0.0,
        0.0,
        0.0,
        0.0,
        0.004150309917355372,
        0.018262741046831954,
        0.03920884986225894,
        0.0419068526170799,
        0.8964712465564734,
    ]
    stats = result.manager_stats
    assert stats.requests == 345
    assert stats.accepted == 345
    assert stats.terminated == 225


def test_explicit_single_mode_equals_disabled():
    """mode='single' must reproduce the config-less run bit for bit."""
    from repro.faults import FaultConfig

    base = run_case(155_000.0, 80, seed=11, gamma=2e-4, rho=1.0)
    net = paper_random_network(
        155_000.0, np.random.default_rng(42), n=24, target_edges=45
    )
    config = SimulationConfig(
        qos=paper_connection_qos(),
        workload=WorkloadConfig(
            arrival_rate=0.001,
            termination_rate=0.001,
            link_failure_rate=2e-4,
            repair_rate=1.0,
        ),
        offered_connections=80,
        warmup_events=50,
        measure_events=400,
        sample_interval=5.0,
        faults=FaultConfig(mode="single"),
    )
    single = ElasticQoSSimulator(net, config, seed=11).run()
    assert single.average_bandwidth == base.average_bandwidth
    assert single.end_time == base.end_time
    assert single.manager_stats == base.manager_stats
