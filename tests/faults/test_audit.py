"""Tests for the AuditPolicy / Auditor run-time invariant auditing."""

import math

import pytest

from repro.channels.manager import NetworkManager
from repro.channels.records import EventImpact, EventKind
from repro.errors import AuditError, FaultInjectionError
from repro.faults import AuditPolicy, Auditor
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
from repro.sim.workload import WorkloadConfig


class TestAuditPolicy:
    def test_defaults_disabled(self):
        policy = AuditPolicy()
        assert not policy.enabled

    def test_enabled_variants(self):
        assert AuditPolicy(every_n_events=10).enabled
        assert AuditPolicy(after_failure=True).enabled
        assert AuditPolicy(every_n_events=5, after_failure=True).enabled

    def test_negative_period_rejected(self):
        with pytest.raises(FaultInjectionError):
            AuditPolicy(every_n_events=-1)

    def test_nonpositive_tail_rejected(self):
        with pytest.raises(FaultInjectionError):
            AuditPolicy(trace_tail=0)


def impact_at(time, **kwargs):
    return EventImpact(kind=EventKind.FAILURE, time=time, **kwargs)


class TestAuditor:
    def test_after_failure_checks_only_failures(self, ring6):
        manager = NetworkManager(ring6)
        auditor = Auditor(AuditPolicy(after_failure=True), manager)
        auditor.observe(0, "churn", impact_at(1.0))
        auditor.observe(1, "repair", None)
        assert auditor.checks_run == 0
        auditor.observe(2, "failure", impact_at(2.0, failed_link=(0, 1)))
        assert auditor.checks_run == 1

    def test_every_n_period(self, ring6):
        manager = NetworkManager(ring6)
        auditor = Auditor(AuditPolicy(every_n_events=3), manager)
        for index in range(9):
            auditor.observe(index, "churn", None)
        assert auditor.checks_run == 3  # after events 2, 5 and 8

    def test_tail_is_bounded(self, ring6):
        manager = NetworkManager(ring6)
        auditor = Auditor(AuditPolicy(every_n_events=100, trace_tail=4), manager)
        for index in range(10):
            auditor.observe(index, "churn", impact_at(float(index)))
        assert len(auditor.tail) == 4
        assert [entry.index for entry in auditor.tail] == [6, 7, 8, 9]

    def test_noop_events_marked_in_tail(self, ring6):
        manager = NetworkManager(ring6)
        auditor = Auditor(AuditPolicy(every_n_events=100), manager)
        auditor.observe(0, "repair", None)
        entry = auditor.tail[0]
        assert entry.category == "repair (no-op)"
        assert math.isnan(entry.time)

    def test_corruption_raises_audit_error_with_tail(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        auditor = Auditor(AuditPolicy(after_failure=True), manager)
        auditor.observe(0, "churn", impact_at(1.0, conn_id=conn.conn_id))
        # Sabotage a reservation ledger behind the cached total's back.
        ls = manager.state.link((0, 1))
        ls.primary_min[conn.conn_id] += 333.0
        with pytest.raises(AuditError) as excinfo:
            auditor.observe(1, "failure", impact_at(2.0, failed_link=(3, 4)))
        err = excinfo.value
        assert "invariant audit failed after event 1" in str(err)
        assert "event trail" in str(err)
        assert err.event_index == 1
        assert len(err.trace_tail) == 2
        assert err.trace_tail[-1].failed_links == ((3, 4),)


class TestMidRunCorruption:
    """Satellite: a reservation corrupted mid-run must trip the audit."""

    def test_simulator_audit_catches_corruption(self, ring6, contract):
        config = SimulationConfig(
            qos=contract,
            workload=WorkloadConfig(
                arrival_rate=0.001,
                termination_rate=0.001,
                link_failure_rate=0.0002,
                repair_rate=1.0,
            ),
            offered_connections=4,
            warmup_events=0,
            measure_events=400,
            audit=AuditPolicy(every_n_events=1),
        )
        sim = ElasticQoSSimulator(ring6, config, seed=7)
        manager = sim.manager
        real_next_request = sim.workload.next_request
        calls = {"n": 0, "corrupted": False}

        def corrupting_next_request():
            calls["n"] += 1
            # Past the initial population (4 requests), sabotage the first
            # primary reservation found; retry until one exists (the lone
            # survivor may briefly be running on its activated backup).
            if calls["n"] > 4 and not calls["corrupted"]:
                for li in range(len(manager.links)):
                    if manager._prims_on[li]:
                        manager.links.primary_min[li] += 333.0
                        calls["corrupted"] = True
                        break
            return real_next_request()

        sim.workload.next_request = corrupting_next_request
        with pytest.raises(AuditError) as excinfo:
            sim.run()
        err = excinfo.value
        assert "invariant audit failed" in str(err)
        assert err.event_index is not None
        assert err.trace_tail  # post-mortem tail travels with the error

    def test_clean_run_passes_audits(self, ring6, contract):
        config = SimulationConfig(
            qos=contract,
            workload=WorkloadConfig(
                arrival_rate=0.001,
                termination_rate=0.001,
                link_failure_rate=0.0002,
                repair_rate=1.0,
            ),
            offered_connections=4,
            warmup_events=0,
            measure_events=400,
            audit=AuditPolicy(every_n_events=10, after_failure=True),
        )
        result = ElasticQoSSimulator(ring6, config, seed=7).run()
        assert result.audit_checks >= 40

    def test_legacy_knob_maps_to_policy(self, ring6, contract):
        config = SimulationConfig(
            qos=contract,
            workload=WorkloadConfig(
                arrival_rate=0.001,
                termination_rate=0.001,
                link_failure_rate=0.0,
                repair_rate=1.0,
            ),
            offered_connections=2,
            warmup_events=0,
            measure_events=100,
            check_invariants_every=20,
        )
        result = ElasticQoSSimulator(ring6, config, seed=3).run()
        assert result.audit_checks == 5
