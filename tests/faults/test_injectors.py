"""Unit tests for the fault injectors and multi-link failure plumbing."""

import numpy as np
import pytest

from repro.channels.manager import NetworkManager
from repro.channels.records import ConnectionState
from repro.errors import FaultInjectionError
from repro.faults import (
    CorrelatedBurstInjector,
    FaultConfig,
    FaultInjector,
    MarkovOnOffInjector,
    NodeFailureInjector,
    build_injector,
)
from repro.sim.workload import Workload, WorkloadConfig, constant_qos
from repro.topology.waxman import paper_random_network


def make_workload(net, contract, gamma=0.001, rho=0.5, seed=3):
    config = WorkloadConfig(
        arrival_rate=0.001,
        termination_rate=0.001,
        link_failure_rate=gamma,
        repair_rate=rho,
    )
    return Workload(net, constant_qos(contract), config, np.random.default_rng(seed))


@pytest.fixture
def waxman24():
    return paper_random_network(10_000.0, np.random.default_rng(42), n=24, target_edges=45)


class TestFaultConfigValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(mode="meteor")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(mode="burst", burst_kernel="spooky")

    def test_nonpositive_burst_size_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(mode="burst", burst_size=0)

    def test_nonpositive_distance_scale_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(distance_scale=0.0)

    def test_activation_prob_range(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(activation_fault_prob=1.5)
        with pytest.raises(FaultInjectionError):
            FaultConfig(activation_fault_prob=-0.1)

    def test_negative_rate_spread_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(rate_spread=-1.0)

    def test_build_dispatch(self, ring6, contract):
        workload = make_workload(ring6, contract)
        assert type(build_injector(None, ring6, workload)) is FaultInjector
        assert type(build_injector(FaultConfig(), ring6, workload)) is FaultInjector
        assert isinstance(
            build_injector(FaultConfig(mode="node"), ring6, workload),
            NodeFailureInjector,
        )
        assert isinstance(
            build_injector(FaultConfig(mode="burst"), ring6, workload),
            CorrelatedBurstInjector,
        )
        assert isinstance(
            build_injector(FaultConfig(mode="markov"), ring6, workload),
            MarkovOnOffInjector,
        )


class TestMultiLinkFailures:
    def test_fail_links_atomic_double_failure(self, ring6, contract):
        """A burst hitting primary AND backup drops the connection."""
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        # Primary goes 0-1-2; the link-disjoint backup goes the long way
        # round, so (0,1) and (0,5) together sever both routes at once.
        impact = manager.fail_links([(0, 1), (0, 5)])
        assert sorted(impact.failed_links) == [(0, 1), (0, 5)]
        assert conn.state is ConnectionState.DROPPED
        assert conn.conn_id in impact.dropped
        assert manager.stats.double_failure_drops == 1
        assert manager.stats.backups_activated == 0
        assert manager.stats.link_failures == 2
        manager.check_invariants()

    def test_fail_links_rejects_empty_and_dead(self, ring6):
        manager = NetworkManager(ring6)
        with pytest.raises(FaultInjectionError):
            manager.fail_links([])
        manager.fail_link((0, 1))
        with pytest.raises(FaultInjectionError):
            manager.fail_links([(0, 1), (1, 2)])

    def test_single_link_burst_matches_fail_link(self, ring6, contract):
        """fail_links([lid]) and fail_link(lid) report identically."""
        a = NetworkManager(ring6)
        a.request_connection(0, 2, contract)
        b = NetworkManager(ring6)
        b.request_connection(0, 2, contract)
        one = a.fail_link((0, 1))
        many = b.fail_links([(0, 1)])
        assert many.failed_link == one.failed_link == (0, 1)
        assert many.activated == one.activated
        assert many.dropped == one.dropped
        assert many.direct == one.direct

    def test_fail_node(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        impact = manager.fail_node(0)
        assert impact.failed_node == 0
        assert sorted(impact.failed_links) == [(0, 1), (0, 5)]
        assert manager.stats.node_failures == 1
        assert manager.stats.link_failures == 2
        # Both routes pass through node 0: the connection cannot survive.
        assert conn.state is ConnectionState.DROPPED
        manager.check_invariants()

    def test_fail_node_without_alive_links_rejected(self, ring6):
        manager = NetworkManager(ring6)
        manager.fail_node(0)
        with pytest.raises(FaultInjectionError):
            manager.fail_node(0)


class TestNodeFailureInjector:
    def test_injects_whole_node(self, ring6, contract):
        manager = NetworkManager(ring6)
        workload = make_workload(ring6, contract)
        injector = NodeFailureInjector(ring6, workload)
        impact = injector.inject_failure(manager)
        assert impact.failed_node is not None
        assert len(impact.failed_links) == 2  # every ring node has degree 2
        assert manager.stats.node_failures == 1

    def test_rates_match_base_model(self, ring6, contract):
        manager = NetworkManager(ring6)
        workload = make_workload(ring6, contract, gamma=0.01, rho=0.25)
        injector = NodeFailureInjector(ring6, workload)
        assert injector.failure_rate(manager.state) == 0.01 * 6
        manager.fail_link((0, 1))
        assert injector.failure_rate(manager.state) == 0.01 * 5
        assert injector.repair_rate(manager.state) == 0.25 * 1


class TestCorrelatedBurstInjector:
    def test_shared_node_burst_is_connected(self, waxman24, contract):
        manager = NetworkManager(waxman24)
        workload = make_workload(waxman24, contract)
        config = FaultConfig(mode="burst", burst_size=3)
        injector = CorrelatedBurstInjector(waxman24, workload, config)
        impact = injector.inject_failure(manager)
        assert len(impact.failed_links) == 3
        # Every burst link shares a node with at least one other member.
        for lid in impact.failed_links:
            others = [o for o in impact.failed_links if o != lid]
            assert any(set(lid) & set(o) for o in others)

    def test_distance_kernel_needs_positions(self, ring6, contract):
        workload = make_workload(ring6, contract)
        config = FaultConfig(mode="burst", burst_kernel="distance")
        with pytest.raises(FaultInjectionError):
            CorrelatedBurstInjector(ring6, workload, config)

    def test_distance_kernel_on_waxman(self, waxman24, contract):
        manager = NetworkManager(waxman24)
        workload = make_workload(waxman24, contract)
        config = FaultConfig(mode="burst", burst_size=4, burst_kernel="distance")
        injector = CorrelatedBurstInjector(waxman24, workload, config)
        impact = injector.inject_failure(manager)
        assert len(impact.failed_links) == 4
        assert len(set(impact.failed_links)) == 4
        for lid in impact.failed_links:
            assert manager.state.is_failed(lid)

    def test_burst_comes_up_short_when_pool_dry(self, line5, contract):
        # A 4-link path asked for a 10-link burst fails what it can.
        manager = NetworkManager(line5)
        workload = make_workload(line5, contract)
        config = FaultConfig(mode="burst", burst_size=10)
        injector = CorrelatedBurstInjector(line5, workload, config)
        impact = injector.inject_failure(manager)
        assert 1 <= len(impact.failed_links) <= 4


class TestMarkovOnOffInjector:
    def test_homogeneous_spread_matches_base_rates(self, ring6, contract):
        manager = NetworkManager(ring6)
        workload = make_workload(ring6, contract, gamma=0.02, rho=0.5)
        injector = MarkovOnOffInjector(ring6, workload, FaultConfig(mode="markov"))
        base = FaultInjector(ring6, workload)
        assert injector.failure_rate(manager.state) == pytest.approx(
            base.failure_rate(manager.state)
        )

    def test_incremental_weights_stay_consistent(self, waxman24, contract):
        manager = NetworkManager(waxman24)
        workload = make_workload(waxman24, contract, gamma=0.01, rho=0.5)
        config = FaultConfig(mode="markov", rate_spread=0.8, rate_seed=9)
        injector = MarkovOnOffInjector(waxman24, workload, config)
        total = sum(injector.multipliers.values())
        for _ in range(10):
            injector.inject_failure(manager)
        for _ in range(4):
            injector.inject_repair(manager)
        # Recompute both sums from scratch and compare to the running ones.
        alive = sum(injector.multipliers[l] for l in manager.state.alive_link_list())
        failed = sum(injector.multipliers[l] for l in manager.state.failed_link_list())
        assert injector.failure_rate(manager.state) == pytest.approx(0.01 * alive)
        assert injector.repair_rate(manager.state) == pytest.approx(0.5 * failed)
        assert alive + failed == pytest.approx(total)

    def test_rate_seed_fixes_the_landscape(self, waxman24, contract):
        workload = make_workload(waxman24, contract)
        config = FaultConfig(mode="markov", rate_spread=0.5, rate_seed=4)
        a = MarkovOnOffInjector(waxman24, workload, config)
        b = MarkovOnOffInjector(waxman24, workload, config)
        assert a.multipliers == b.multipliers
