"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.topology.regular import (
    complete_network,
    dumbbell_network,
    grid_network,
    line_network,
    ring_network,
)

#: Capacity used by most unit-test topologies: fits ten minimum-rate
#: channels, or two channels at the 500 Kb/s maximum.
TEST_CAPACITY = 1000.0


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for generator tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def line5():
    """A 5-node path network, capacity 1000."""
    return line_network(5, TEST_CAPACITY)


@pytest.fixture
def ring6():
    """A 6-node ring network, capacity 1000."""
    return ring_network(6, TEST_CAPACITY)


@pytest.fixture
def grid33():
    """A 3x3 grid network, capacity 1000."""
    return grid_network(3, 3, TEST_CAPACITY)


@pytest.fixture
def complete5():
    """The complete graph on 5 nodes, capacity 1000."""
    return complete_network(5, TEST_CAPACITY)


@pytest.fixture
def dumbbell3():
    """A dumbbell with 3 leaves per side, capacity 1000."""
    return dumbbell_network(3, TEST_CAPACITY)


@pytest.fixture
def elastic_qos() -> ElasticQoS:
    """The paper's elastic range: 100..500 Kb/s in steps of 50 (9 levels)."""
    return ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0)


@pytest.fixture
def contract(elastic_qos) -> ConnectionQoS:
    """Full DR contract with one backup."""
    return ConnectionQoS(performance=elastic_qos, dependability=DependabilityQoS())


@pytest.fixture
def contract_no_backup(elastic_qos) -> ConnectionQoS:
    """Elastic contract without fault tolerance."""
    return ConnectionQoS(
        performance=elastic_qos, dependability=DependabilityQoS(num_backups=0)
    )
