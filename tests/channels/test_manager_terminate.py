"""Unit tests for DR-connection termination."""

import pytest

from repro.channels.manager import NetworkManager
from repro.channels.records import ConnectionState, EventKind
from repro.errors import ReservationError


class TestTermination:
    def test_releases_everything(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        impact = manager.terminate_connection(conn.conn_id)
        assert impact.kind is EventKind.TERMINATION
        assert conn.state is ConnectionState.TERMINATED
        assert manager.num_live == 0
        for ls in manager.state.links():
            assert ls.used == 0.0
            assert ls.backup_reserved == 0.0
        manager.check_invariants()

    def test_stats_counted(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.terminate_connection(conn.conn_id)
        assert manager.stats.terminated == 1

    def test_unknown_connection_rejected(self, ring6):
        manager = NetworkManager(ring6)
        with pytest.raises(ReservationError):
            manager.terminate_connection(42)

    def test_double_terminate_rejected(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.terminate_connection(conn.conn_id)
        with pytest.raises(ReservationError):
            manager.terminate_connection(conn.conn_id)

    def test_sharing_channels_rise(self, contract_no_backup):
        from repro.topology.regular import dumbbell_network

        net = dumbbell_network(3, 1000.0, bottleneck_capacity=500.0)
        manager = NetworkManager(net)
        first, _ = manager.request_connection(1, 5, contract_no_backup)
        second, _ = manager.request_connection(2, 6, contract_no_backup)
        assert first.level == 3 and second.level == 3
        impact = manager.terminate_connection(second.conn_id)
        # The survivor shares the bottleneck: it rises back to its maximum.
        assert first.level == 8
        assert first.conn_id in impact.direct
        before, after = impact.direct[first.conn_id]
        assert (before, after) == (3, 8)

    def test_unrelated_channels_unchanged(self, dumbbell3, contract_no_backup):
        manager = NetworkManager(dumbbell3)
        # Two disjoint leaf-to-hub connections.
        a, _ = manager.request_connection(1, 2, contract_no_backup)
        b, _ = manager.request_connection(5, 6, contract_no_backup)
        level_b = b.level
        impact = manager.terminate_connection(a.conn_id)
        assert b.conn_id not in impact.direct
        assert b.level == level_b

    def test_terminate_failed_over_connection(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.fail_link((0, 1))
        assert conn.state is ConnectionState.FAILED_OVER
        manager.terminate_connection(conn.conn_id)
        assert conn.state is ConnectionState.TERMINATED
        for ls in manager.state.links():
            assert ls.activated == {}
        assert manager.num_live == 0

    def test_backup_release_frees_reservation_for_future_backups(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        reserved_before = sum(ls.backup_reserved for ls in manager.state.links())
        assert reserved_before > 0
        manager.terminate_connection(conn.conn_id)
        assert sum(ls.backup_reserved for ls in manager.state.links()) == 0.0
