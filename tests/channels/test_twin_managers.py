"""Twin-manager equivalence: object core vs array core, bit for bit.

The struct-of-arrays :class:`ArrayNetworkManager` claims *bitwise*
equivalence with the per-object :class:`NetworkManager` oracle: driven
through an identical event sequence, every route, grant, drop, impact
record, statistic and per-link float must match exactly (``==`` on
floats, not ``approx``).  These tests drive both cores in lock-step —
through scripted campaigns, through every fault injector, and through
hypothesis-generated event sequences — and diff complete state
snapshots along the way.

Bandwidths are drawn from the paper's dyadic grid (multiples of
50 Kb/s), where the SoA core's vectorized accumulation is exact; see
the module docstring of :mod:`repro.elastic.array_fill`.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channels import ArrayNetworkManager, NetworkManager, make_manager
from repro.elastic.policies import EqualShare, MaxUtility, UtilityProportional
from repro.faults.injectors import FaultConfig, build_injector
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.sim.workload import Workload, WorkloadConfig
from repro.topology.regular import grid_network

B_MINS = (50.0, 100.0, 150.0)
INCREMENTS = (50.0, 100.0)


def _make_qos(rng: random.Random) -> ConnectionQoS:
    b_min = rng.choice(B_MINS)
    inc = rng.choice(INCREMENTS)
    levels = rng.randrange(1, 5)
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=b_min,
            b_max=b_min + inc * (levels - 1) if levels > 1 else b_min + inc,
            increment=inc,
            utility=float(rng.randrange(1, 4)),
        ),
        dependability=DependabilityQoS(num_backups=rng.choice((0, 1))),
    )


def _snapshot(m: NetworkManager | ArrayNetworkManager):
    """Complete observable state: connections, link floats, stats."""
    conns = {}
    for cid in sorted(m.connections.keys()):
        c = m.connections[cid]
        conns[cid] = (
            c.level,
            c.state.name,
            c.on_backup,
            tuple(c.primary_path),
            tuple(c.primary_links),
            tuple(c.backup_links) if c.backup_links else None,
            c.bandwidth,
            c.backup_overlap,
        )
    links = {}
    if isinstance(m, ArrayNetworkManager):
        t = m.links
        for lid, li in t.index.items():
            links[lid] = (
                float(t.primary_min[li]),
                float(t.primary_extra[li]),
                float(t.activated[li]),
                float(t.backup_reserved[li]),
                bool(t.failed[li]),
            )
    else:
        for lid in m.state.topology.link_ids():
            ls = m.state.link(lid)
            links[lid] = (
                ls.primary_min_total,
                ls.primary_extra_total,
                ls.activated_total,
                ls.backup_reserved,
                ls.failed,
            )
    return conns, links, vars(m.stats).copy()


def _impact_key(impact):
    return (
        impact.kind.name,
        impact.conn_id,
        impact.accepted,
        dict(impact.direct),
        dict(impact.indirect_changed),
        tuple(impact.dropped),
        tuple(impact.activated),
        tuple(impact.lost_backup),
        tuple(impact.activation_faults),
        tuple(sorted(impact.failed_links)) if impact.failed_links else (),
    )


def _assert_equal_state(mo, ma, where: str) -> None:
    so, sa = _snapshot(mo), _snapshot(ma)
    for part, po, pa in zip(("connections", "links", "stats"), so, sa):
        diffs = {k: (po[k], pa.get(k)) for k in po if po[k] != pa.get(k)}
        assert not diffs and po == pa, f"{where}: {part} diverged: {diffs}"
    assert mo.average_live_bandwidth() == ma.average_live_bandwidth(), where
    assert mo.level_histogram(8) == ma.level_histogram(8), where
    assert sorted(mo.connections.keys()) == ma.live_connection_ids(), where


class TwinDriver:
    """Drives an object/array manager pair through one decision stream."""

    def __init__(self, seed: int, **manager_kwargs) -> None:
        self.net = grid_network(4, 4, capacity=1000.0)
        self.mo = make_manager(self.net, core="object", **manager_kwargs)
        self.ma = make_manager(self.net, core="array", **manager_kwargs)
        self.rng = random.Random(seed)
        self.nodes = self.net.nodes()
        self.live: list[int] = []

    def arrive(self) -> None:
        s, d = self.rng.sample(self.nodes, 2)
        qos = _make_qos(self.rng)
        co, io_ = self.mo.request_connection(s, d, qos)
        ca, ia = self.ma.request_connection(s, d, qos)
        assert (co is None) == (ca is None)
        assert _impact_key(io_) == _impact_key(ia)
        if co is not None:
            assert co.primary_path == ca.primary_path
            assert co.backup_path == ca.backup_path
            self.live.append(co.conn_id)

    def terminate(self) -> None:
        if not self.live:
            return
        cid = self.live.pop(self.rng.randrange(len(self.live)))
        if cid not in self.mo.connections:
            return  # dropped by an earlier failure
        io_ = self.mo.terminate_connection(cid)
        ia = self.ma.terminate_connection(cid)
        assert _impact_key(io_) == _impact_key(ia)

    def fail(self) -> None:
        alive = self.mo.state.alive_link_list()
        if len(alive) <= self.net.num_links // 2:
            return  # keep the grid connected enough to stay interesting
        lid = alive[self.rng.randrange(len(alive))]
        io_ = self.mo.fail_link(lid)
        ia = self.ma.fail_link(lid)
        assert _impact_key(io_) == _impact_key(ia)

    def repair(self) -> None:
        failed = self.mo.state.failed_link_list()
        if not failed:
            return
        lid = failed[self.rng.randrange(len(failed))]
        self.mo.repair_link(lid)
        self.ma.repair_link(lid)

    def run(self, events: int, faults: bool, check_every: int = 29) -> None:
        for step in range(events):
            r = self.rng.random()
            if r < 0.5 or not self.live:
                self.arrive()
            elif r < 0.8 or not faults:
                self.terminate()
            elif r < 0.9:
                self.fail()
            else:
                self.repair()
            if step % check_every == 0:
                self.mo.check_invariants()
                self.ma.check_invariants()
                _assert_equal_state(self.mo, self.ma, f"step {step}")
        self.mo.check_invariants()
        self.ma.check_invariants()
        _assert_equal_state(self.mo, self.ma, "final")


class TestTwinCampaigns:
    """Scripted random campaigns, faults off and on."""

    @pytest.mark.parametrize("seed", range(4))
    def test_churn_only(self, seed):
        TwinDriver(seed).run(300, faults=False)

    @pytest.mark.parametrize("seed", range(4, 8))
    def test_churn_and_failures(self, seed):
        TwinDriver(seed).run(300, faults=True)

    def test_flooding_routing(self):
        TwinDriver(11, routing="flooding").run(150, faults=True)

    def test_multiplexing_off(self):
        TwinDriver(12, multiplex_backups=False).run(200, faults=True)

    def test_backup_reestablishment(self):
        driver = TwinDriver(13, reestablish_backups=True)
        driver.run(250, faults=True)
        assert driver.mo.stats.backups_reestablished == driver.ma.stats.backups_reestablished

    @pytest.mark.parametrize("policy_cls", [UtilityProportional, MaxUtility])
    def test_priority_policies(self, policy_cls):
        # Non-equal-share policies exercise the heap fill in both cores.
        TwinDriver(14, policy=policy_cls()).run(200, faults=True)

    def test_activation_faults(self):
        driver = TwinDriver(15)
        driver.mo.set_activation_faults(0.5, np.random.default_rng(99))
        driver.ma.set_activation_faults(0.5, np.random.default_rng(99))
        driver.run(250, faults=True)
        assert driver.mo.stats.activation_faults > 0
        assert driver.mo.stats.activation_faults == driver.ma.stats.activation_faults

    def test_cache_disabled(self):
        TwinDriver(16, route_cache_probe=0).run(150, faults=True)


class TestTwinUnderInjectors:
    """Both cores driven by each fault injector from repro.faults."""

    CONFIGS = {
        "node": FaultConfig(mode="node"),
        "burst": FaultConfig(mode="burst", burst_size=3, burst_kernel="shared-node"),
        "markov": FaultConfig(mode="markov", rate_spread=1.0, rate_seed=5),
    }

    @pytest.mark.parametrize("mode", sorted(CONFIGS))
    def test_injected_faults_equivalent(self, mode):
        config = self.CONFIGS[mode]
        net = grid_network(4, 4, capacity=1000.0)
        mo = make_manager(net, core="object")
        ma = make_manager(net, core="array")
        wl_config = WorkloadConfig(
            arrival_rate=1.0,
            termination_rate=1.0,
            link_failure_rate=0.1,
            repair_rate=1.0,
        )
        qos_rng = random.Random(1000 + hash(mode) % 1000)

        def factory(_index: int) -> ConnectionQoS:
            return _make_qos(qos_rng)

        # Two injector stacks with identically seeded RNGs: since the
        # cores expose identical alive/failed lists at every step, both
        # stacks draw the same victims.
        stacks = []
        for manager in (mo, ma):
            workload = Workload(net, factory, wl_config, np.random.default_rng(77))
            stacks.append((manager, build_injector(config, net, workload)))
        rng = random.Random(303)
        live: list[int] = []
        for step in range(200):
            r = rng.random()
            if r < 0.45 or not live:
                s, d = rng.sample(net.nodes(), 2)
                qos = _make_qos(rng)
                co, io_ = mo.request_connection(s, d, qos)
                ca, ia = ma.request_connection(s, d, qos)
                assert _impact_key(io_) == _impact_key(ia)
                if co is not None:
                    live.append(co.conn_id)
            elif r < 0.75:
                cid = live.pop(rng.randrange(len(live)))
                if cid in mo.connections:
                    io_ = mo.terminate_connection(cid)
                    ia = ma.terminate_connection(cid)
                    assert _impact_key(io_) == _impact_key(ia)
            elif r < 0.88:
                if mo.state.num_alive <= net.num_links // 2:
                    continue
                impacts = [inj.inject_failure(m) for m, inj in stacks]
                assert (impacts[0] is None) == (impacts[1] is None)
                if impacts[0] is not None:
                    assert _impact_key(impacts[0]) == _impact_key(impacts[1])
            else:
                impacts = [inj.inject_repair(m) for m, inj in stacks]
                assert (impacts[0] is None) == (impacts[1] is None)
            if step % 23 == 0:
                mo.check_invariants()
                ma.check_invariants()
                _assert_equal_state(mo, ma, f"{mode} step {step}")
        mo.check_invariants()
        ma.check_invariants()
        _assert_equal_state(mo, ma, f"{mode} final")
        assert mo.stats.link_failures > 0


#: ≥200 randomized sequences: 100 hypothesis examples here plus 100 in
#: the fault-flavoured property below (and the scripted campaigns above).
TWIN_SETTINGS = settings(
    max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestTwinProperty:
    """Property: any event sequence leaves the cores bitwise identical."""

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @TWIN_SETTINGS
    def test_random_churn_sequences(self, seed):
        TwinDriver(seed).run(60, faults=False, check_every=60)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @TWIN_SETTINGS
    def test_random_fault_sequences(self, seed):
        TwinDriver(seed).run(60, faults=True, check_every=60)


class EpochTwinDriver(TwinDriver):
    """Array core with micro-epoch batching vs sequential object core.

    With an epoch open the array core defers fills, so per-event
    impacts are *not* compared for churn (their level trajectories are
    pre-fill by contract); instead full state — every connection level,
    link float and statistic — must be bitwise equal at every flush
    point and at the end.  Failures are epoch barriers, so their
    impacts stay fully comparable.
    """

    def __init__(self, seed: int, **manager_kwargs) -> None:
        super().__init__(seed, **manager_kwargs)
        self.mo.begin_micro_epoch()
        self.ma.begin_micro_epoch()

    def arrive(self) -> None:
        s, d = self.rng.sample(self.nodes, 2)
        qos = _make_qos(self.rng)
        co, io_ = self.mo.request_connection(s, d, qos)
        ca, ia = self.ma.request_connection(s, d, qos)
        assert (co is None) == (ca is None)
        assert io_.accepted == ia.accepted
        if co is not None:
            assert co.primary_path == ca.primary_path
            assert co.backup_path == ca.backup_path
            self.live.append(co.conn_id)

    def terminate(self) -> None:
        if not self.live:
            return
        cid = self.live.pop(self.rng.randrange(len(self.live)))
        if cid not in self.mo.connections:
            return
        self.mo.terminate_connection(cid)
        self.ma.terminate_connection(cid)

    def run(self, events: int, faults: bool, check_every: int = 29) -> None:
        for step in range(events):
            r = self.rng.random()
            if r < 0.5 or not self.live:
                self.arrive()
            elif r < 0.8 or not faults:
                self.terminate()
            elif r < 0.9:
                self.fail()
            else:
                self.repair()
            if step % check_every == 0:
                # Books must balance even mid-epoch (columns == rows)...
                self.ma.check_invariants()
                # ...and flushing must land exactly on the sequential
                # core's state.
                self.mo.flush_micro_epoch()
                self.ma.flush_micro_epoch()
                self.mo.check_invariants()
                _assert_equal_state(self.mo, self.ma, f"epoch step {step}")
        self.mo.end_micro_epoch()
        self.ma.end_micro_epoch()
        self.mo.check_invariants()
        self.ma.check_invariants()
        _assert_equal_state(self.mo, self.ma, "epoch final")


class TestMicroEpochTwin:
    """Micro-epoch batching reproduces the sequential trajectory."""

    @pytest.mark.parametrize("seed", range(40, 44))
    def test_epoch_churn_only(self, seed):
        EpochTwinDriver(seed).run(300, faults=False)

    @pytest.mark.parametrize("seed", range(44, 48))
    def test_epoch_churn_and_failures(self, seed):
        EpochTwinDriver(seed).run(300, faults=True)

    @pytest.mark.parametrize("policy_cls", [UtilityProportional, MaxUtility])
    def test_epoch_priority_policies(self, policy_cls):
        EpochTwinDriver(49, policy=policy_cls()).run(200, faults=True)

    def test_epoch_batches_something(self):
        # The guard must not degenerate into flush-per-event: on an
        # idle-ish grid some consecutive events are disjoint and their
        # fills actually batch (pending affected links survive events).
        driver = EpochTwinDriver(50)
        batched = 0
        for _ in range(120):
            driver.arrive()
            if driver.ma._epoch_affected:
                batched += 1
        assert batched > 0
        driver.mo.end_micro_epoch()
        driver.ma.end_micro_epoch()
        _assert_equal_state(driver.mo, driver.ma, "batching final")

    def test_double_begin_rejected(self):
        from repro.errors import SimulationError

        for core in ("object", "array"):
            m = make_manager(grid_network(2, 2, capacity=1000.0), core=core)
            m.begin_micro_epoch()
            with pytest.raises(SimulationError):
                m.begin_micro_epoch()
            m.end_micro_epoch()
            m.begin_micro_epoch()  # reusable after close
            assert m.end_micro_epoch() == {}

    def test_flush_without_epoch_is_noop(self):
        for core in ("object", "array"):
            m = make_manager(grid_network(2, 2, capacity=1000.0), core=core)
            assert m.flush_micro_epoch() == {}
            assert m.end_micro_epoch() == {}

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @TWIN_SETTINGS
    def test_epoch_random_sequences(self, seed):
        EpochTwinDriver(seed).run(60, faults=True, check_every=60)


class TestMicroEpochSimulator:
    """End-to-end: SimulationConfig(micro_epochs=True) is bitwise inert."""

    def test_simulator_results_bitwise_identical(self):
        from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig

        net = grid_network(4, 4, capacity=1000.0)
        qos = ConnectionQoS(
            performance=ElasticQoS(
                b_min=100.0, b_max=300.0, increment=100.0, utility=1.0
            ),
            dependability=DependabilityQoS(num_backups=1),
        )
        results = {}
        for core in ("object", "array"):
            for epochs in (False, True):
                cfg = SimulationConfig(
                    qos=qos,
                    offered_connections=30,
                    warmup_events=150,
                    measure_events=150,
                    sample_interval=5,
                    workload=WorkloadConfig(
                        arrival_rate=1.0,
                        termination_rate=1.0,
                        link_failure_rate=0.01,
                        repair_rate=1.0,
                    ),
                    core=core,
                    micro_epochs=epochs,
                )
                r = ElasticQoSSimulator(net, cfg, seed=7).run()
                results[(core, epochs)] = (
                    r.average_bandwidth,
                    r.level_occupancy.tolist(),
                    r.manager_stats,
                    r.initial_population,
                    r.end_time,
                )
        baseline = results[("object", False)]
        for key, value in results.items():
            assert value == baseline, f"{key} diverged from sequential object core"


class TestInjectorsUnderMicroEpochs:
    """Fault injection x micro-epoch batching, full simulator loop.

    Each PR 3 injector drives the simulator on both cores with
    ``micro_epochs`` on and off; all four runs must be bitwise
    identical.  This pins the interaction the per-feature twins miss:
    injector-drawn failures landing *inside* an open epoch (the array
    core auto-flushes around them) must not perturb the event stream.
    """

    CONFIGS = {
        "node": FaultConfig(mode="node"),
        "burst": FaultConfig(mode="burst", burst_size=3, burst_kernel="shared-node"),
        "markov": FaultConfig(mode="markov", rate_spread=1.0, rate_seed=5),
    }

    @pytest.mark.parametrize("mode", sorted(CONFIGS))
    def test_injected_simulation_bitwise_identical(self, mode):
        from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig

        net = grid_network(4, 4, capacity=1000.0)
        qos = ConnectionQoS(
            performance=ElasticQoS(
                b_min=100.0, b_max=300.0, increment=100.0, utility=1.0
            ),
            dependability=DependabilityQoS(num_backups=1),
        )
        results = {}
        for core in ("object", "array"):
            for epochs in (False, True):
                cfg = SimulationConfig(
                    qos=qos,
                    offered_connections=30,
                    warmup_events=120,
                    measure_events=120,
                    sample_interval=5,
                    workload=WorkloadConfig(
                        arrival_rate=1.0,
                        termination_rate=1.0,
                        link_failure_rate=0.05,
                        repair_rate=1.0,
                    ),
                    faults=self.CONFIGS[mode],
                    core=core,
                    micro_epochs=epochs,
                )
                r = ElasticQoSSimulator(net, cfg, seed=11).run()
                results[(core, epochs)] = (
                    r.average_bandwidth,
                    r.level_occupancy.tolist(),
                    r.manager_stats,
                    r.initial_population,
                    r.end_time,
                )
        baseline = results[("object", False)]
        for key, value in results.items():
            assert value == baseline, f"{mode}/{key} diverged from sequential object"
        assert baseline[2].link_failures > 0, "injector never fired"
