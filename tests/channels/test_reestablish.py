"""Unit tests for the backup re-establishment extension."""


from repro.channels.manager import NetworkManager
from repro.topology.graph import Network


def theta_network(capacity=1000.0):
    """Three disjoint 0->3 branches: room for a replacement backup."""
    net = Network()
    for branch, midpoints in enumerate(((1,), (2,), (4, 5))):
        prev = 0
        for node in midpoints:
            net.add_link(prev, node, capacity)
            prev = node
        net.add_link(prev, 3, capacity)
    return net


class TestReestablishment:
    def test_disabled_by_default(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.fail_link((3, 4))  # kills the backup; ring has no third arc
        assert conn.backup_links is None
        assert manager.stats.backups_reestablished == 0

    def test_replacement_found_on_rich_topology(self, contract):
        net = theta_network()
        manager = NetworkManager(net, reestablish_backups=True)
        conn, _ = manager.request_connection(0, 3, contract)
        assert conn.primary_path == [0, 1, 3]
        first_backup = list(conn.backup_links)
        # Fail a backup link: the third branch must take over.
        manager.fail_link(first_backup[0])
        assert conn.backup_links is not None
        assert conn.backup_links != first_backup
        assert manager.stats.backups_reestablished == 1
        # New backup is reserved on its links and disjoint from the primary.
        for lid in conn.backup_links:
            assert manager.state.link(lid).has_backup(conn.conn_id)
        assert not set(conn.backup_links) & set(conn.primary_links)
        manager.check_invariants()

    def test_no_replacement_when_no_route(self, ring6, contract):
        manager = NetworkManager(ring6, reestablish_backups=True)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.fail_link((3, 4))
        # The only disjoint arc is gone; the maximally-disjoint fallback
        # would have to reuse the failed link, so no replacement exists...
        # unless a partial-overlap route over the primary is allowed.
        if conn.backup_links is not None:
            # A maximally-disjoint replacement re-uses primary links.
            assert any(lid in set(conn.primary_links) for lid in conn.backup_links)
        manager.check_invariants()

    def test_replacement_protects_against_next_failure(self, contract):
        net = theta_network()
        manager = NetworkManager(net, reestablish_backups=True)
        conn, _ = manager.request_connection(0, 3, contract)
        manager.fail_link(conn.backup_links[0])   # lose original backup
        manager.fail_link(conn.primary_links[0])  # now lose the primary
        # The re-established backup carries the connection.
        assert conn.on_backup
        assert manager.num_live == 1
