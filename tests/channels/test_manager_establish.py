"""Unit tests for DR-connection establishment."""

import pytest

from repro.channels.manager import NetworkManager
from repro.channels.records import ConnectionState, EventKind
from repro.errors import SimulationError
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.topology.regular import dumbbell_network, line_network


class TestBasicEstablishment:
    def test_primary_and_backup_routes(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, impact = manager.request_connection(0, 2, contract)
        assert conn is not None
        assert impact.kind is EventKind.ARRIVAL
        assert impact.accepted
        assert conn.primary_path == [0, 1, 2]
        assert conn.backup_path == [0, 5, 4, 3, 2]
        assert conn.backup_overlap == 0
        assert conn.state is ConnectionState.ACTIVE

    def test_redistribution_fills_lone_connection(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        # extra pool 900 per link allows the full 8 increments
        assert conn.level == 8
        assert conn.bandwidth == 500.0

    def test_reservations_on_links(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        for lid in conn.primary_links:
            ls = manager.state.link(lid)
            assert ls.primary_min[conn.conn_id] == 100.0
            assert ls.primary_extra[conn.conn_id] == 400.0
        for lid in conn.backup_links:
            assert manager.state.link(lid).has_backup(conn.conn_id)
            assert manager.state.link(lid).backup_reserved == 100.0

    def test_indexes_maintained(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        for lid in conn.primary_links:
            assert conn.conn_id in manager.channels_on_link[lid]
        for lid in conn.backup_links:
            assert conn.conn_id in manager.backups_on_link[lid]
        manager.check_invariants()

    def test_stats(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.request_connection(0, 2, contract)
        assert manager.stats.requests == 1
        assert manager.stats.accepted == 1
        assert manager.stats.acceptance_ratio == 1.0

    def test_no_backup_contract(self, ring6, contract_no_backup):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract_no_backup)
        assert conn is not None
        assert conn.backup_path is None
        assert not conn.has_backup


class TestReclamation:
    def test_new_arrival_reclaims_direct_extras(self, elastic_qos):
        contract = ConnectionQoS(
            performance=elastic_qos, dependability=DependabilityQoS(num_backups=0)
        )
        # Tight bottleneck: 500 Kb/s shared by both cross connections.
        net = dumbbell_network(3, 1000.0, bottleneck_capacity=500.0)
        manager = NetworkManager(net)
        # Leaf 1 -> leaf 5 crosses the bottleneck (0, 4).
        first, _ = manager.request_connection(1, 5, contract)
        assert first.level == 8  # bottleneck pool 400 covers all 8 increments
        second, impact = manager.request_connection(2, 6, contract)
        assert second is not None
        # The first connection was directly chained: recorded in impact.
        assert first.conn_id in impact.direct
        before, after = impact.direct[first.conn_id]
        assert before == 8
        # Bottleneck pool: 500 - 200 mins = 300 -> 6 increments split 3/3.
        assert first.level == 3
        assert second.level == 3
        assert after == 3
        manager.check_invariants()

    def test_direct_channels_at_min_still_recorded(self, dumbbell3, contract_no_backup):
        manager = NetworkManager(dumbbell3)
        ids = []
        for leaf in (1, 2, 3):
            conn, _ = manager.request_connection(leaf, leaf + 4, contract_no_backup)
            ids.append(conn.conn_id)
        # Bottleneck pool: 1000 - 300 mins = 700 -> levels ~ 4/4/4 hits 12*50=600<=700.
        _, impact = manager.request_connection(1, 6, contract_no_backup)
        for cid in ids:
            assert cid in impact.direct


class TestRejection:
    def test_no_primary_capacity(self, line5, contract_no_backup):
        small = line_network(3, 150.0)
        manager = NetworkManager(small)
        conn1, _ = manager.request_connection(0, 2, contract_no_backup)
        assert conn1 is not None
        conn2, impact = manager.request_connection(0, 2, contract_no_backup)
        assert conn2 is None
        assert not impact.accepted
        assert manager.stats.rejected_no_primary == 1

    def test_no_disjoint_backup_when_required(self, line5):
        contract = ConnectionQoS(
            performance=ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0),
            dependability=DependabilityQoS(num_backups=1, require_link_disjoint=True),
        )
        manager = NetworkManager(line5)
        conn, impact = manager.request_connection(0, 4, contract)
        assert conn is None
        assert manager.stats.rejected_no_backup == 1

    def test_partial_backup_allowed_by_default(self, line5, contract):
        manager = NetworkManager(line5)
        conn, _ = manager.request_connection(0, 4, contract)
        assert conn is not None
        assert conn.backup_overlap == 4  # the line has only one route

    def test_rejection_leaves_no_residue(self, line5, contract_no_backup):
        small = line_network(3, 150.0)
        manager = NetworkManager(small)
        manager.request_connection(0, 2, contract_no_backup)
        manager.request_connection(0, 2, contract_no_backup)  # rejected
        manager.check_invariants()
        # Only the first connection's reservations exist.
        assert len(manager.state.link((0, 1)).primary_min) == 1


class TestRoutingEngines:
    def test_flooding_engine_establishes(self, ring6, contract):
        manager = NetworkManager(ring6, routing="flooding")
        conn, _ = manager.request_connection(0, 2, contract)
        assert conn is not None
        assert conn.primary_path == [0, 1, 2]
        assert conn.backup_path is not None
        plinks = set(conn.primary_links)
        assert not plinks & set(conn.backup_links)

    def test_unknown_engine_rejected(self, ring6):
        with pytest.raises(SimulationError):
            NetworkManager(ring6, routing="magic")


class TestCapacityGuarantee:
    def test_backup_reservation_protects_minimums(self, ring6, contract):
        """Admitted connections never overcommit: fill the ring and check."""
        manager = NetworkManager(ring6)
        accepted = 0
        for _ in range(60):
            conn, _ = manager.request_connection(0, 3, contract)
            if conn is not None:
                accepted += 1
        assert 0 < accepted < 60
        manager.check_invariants()

    def test_average_live_bandwidth(self, ring6, contract):
        manager = NetworkManager(ring6)
        assert manager.average_live_bandwidth() == 0.0
        manager.request_connection(0, 2, contract)
        assert manager.average_live_bandwidth() == 500.0

    def test_level_histogram(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.request_connection(0, 2, contract)
        hist = manager.level_histogram(9)
        assert hist[8] == 1
        assert sum(hist) == 1


class TestMultiBackupRejected:
    def test_more_than_one_backup_is_an_error(self, ring6, elastic_qos):
        """The paper's scheme allocates exactly one backup; asking for
        more must fail loudly instead of silently under-providing."""
        contract = ConnectionQoS(
            performance=elastic_qos,
            dependability=DependabilityQoS(num_backups=2),
        )
        manager = NetworkManager(ring6)
        with pytest.raises(SimulationError):
            manager.request_connection(0, 2, contract)
