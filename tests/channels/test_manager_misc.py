"""Miscellaneous manager behaviours: bulk setup, corruption detection,
flooding fallbacks, multiplexing toggle."""

import pytest

from repro.channels.manager import NetworkManager
from repro.errors import ReservationError
from repro.topology.regular import line_network, ring_network


class TestBulkSetupMode:
    def test_auto_redistribute_off_defers_extras(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.auto_redistribute = False
        conn, _ = manager.request_connection(0, 2, contract)
        assert conn.level == 0  # no water-fill yet
        granted = manager.redistribute_all()
        assert granted == {conn.conn_id: 8}
        assert conn.level == 8
        manager.check_invariants()

    def test_redistribute_all_skips_failed_over(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.fail_link((0, 1))
        assert conn.on_backup
        granted = manager.redistribute_all()
        assert conn.conn_id not in granted
        assert conn.bandwidth == 100.0

    def test_redistribute_all_idempotent(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.request_connection(0, 2, contract)
        assert manager.redistribute_all() == {}  # already maximal


class TestCorruptionDetection:
    def test_index_corruption_detected(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        # Corrupt the per-link index: claim a channel on a link it isn't.
        manager.channels_on_link[(3, 4)].add(conn.conn_id)
        with pytest.raises(ReservationError):
            manager.check_invariants()

    def test_level_mismatch_detected(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        conn.level = 2  # lie about the level
        with pytest.raises(ReservationError):
            manager.check_invariants()


class TestFloodingFallbacks:
    def test_flooding_uses_centralized_backup_fallback(self, contract):
        """On a line there is no disjoint copy for flooding to confirm;
        the manager falls back to the centralized (maximally-disjoint)
        search, accepting an overlapping backup."""
        net = line_network(4, 1000.0)
        manager = NetworkManager(net, routing="flooding")
        conn, _ = manager.request_connection(0, 3, contract)
        assert conn is not None
        assert conn.backup_path is not None
        assert conn.backup_overlap == 3

    def test_flooding_rejects_when_no_bandwidth(self, contract):
        # 250 fits one primary (100) + its overlapping backup (100).
        net = line_network(3, 250.0)
        manager = NetworkManager(net, routing="flooding")
        first, _ = manager.request_connection(0, 2, contract)
        assert first is not None
        second, impact = manager.request_connection(0, 2, contract)
        assert second is None
        assert not impact.accepted

    def test_flooding_hop_bound_respected(self, contract_no_backup):
        net = line_network(8, 1000.0)
        manager = NetworkManager(net, routing="flooding", flood_hop_bound=3)
        conn, _ = manager.request_connection(0, 7, contract_no_backup)
        assert conn is None  # destination beyond the flooding bound
        assert manager.stats.rejected_no_primary == 1


class TestMultiplexingToggle:
    def test_naive_mode_reserves_more(self, contract):
        net = ring_network(8, 1000.0)
        pairs = [(0, 1), (2, 3), (4, 5)]
        mux = NetworkManager(net, multiplex_backups=True)
        naive = NetworkManager(net, multiplex_backups=False)
        for manager in (mux, naive):
            for src, dst in pairs:
                conn, _ = manager.request_connection(src, dst, contract)
                assert conn is not None
        mux_total = sum(ls.backup_reserved for ls in mux.state.links())
        naive_total = sum(ls.backup_reserved for ls in naive.state.links())
        assert naive_total > mux_total
        naive.check_invariants()

    def test_naive_mode_still_recovers_from_failure(self, contract):
        net = ring_network(8, 1000.0)
        manager = NetworkManager(net, multiplex_backups=False)
        conn, _ = manager.request_connection(0, 2, contract)
        impact = manager.fail_link((0, 1))
        assert impact.activated == [conn.conn_id]
        manager.state.check_invariants(strict_reservation=False)
