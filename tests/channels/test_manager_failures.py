"""Unit tests for link failures, backup activation and recovery."""


from repro.channels.manager import NetworkManager
from repro.channels.records import ConnectionState, EventKind
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.topology.regular import ring_network


class TestFailover:
    def test_backup_activates(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        impact = manager.fail_link((0, 1))
        assert impact.kind is EventKind.FAILURE
        assert impact.failed_link == (0, 1)
        assert impact.activated == [conn.conn_id]
        assert conn.state is ConnectionState.FAILED_OVER
        assert conn.on_backup
        assert conn.bandwidth == 100.0  # backups run at the minimum
        assert manager.stats.backups_activated == 1
        # Live bandwidth flows on the backup path now.
        for lid in conn.backup_links:
            assert manager.state.link(lid).activated[conn.conn_id] == 100.0

    def test_old_primary_reservations_released(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        primary_links = list(conn.primary_links)
        manager.fail_link((0, 1))
        for lid in primary_links:
            assert not manager.state.link(lid).has_primary(conn.conn_id)
            assert conn.conn_id not in manager.channels_on_link[lid]

    def test_unaffected_connection_keeps_running(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn_a, _ = manager.request_connection(0, 2, contract)
        conn_b, _ = manager.request_connection(3, 5, contract)
        manager.fail_link((0, 1))
        assert conn_b.state in (ConnectionState.ACTIVE,)
        assert manager.num_live == 2

    def test_extras_retreat_on_backup_path(self, ring6, contract_no_backup, contract):
        """Primaries sharing links with an activated backup drop extras."""
        manager = NetworkManager(ring6)
        protected, _ = manager.request_connection(0, 2, contract)
        bystander, _ = manager.request_connection(3, 5, contract_no_backup)
        assert bystander.level > 0
        level_before = bystander.level
        impact = manager.fail_link((0, 1))
        # The bystander's path [3,4,5] lies on the backup route [0,5,4,3,2].
        assert bystander.conn_id in impact.direct
        before, after = impact.direct[bystander.conn_id]
        assert before == level_before
        # After retreat + redistribution it may rise again, but the
        # activated backup's 100 Kb/s must now fit underneath.
        for lid in manager.topology.path_links([3, 4, 5]):
            manager.state.link(lid).check_invariants(strict_reservation=False)

    def test_failure_of_idle_link(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        # (3,4) carries the backup only; failing it loses the backup.
        impact = manager.fail_link((3, 4))
        assert impact.lost_backup == [conn.conn_id]
        assert conn.backup_path is None
        assert not conn.has_backup
        assert conn.state is ConnectionState.ACTIVE
        assert manager.stats.backups_lost == 1

    def test_drop_without_backup(self, ring6, contract_no_backup):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract_no_backup)
        impact = manager.fail_link((0, 1))
        assert impact.dropped == [conn.conn_id]
        assert conn.state is ConnectionState.DROPPED
        assert manager.num_live == 0
        assert manager.stats.connections_dropped == 1
        for ls in manager.state.links():
            assert ls.used == 0.0

    def test_second_failure_drops_failed_over(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.fail_link((0, 1))       # fail over to [0,5,4,3,2]
        impact = manager.fail_link((4, 5))  # kill the live backup
        assert impact.dropped == [conn.conn_id]
        assert conn.state is ConnectionState.DROPPED
        assert manager.num_live == 0

    def test_backup_through_failed_link_unusable(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.fail_link((3, 4))  # backup lost first
        impact = manager.fail_link((0, 1))  # primary fails, no backup left
        assert impact.dropped == [conn.conn_id]
        assert conn.state is ConnectionState.DROPPED


class TestMultiplexedActivationConflicts:
    def test_sequential_failures_may_drop_second_victim(self):
        """Two backups multiplexed onto one tight link: only the first
        failure's victim can activate."""
        net = ring_network(6, 200.0)
        contract = ConnectionQoS(
            performance=ElasticQoS(b_min=100.0, b_max=100.0, increment=100.0),
            dependability=DependabilityQoS(num_backups=1),
        )
        manager = NetworkManager(net)
        # Conn A: 0->1 primary [0,1], backup [0,5,4,3,2,1].
        a, _ = manager.request_connection(0, 1, contract)
        # Conn B: 1->2 primary [1,2], backup [1,0,5,4,3,2].
        b, _ = manager.request_connection(1, 2, contract)
        assert a is not None and b is not None
        # Their backups share links and are multiplexed (disjoint primaries).
        manager.fail_link((0, 1))
        assert a.state is ConnectionState.FAILED_OVER
        # With A's activation consuming the multiplexed reservation and
        # capacity 200 = A's 100 + B's primary min 100 on the shared arc,
        # a second failure cannot activate B everywhere.
        impact = manager.fail_link((1, 2))
        assert b.conn_id in impact.dropped or b.state is ConnectionState.FAILED_OVER
        manager.state.check_invariants(strict_reservation=False)


class TestRepair:
    def test_repair_restores_admission(self, ring6, contract):
        manager = NetworkManager(ring6)
        manager.fail_link((0, 1))
        conn, _ = manager.request_connection(0, 2, contract)
        # Primary must avoid the failed link.
        assert (0, 1) not in conn.primary_links
        impact = manager.repair_link((0, 1))
        assert impact.kind is EventKind.REPAIR
        assert manager.stats.link_repairs == 1
        conn2, _ = manager.request_connection(0, 1, contract)
        assert conn2 is not None
        assert conn2.primary_path == [0, 1]

    def test_no_failback(self, ring6, contract):
        manager = NetworkManager(ring6)
        conn, _ = manager.request_connection(0, 2, contract)
        manager.fail_link((0, 1))
        manager.repair_link((0, 1))
        # The connection stays on its backup (the paper models no revert).
        assert conn.state is ConnectionState.FAILED_OVER
