"""Unit tests for adaptation policies."""

import pytest

from repro.elastic.policies import (
    EqualShare,
    MaxUtility,
    UtilityProportional,
    policy_by_name,
)
from repro.qos.spec import ElasticQoS


def qos(utility=1.0):
    return ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0, utility=utility)


class TestEqualShare:
    def test_lowest_level_first(self):
        policy = EqualShare()
        assert policy.priority(1, 0, qos()) < policy.priority(2, 3, qos())

    def test_tie_break_by_id(self):
        policy = EqualShare()
        assert policy.priority(1, 2, qos()) < policy.priority(2, 2, qos())

    def test_utility_ignored(self):
        policy = EqualShare()
        assert policy.priority(1, 2, qos(utility=9.0)) < policy.priority(2, 2, qos())


class TestUtilityProportional:
    def test_higher_utility_served_first_at_equal_level(self):
        policy = UtilityProportional()
        high = policy.priority(1, 2, qos(utility=4.0))
        low = policy.priority(2, 2, qos(utility=1.0))
        assert high < low

    def test_served_per_utility_balances(self):
        policy = UtilityProportional()
        # Channel with utility 2 at level 4 has the same "served per
        # utility" as utility 1 at level 2 -> utility breaks the tie.
        a = policy.priority(1, 4, qos(utility=2.0))
        b = policy.priority(2, 2, qos(utility=1.0))
        assert a < b

    def test_zero_utility_never_prioritised(self):
        policy = UtilityProportional()
        zero = policy.priority(1, 0, qos(utility=0.0))
        normal = policy.priority(2, 8, qos(utility=0.1))
        assert normal < zero


class TestMaxUtility:
    def test_monopolises_regardless_of_level(self):
        policy = MaxUtility()
        rich = policy.priority(1, 8, qos(utility=5.0))
        poor = policy.priority(2, 0, qos(utility=1.0))
        assert rich < poor


class TestPolicyByName:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("equal-share", EqualShare),
            ("utility-proportional", UtilityProportional),
            ("max-utility", MaxUtility),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(policy_by_name(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            policy_by_name("nope")
