"""Unit tests for the water-filling redistribution engine."""

from dataclasses import dataclass
from typing import List


from repro.elastic.policies import EqualShare, MaxUtility, UtilityProportional
from repro.elastic.redistribute import (
    candidate_ids,
    drop_to_minimum,
    is_maximal,
    redistribute,
)
from repro.network.state import NetworkState
from repro.qos.spec import ElasticQoS
from repro.topology.graph import LinkId
from repro.topology.regular import line_network


@dataclass
class FakeChannel:
    """Minimal ElasticParticipant for engine tests."""

    conn_id: int
    primary_links: List[LinkId]
    qos: ElasticQoS
    level: int = 0

    @property
    def elastic_qos(self) -> ElasticQoS:
        return self.qos


def qos(utility=1.0):
    return ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0, utility=utility)


def setup_state(capacity=1000.0, n=5):
    return NetworkState(line_network(n, capacity))


def add_channel(state, channels, cid, links, utility=1.0):
    chan = FakeChannel(conn_id=cid, primary_links=list(links), qos=qos(utility))
    state.reserve_primary_path(cid, chan.primary_links, chan.qos.b_min)
    channels[cid] = chan
    return chan


class TestRedistributeBasics:
    def test_single_channel_fills_to_max(self):
        state = setup_state()
        channels = {}
        add_channel(state, channels, 1, [(0, 1), (1, 2)])
        granted = redistribute(state, channels, {1}, EqualShare())
        assert granted == {1: 8}
        assert channels[1].level == 8
        assert state.link((0, 1)).primary_extra[1] == 400.0

    def test_bottleneck_limits_level(self):
        state = NetworkState(line_network(3, 1000.0))
        channels = {}
        add_channel(state, channels, 1, [(0, 1), (1, 2)])
        # Saturate (1,2) with another channel's minimum reservations.
        state.reserve_primary_path(9, [(1, 2)], 750.0)
        granted = redistribute(state, channels, {1}, EqualShare())
        # spare on (1,2) is 1000-100-750 = 150 -> 3 increments of 50
        assert granted == {1: 3}
        assert channels[1].level == 3

    def test_empty_candidates_no_op(self):
        state = setup_state()
        channels = {}
        assert redistribute(state, channels, set(), EqualShare()) == {}

    def test_result_is_maximal(self):
        state = setup_state()
        channels = {}
        add_channel(state, channels, 1, [(0, 1), (1, 2)])
        add_channel(state, channels, 2, [(1, 2), (2, 3)])
        redistribute(state, channels, {1, 2}, EqualShare())
        assert is_maximal(state, channels, channels.keys())

    def test_channel_at_max_untouched(self):
        state = setup_state()
        channels = {}
        chan = add_channel(state, channels, 1, [(0, 1)])
        redistribute(state, channels, {1}, EqualShare())
        assert chan.level == 8
        granted = redistribute(state, channels, {1}, EqualShare())
        assert granted == {}


class TestFairness:
    def test_equal_share_splits_evenly(self):
        """Two channels share one 500-capacity bottleneck fairly."""
        state = NetworkState(line_network(2, 500.0))
        channels = {}
        add_channel(state, channels, 1, [(0, 1)])
        add_channel(state, channels, 2, [(0, 1)])
        redistribute(state, channels, {1, 2}, EqualShare())
        # pool: 500 - 200 = 300 -> 6 increments, 3 each
        assert channels[1].level == 3
        assert channels[2].level == 3

    def test_max_utility_monopolises(self):
        state = NetworkState(line_network(2, 500.0))
        channels = {}
        add_channel(state, channels, 1, [(0, 1)], utility=1.0)
        add_channel(state, channels, 2, [(0, 1)], utility=5.0)
        redistribute(state, channels, {1, 2}, MaxUtility())
        # 6 increments available; the utility-5 channel takes 6 but its
        # range caps at 8: it gets 6, the other 0.
        assert channels[2].level == 6
        assert channels[1].level == 0

    def test_utility_proportional_splits_by_coefficient(self):
        state = NetworkState(line_network(2, 500.0))
        channels = {}
        add_channel(state, channels, 1, [(0, 1)], utility=1.0)
        add_channel(state, channels, 2, [(0, 1)], utility=2.0)
        redistribute(state, channels, {1, 2}, UtilityProportional())
        # 6 increments in ratio 1:2 -> 2 and 4
        assert channels[1].level == 2
        assert channels[2].level == 4


class TestDropToMinimum:
    def test_returns_previous_level_and_links(self):
        state = setup_state()
        channels = {}
        chan = add_channel(state, channels, 1, [(0, 1), (1, 2)])
        redistribute(state, channels, {1}, EqualShare())
        prev, affected = drop_to_minimum(state, chan)
        assert prev == 8
        assert set(affected) == {(0, 1), (1, 2)}
        assert chan.level == 0
        assert state.link((0, 1)).primary_extra[1] == 0.0

    def test_no_op_at_minimum(self):
        state = setup_state()
        channels = {}
        chan = add_channel(state, channels, 1, [(0, 1)])
        prev, affected = drop_to_minimum(state, chan)
        assert prev == 0
        assert affected == []


class TestCandidateIds:
    def test_union_over_links(self):
        on_link = {(0, 1): {1, 2}, (1, 2): {2, 3}}
        assert candidate_ids(on_link, [(0, 1), (1, 2)]) == {1, 2, 3}
        assert candidate_ids(on_link, [(5, 6)]) == set()


class TestLocality:
    def test_far_channel_not_needed(self):
        """A channel whose links saw no spare change cannot rise, so
        redistribution restricted to the affected region is lossless."""
        state = setup_state(capacity=1000.0, n=5)
        channels = {}
        add_channel(state, channels, 1, [(0, 1)])
        add_channel(state, channels, 2, [(3, 4)])
        # Fill both to maximality.
        redistribute(state, channels, channels.keys(), EqualShare())
        assert is_maximal(state, channels, channels.keys())
        # Free capacity only on (0,1) by dropping channel 1.
        drop_to_minimum(state, channels[1])
        redistribute(state, channels, {1}, EqualShare())
        # Global maximality holds even though channel 2 was not a candidate.
        assert is_maximal(state, channels, channels.keys())


class TestScalarCacheKeying:
    """Regression: the redistribute scalar cache keys on the QoS contract
    *value* (frozen dataclass), not ``id(...)`` (repro.lint DET002).

    An ``id()`` key is allocation-dependent: equal contracts born as
    distinct objects miss the cache, and a collected contract's address
    can be reused by a different one.  These tests prove the value key
    changes nothing observable: grants, levels and per-link extras are
    identical whether contracts are aliased, duplicated, or mixed."""

    def _run(self, make_qos):
        state = NetworkState(line_network(4, 700.0))
        channels = {}
        routes = [[(0, 1), (1, 2)], [(1, 2), (2, 3)], [(0, 1)]]
        for cid, links in enumerate(routes):
            chan = FakeChannel(conn_id=cid, primary_links=list(links),
                               qos=make_qos(cid))
            state.reserve_primary_path(cid, chan.primary_links, chan.qos.b_min)
            channels[cid] = chan
        granted = redistribute(state, channels, sorted(channels), EqualShare())
        return state, channels, granted

    def _snapshot(self, state, channels, granted):
        levels = {cid: chan.level for cid, chan in channels.items()}
        extras = {
            lid: dict(state.link(lid).primary_extra)
            for lid in state.topology.link_ids()
        }
        return granted, levels, extras

    def test_distinct_equal_contracts_match_shared_contract(self):
        shared = qos()
        aliased = self._snapshot(*self._run(lambda cid: shared))
        # Equal value, a brand-new contract object per channel: under an
        # ``id()`` key every one of these missed the cache.
        distinct = self._snapshot(*self._run(lambda cid: qos()))
        assert aliased == distinct

    def test_mixed_contracts_never_alias(self):
        """Channels with *different* contracts each use their own scalars
        even when the contract objects are allocated back-to-back (the
        aliasing an ``id()`` key risks once an object is collected)."""
        contracts = {
            0: ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0),
            1: ElasticQoS(b_min=100.0, b_max=300.0, increment=100.0),
            2: ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0),
        }
        state, channels, granted = self._run(lambda cid: contracts[cid])
        _, levels, _ = self._snapshot(state, channels, granted)
        # Channel 1's coarser contract caps it at (300-100)/100 = 2 levels.
        assert levels[1] <= 2
        assert is_maximal(state, channels, channels.keys())

    def test_grants_bitwise_pinned(self):
        """Exact output pinned so a future cache change that alters
        redistribution shows up as a diff, not a silent drift."""
        granted, levels, extras = self._snapshot(*self._run(lambda cid: qos()))
        assert granted == {0: 5, 1: 5, 2: 5}
        assert levels == {0: 5, 1: 5, 2: 5}
        assert extras == {
            (0, 1): {0: 250.0, 2: 250.0},
            (1, 2): {0: 250.0, 1: 250.0},
            (2, 3): {1: 250.0},
        }


class GenericEqualShare(EqualShare):
    """Same priority rule but a different type: forces the generic
    heap-driven fill instead of the equal-share wave fast path."""

    name = "equal-share-generic"


class TestEqualShareFastPath:
    """The heap-free wave fill must match the generic heap loop exactly."""

    def _contended_setup(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        # Tight capacity so saturation interleaves channels mid-fill.
        state = setup_state(capacity=float(rng.integers(300, 900)), n=6)
        channels = {}
        for cid in range(int(rng.integers(2, 7))):
            lo = int(rng.integers(0, 4))
            hi = int(rng.integers(lo + 1, 6))
            links = [(i, i + 1) for i in range(lo, hi)]
            try:
                add_channel(state, channels, cid, links)
            except Exception:
                continue  # admission full: a smaller population still contends
        # Stagger starting levels so waves begin from a mixed state.
        for cid, chan in channels.items():
            start = int(rng.integers(0, 3))
            for _ in range(start):
                ok = all(
                    state.link(lid).spare_for_extras >= chan.qos.increment
                    for lid in chan.primary_links
                )
                if not ok:
                    break
                for lid in chan.primary_links:
                    state.link(lid).grant_extra(cid, chan.qos.increment)
                chan.level += 1
        return state, channels

    def _snapshot(self, state, channels):
        levels = {cid: chan.level for cid, chan in channels.items()}
        extras = {
            lid: dict(state.link(lid).primary_extra) for lid in state.topology.link_ids()
        }
        return levels, extras

    def test_wave_matches_generic_heap(self):
        for seed in range(40):
            state_a, chans_a = self._contended_setup(seed)
            state_b, chans_b = self._contended_setup(seed)
            assert self._snapshot(state_a, chans_a) == self._snapshot(state_b, chans_b)
            granted_a = redistribute(state_a, chans_a, set(chans_a), EqualShare())
            granted_b = redistribute(state_b, chans_b, set(chans_b), GenericEqualShare())
            assert granted_a == granted_b
            assert self._snapshot(state_a, chans_a) == self._snapshot(state_b, chans_b)
            assert is_maximal(state_a, chans_a, chans_a.keys())
