"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _int_list, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_list(self):
        assert _int_list("1,2,3") == [1, 2, 3]
        assert _int_list("500") == [500]
        with pytest.raises(Exception):
            _int_list("a,b")

    @pytest.mark.parametrize(
        "command",
        ["figure2", "table1", "figure3", "figure4", "validate", "topology"],
    )
    def test_all_commands_parse(self, command):
        args = build_parser().parse_args([command, "--seed", "3"])
        assert args.seed == 3
        assert callable(args.func)


class TestTopologyCommand:
    def test_waxman(self, capsys):
        code = main(["topology", "--kind", "waxman", "--nodes", "30", "--edges", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "waxman network: 30 nodes" in out
        assert "connected:      True" in out

    def test_transit_stub(self, capsys):
        code = main(["topology", "--kind", "transit-stub"])
        out = capsys.readouterr().out
        assert code == 0
        assert "transit-stub network: 104 nodes" in out


class TestExperimentCommands:
    """Tiny-scale smoke runs of each experiment command."""

    def test_figure2(self, capsys):
        code = main(
            ["figure2", "--nodes", "25", "--edges", "50",
             "--connections", "30,60", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 2" in out
        assert out.count("\n") >= 4  # title + header + rule + 2 rows

    def test_validate(self, capsys):
        code = main(["validate", "--nodes", "25", "--edges", "50", "--load", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TV distance" in out

    def test_figure4(self, capsys):
        code = main(
            ["figure4", "--nodes", "25", "--edges", "50", "--populations", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out
        assert "Avg30ft" in out

    def test_chaining(self, capsys):
        code = main(
            ["chaining", "--nodes", "25", "--edges", "50",
             "--load", "60", "--samples", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "population pairwise" in out
        assert "random-arrival view" in out

    def test_figure3_chart(self, capsys):
        code = main(
            ["figure3", "--node-counts", "20,30", "--connections-fixed", "30",
             "--chart"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "legend:" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(
            ["report", "--nodes", "22", "--edges", "44", "--output", str(out_file)]
        )
        assert code == 0
        text = out_file.read_text()
        assert "# Reproduction report" in text
        assert "Figure 2" in text and "Table 1" in text
        assert "Figure 3" in text and "Figure 4" in text


class TestBenchCommand:
    """Smoke runs of the micro-benchmark command (tiny event counts)."""

    def test_bench_timing(self, capsys):
        code = main(
            ["bench", "--benchmark", "request", "--events", "20",
             "--population", "40", "--core", "array"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "request" in out and "us/event" in out

    def test_bench_profile_writes_dump(self, tmp_path, capsys):
        code = main(
            ["bench", "--benchmark", "failrep", "--events", "20",
             "--population", "40", "--profile", "--top", "5",
             "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        dump = tmp_path / "bench_failrep_array.prof.txt"
        assert dump.exists()
        text = dump.read_text()
        assert "cumulative" in text
        assert "repro bench --profile: failrep / array core" in text
        assert str(dump) in out
