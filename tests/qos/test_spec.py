"""Unit tests for QoS specifications."""

import pytest

from repro.errors import QoSSpecError
from repro.qos.spec import (
    DependabilityQoS,
    ElasticQoS,
    TrafficSpec,
    levels_between,
    single_value_qos,
)


class TestTrafficSpec:
    def test_valid(self):
        spec = TrafficSpec(peak_rate=500.0, average_rate=100.0, max_burst=50.0)
        assert spec.peak_rate == 500.0

    def test_average_cannot_exceed_peak(self):
        with pytest.raises(QoSSpecError):
            TrafficSpec(peak_rate=100.0, average_rate=200.0)

    def test_positive_rates(self):
        with pytest.raises(QoSSpecError):
            TrafficSpec(peak_rate=0.0, average_rate=0.0)

    def test_negative_burst(self):
        with pytest.raises(QoSSpecError):
            TrafficSpec(peak_rate=10.0, average_rate=5.0, max_burst=-1.0)

    def test_equivalent_bandwidth_fluid(self):
        spec = TrafficSpec(peak_rate=500.0, average_rate=100.0, max_burst=50.0)
        assert spec.equivalent_bandwidth() == 100.0

    def test_equivalent_bandwidth_with_deadline(self):
        spec = TrafficSpec(peak_rate=500.0, average_rate=100.0, max_burst=50.0)
        # burst must drain in 0.25s: needs 200 Kb/s
        assert spec.equivalent_bandwidth(delay_budget=0.25) == 200.0

    def test_equivalent_bandwidth_capped_at_peak(self):
        spec = TrafficSpec(peak_rate=150.0, average_rate=100.0, max_burst=50.0)
        assert spec.equivalent_bandwidth(delay_budget=0.01) == 150.0

    def test_delay_budget_positive(self):
        spec = TrafficSpec(peak_rate=150.0, average_rate=100.0)
        with pytest.raises(QoSSpecError):
            spec.equivalent_bandwidth(delay_budget=0.0)


class TestElasticQoS:
    def test_paper_range_has_nine_levels(self, elastic_qos):
        assert elastic_qos.num_levels == 9
        assert elastic_qos.max_level == 8

    def test_large_increment_has_five_levels(self):
        qos = ElasticQoS(b_min=100.0, b_max=500.0, increment=100.0)
        assert qos.num_levels == 5

    def test_level_bandwidth(self, elastic_qos):
        assert elastic_qos.level_bandwidth(0) == 100.0
        assert elastic_qos.level_bandwidth(8) == 500.0
        assert elastic_qos.level_bandwidth(3) == 250.0

    def test_level_bandwidth_out_of_range(self, elastic_qos):
        with pytest.raises(QoSSpecError):
            elastic_qos.level_bandwidth(9)
        with pytest.raises(QoSSpecError):
            elastic_qos.level_bandwidth(-1)

    def test_level_of_roundtrip(self, elastic_qos):
        for level in range(elastic_qos.num_levels):
            assert elastic_qos.level_of(elastic_qos.level_bandwidth(level)) == level

    def test_level_of_off_grid(self, elastic_qos):
        with pytest.raises(QoSSpecError):
            elastic_qos.level_of(130.0)

    def test_clamp_level(self, elastic_qos):
        assert elastic_qos.clamp_level(-3) == 0
        assert elastic_qos.clamp_level(99) == 8
        assert elastic_qos.clamp_level(4) == 4

    def test_range_must_be_multiple_of_increment(self):
        with pytest.raises(QoSSpecError):
            ElasticQoS(b_min=100.0, b_max=500.0, increment=150.0)

    def test_min_must_be_positive(self):
        with pytest.raises(QoSSpecError):
            ElasticQoS(b_min=0.0, b_max=100.0, increment=50.0)

    def test_max_below_min_rejected(self):
        with pytest.raises(QoSSpecError):
            ElasticQoS(b_min=200.0, b_max=100.0, increment=50.0)

    def test_negative_utility_rejected(self):
        with pytest.raises(QoSSpecError):
            ElasticQoS(b_min=100.0, b_max=200.0, increment=50.0, utility=-1.0)

    def test_is_elastic(self, elastic_qos):
        assert elastic_qos.is_elastic()
        assert not single_value_qos(100.0).is_elastic()


class TestSingleValueQoS:
    def test_degenerate_range(self):
        qos = single_value_qos(250.0)
        assert qos.num_levels == 1
        assert qos.level_bandwidth(0) == 250.0

    def test_utility_carried(self):
        assert single_value_qos(100.0, utility=3.0).utility == 3.0


class TestDependabilityQoS:
    def test_default_one_backup(self):
        dep = DependabilityQoS()
        assert dep.num_backups == 1
        assert dep.wants_backup

    def test_zero_backups(self):
        assert not DependabilityQoS(num_backups=0).wants_backup

    def test_negative_rejected(self):
        with pytest.raises(QoSSpecError):
            DependabilityQoS(num_backups=-1)


class TestConnectionQoS:
    def test_describe_mentions_shape(self, contract):
        text = contract.describe()
        assert "100" in text and "500" in text and "backup" in text

    def test_describe_no_backup(self, contract_no_backup):
        assert "no backup" in contract_no_backup.describe()


class TestLevelsBetween:
    def test_full_window(self, elastic_qos):
        assert levels_between(elastic_qos, 0.0, 1000.0) == list(range(9))

    def test_inner_window(self, elastic_qos):
        assert levels_between(elastic_qos, 200.0, 300.0) == [2, 3, 4]

    def test_empty_window(self, elastic_qos):
        assert levels_between(elastic_qos, 210.0, 240.0) == []

    def test_inverted_window_rejected(self, elastic_qos):
        with pytest.raises(QoSSpecError):
            levels_between(elastic_qos, 300.0, 200.0)
