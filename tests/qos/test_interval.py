"""Unit tests for interval (k-out-of-M) QoS regulation."""

import pytest

from repro.errors import QoSSpecError
from repro.qos.interval import IntervalQoS, IntervalRegulator, SkipOverRegulator


class TestIntervalQoS:
    def test_valid(self):
        qos = IntervalQoS(k=3, m=5)
        assert qos.min_forward_ratio == pytest.approx(0.6)

    def test_invalid(self):
        with pytest.raises(QoSSpecError):
            IntervalQoS(k=6, m=5)
        with pytest.raises(QoSSpecError):
            IntervalQoS(k=-1, m=5)
        with pytest.raises(QoSSpecError):
            IntervalQoS(k=0, m=0)

    def test_zero_k_allows_everything(self):
        reg = IntervalRegulator(IntervalQoS(k=0, m=4))
        results = [reg.offer(drop_requested=True) for _ in range(8)]
        assert results == [False] * 8


class TestIntervalRegulator:
    def test_forwards_without_drop_requests(self):
        reg = IntervalRegulator(IntervalQoS(k=3, m=5))
        assert all(reg.offer() for _ in range(10))
        assert reg.stats.forwarded == 10
        assert reg.stats.dropped == 0

    def test_grants_drops_up_to_budget(self):
        reg = IntervalRegulator(IntervalQoS(k=3, m=5))
        # All five packets ask to be dropped: only 2 may be.
        outcomes = [reg.offer(drop_requested=True) for _ in range(5)]
        assert outcomes.count(False) == 2
        assert outcomes.count(True) == 3
        reg.verify_guarantee()

    def test_forces_forwarding_at_the_floor(self):
        reg = IntervalRegulator(IntervalQoS(k=5, m=5))
        outcomes = [reg.offer(drop_requested=True) for _ in range(5)]
        assert outcomes == [True] * 5
        assert reg.stats.forced_forwards == 5

    def test_windows_are_independent(self):
        reg = IntervalRegulator(IntervalQoS(k=1, m=2))
        for _ in range(3):
            first = reg.offer(drop_requested=True)
            second = reg.offer(drop_requested=True)
            assert first is False and second is True
        assert reg.stats.windows_completed == 3
        assert reg.stats.window_history == [1, 1, 1]

    def test_guarantee_holds_over_random_pressure(self):
        import random

        rng = random.Random(5)
        qos = IntervalQoS(k=4, m=7)
        reg = IntervalRegulator(qos)
        for _ in range(7 * 200):
            reg.offer(drop_requested=rng.random() < 0.8)
        reg.verify_guarantee()
        assert reg.stats.windows_completed == 200
        assert all(count >= qos.k for count in reg.stats.window_history)

    def test_drop_budget_decreases(self):
        reg = IntervalRegulator(IntervalQoS(k=3, m=5))
        assert reg.drop_budget() == 2
        reg.offer(drop_requested=True)   # dropped
        assert reg.drop_budget() == 1
        reg.offer(drop_requested=True)   # dropped
        assert reg.drop_budget() == 0
        assert reg.must_forward()

    def test_drop_ratio(self):
        reg = IntervalRegulator(IntervalQoS(k=1, m=2))
        reg.offer(drop_requested=True)
        reg.offer()
        assert reg.stats.drop_ratio == pytest.approx(0.5)

    def test_corrupted_history_detected(self):
        reg = IntervalRegulator(IntervalQoS(k=2, m=3))
        reg.stats.window_history.append(1)  # below k
        with pytest.raises(QoSSpecError):
            reg.verify_guarantee()


class TestSkipOverRegulator:
    def test_skip_factor_validated(self):
        with pytest.raises(QoSSpecError):
            SkipOverRegulator(1)

    def test_one_skip_per_s_packets(self):
        reg = SkipOverRegulator(3)
        outcomes = [reg.offer(drop_requested=True) for _ in range(9)]
        # pattern: forward, forward, skip, repeated
        assert outcomes == [True, True, False] * 3

    def test_no_skip_without_request(self):
        reg = SkipOverRegulator(2)
        assert all(reg.offer() for _ in range(6))
        # A long run of forwards leaves the skip available.
        assert reg.can_skip()

    def test_equivalent_interval_qos(self):
        qos = SkipOverRegulator(4).equivalent_interval_qos()
        assert (qos.k, qos.m) == (3, 4)

    def test_forward_ratio_bounded_below(self):
        import random

        rng = random.Random(1)
        reg = SkipOverRegulator(5)
        for _ in range(1000):
            reg.offer(drop_requested=rng.random() < 0.9)
        ratio = reg.stats.forwarded / reg.stats.offered
        assert ratio >= 4 / 5 - 1e-9
