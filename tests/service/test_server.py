"""In-process asyncio server: framing, backpressure, deadlines, drain."""

import asyncio

import pytest

from repro.parallel.jobs import TopologySpec
from repro.service.engine import EngineConfig
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.protocol import decode_line, encode_line
from repro.service.replay import replay_log
from repro.service.server import AdmissionService, ServiceConfig
from repro.service.shedding import BackpressureConfig

GRID = TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=4, cols=4)

QOS = {"b_min": 100.0, "b_max": 300.0, "increment": 100.0, "utility": 1.0,
       "backups": 1}


def _config(**kwargs):
    return ServiceConfig(topology=GRID, **kwargs)


async def _rpc(port, obj):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_line(obj))
        await writer.drain()
        return decode_line(await reader.readline())
    finally:
        writer.close()


def _run(coro):
    return asyncio.run(coro)


class TestBasicServing:
    def test_establish_query_teardown(self):
        async def scenario():
            service = AdmissionService(_config())
            await service.start()
            port = service.port
            resp = await _rpc(port, {
                "op": "establish", "id": 1, "src": 0, "dst": 15, "qos": QOS,
            })
            assert resp["ok"] and resp["result"]["accepted"]
            cid = resp["result"]["conn_id"]
            conn = await _rpc(port, {
                "op": "query", "id": 2, "what": "connection", "conn_id": cid,
            })
            assert conn["ok"] and conn["result"]["bandwidth"] >= 100.0
            down = await _rpc(port, {"op": "teardown", "id": 3, "conn_id": cid})
            assert down["ok"]
            health = await _rpc(port, {"op": "query", "id": 4, "what": "health"})
            assert health["ok"] and health["result"]["seq"] == 2
            service.initiate_drain()
            await service.drained()

        _run(scenario())

    def test_bad_frames_answered_not_fatal(self):
        async def scenario():
            service = AdmissionService(_config())
            await service.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            writer.write(b"{not json\n")
            await writer.drain()
            resp = decode_line(await reader.readline())
            assert resp["error"] == "bad-request"
            # Same connection still serves valid frames.
            writer.write(encode_line({"op": "query", "id": 1, "what": "health"}))
            await writer.drain()
            assert decode_line(await reader.readline())["ok"]
            writer.close()
            service.initiate_drain()
            await service.drained()

        _run(scenario())

    def test_stats_include_service_plane(self):
        async def scenario():
            service = AdmissionService(_config())
            await service.start()
            stats = await _rpc(service.port, {"op": "query", "id": 1, "what": "stats"})
            assert stats["ok"]
            svc = stats["result"]["service"]
            assert set(svc) >= {"queue_depth", "shed", "expired", "draining",
                                "recovered", "latency"}
            service.initiate_drain()
            await service.drained()

        _run(scenario())


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self):
        async def scenario():
            service = AdmissionService(_config(
                backpressure=BackpressureConfig(queue_limit=1, shed_watermark=1.0),
            ))
            await service.start()
            # Pause the batcher so the queue stays visibly full, then
            # stuff the single slot; the next arrival must be shed.
            service._batcher.cancel()
            await asyncio.sleep(0)
            from repro.service.protocol import Request
            from repro.service.server import _Pending
            loop = asyncio.get_running_loop()
            service._queue.put_nowait(_Pending(
                Request(op="teardown", req_id=99, conn_id=0),
                None, loop.time(), loop.create_future(),
            ))
            resp = await _rpc(service.port, {
                "op": "establish", "id": 1, "src": 0, "dst": 1, "qos": QOS,
            })
            assert resp["error"] == "shed"
            assert resp["retry_after"] > 0
            assert service.shed_count == 1
            # Resume the batcher so the drain completes normally.
            service._batcher = asyncio.create_task(service._batch_loop())
            service.initiate_drain()
            await service.drained()

        _run(scenario())


class TestDeadlines:
    def test_expired_request_gets_deadline_error(self):
        async def scenario():
            from repro.service.protocol import Request
            from repro.service.server import _Pending
            service = AdmissionService(_config())
            await service.start()
            loop = asyncio.get_running_loop()
            # A request whose deadline already lapsed while queued.
            stale = _Pending(
                Request(op="establish", req_id=7, src=0, dst=15, what=""),
                loop.time() - 1.0, loop.time() - 2.0, loop.create_future(),
            )
            service._queue.put_nowait(stale)
            response = await stale.future
            assert response["error"] == "deadline"
            assert service.expired_count == 1
            # The expired request never reached the engine.
            assert service.engine.seq == 0
            service.initiate_drain()
            await service.drained()

        _run(scenario())

    def test_default_deadline_applied(self):
        async def scenario():
            service = AdmissionService(_config(default_deadline_ms=10_000.0))
            await service.start()
            resp = await _rpc(service.port, {
                "op": "establish", "id": 1, "src": 0, "dst": 15, "qos": QOS,
            })
            assert resp["ok"]
            service.initiate_drain()
            await service.drained()

        _run(scenario())


class TestDrain:
    def test_drain_rejects_new_work_and_logs_shutdown(self, tmp_path):
        wal = tmp_path / "wal.log"

        async def scenario():
            service = AdmissionService(_config(wal_path=str(wal)))
            await service.start()
            port = service.port
            resp = await _rpc(port, {
                "op": "establish", "id": 1, "src": 0, "dst": 15, "qos": QOS,
            })
            assert resp["ok"]
            # Open a connection *before* the listener closes.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            service.initiate_drain()
            writer.write(encode_line({"op": "teardown", "id": 2, "conn_id": 0}))
            await writer.drain()
            refused = decode_line(await reader.readline())
            assert refused["error"] == "shutting-down"
            writer.write(encode_line({"op": "query", "id": 3, "what": "ready"}))
            await writer.drain()
            ready = decode_line(await reader.readline())
            assert ready["error"] == "shutting-down"
            writer.close()
            await service.drained()
            return service.engine.digest()

        digest = _run(scenario())
        result = replay_log(wal)
        assert result.clean_shutdown
        assert result.digest == digest


class TestLoadgenAgainstServer:
    def test_small_campaign_end_to_end(self, tmp_path):
        wal = tmp_path / "wal.log"

        async def scenario():
            service = AdmissionService(_config(
                wal_path=str(wal),
                engine=EngineConfig(batch_max=16),
            ))
            await service.start()
            report = await run_loadgen(LoadgenConfig(
                port=service.port, total_requests=200, concurrency=4, seed=3,
            ))
            service.initiate_drain()
            await service.drained()
            return service.engine.digest(), report

        digest, report = _run(scenario())
        assert report.sent == 200
        assert report.errors == 0
        assert report.accepted > 0 and report.torn_down > 0
        summary = report.latency_summary()
        assert summary["p99_us"] >= summary["p50_us"] > 0
        # The WAL of the noisy concurrent run still replays bitwise.
        assert replay_log(wal).digest == digest
