"""Supervised restart loop: budget, backoff, crash loops, digest checks.

These tests spawn real ``repro serve`` subprocesses — the supervisor's
whole job is babysitting an OS process — but keep every knob tight so
the suite stays fast.
"""

import os
import signal
import threading
import time

from repro.service.chaos import CHAOS_EXIT_CODE
from repro.service.replay import replay_log
from repro.service.procs import (
    ScriptClient,
    read_banner,
    serve_argv,
    spawn_server,
    wait_exit,
)
from repro.service.supervisor import (
    ServeSupervisor,
    SupervisorPolicy,
    strip_chaos_flags,
)

TOPOLOGY = "grid:nodes=4,cols=4,capacity=1000"

QOS = {"b_min": 100.0, "b_max": 300.0, "increment": 100.0, "utility": 1.0,
       "backups": 1}


class TestStripChaosFlags:
    def test_removes_flag_value_pairs(self):
        argv = ["repro", "serve", "--chaos-crash", "post-listen:1",
                "--wal", "x.log", "--chaos-seed", "7",
                "--chaos-disk", "fsync-eio:2", "--core", "array"]
        assert strip_chaos_flags(argv) == [
            "repro", "serve", "--wal", "x.log", "--core", "array"
        ]

    def test_noop_without_chaos_flags(self):
        argv = ["repro", "serve", "--wal", "x.log"]
        assert strip_chaos_flags(argv) == argv


class TestRestartLoop:
    def test_crash_once_restarts_and_verifies_digest(self, tmp_path):
        """A post-listen crash is survived: the supervisor restarts the
        child without its chaos flags, cross-checks the recovered digest
        against an offline replay, and ends cleanly on SIGTERM."""
        wal = tmp_path / "wal.log"
        # Seed the WAL with real history so the digest check has teeth.
        proc = spawn_server(serve_argv(TOPOLOGY, wal))
        banner = read_banner(proc)
        client = ScriptClient(int(banner["port"]))
        for i in range(3):
            resp = client.rpc({"op": "establish", "id": i, "src": i,
                               "dst": 15 - i, "qos": QOS})
            assert resp and resp["ok"]
        client.close()
        proc.kill()  # hard kill: no shutdown marker, recovery is real
        wait_exit(proc)

        banners = []
        supervisor = ServeSupervisor(
            serve_argv(TOPOLOGY, wal, ["--chaos-crash", "post-listen:1"]),
            wal,
            SupervisorPolicy(
                max_restarts=3,
                backoff_base_s=0.05,
                crash_loop_threshold=3,
                min_healthy_uptime_s=0.1,
            ),
            on_banner=banners.append,
        )
        box = {}
        runner = threading.Thread(
            target=lambda: box.update(report=supervisor.run())
        )
        runner.start()
        # Banner #1 is the chaos child (dies at post-listen); banner #2
        # is the restarted, chaos-stripped incarnation.  The banner is
        # printed after signal handlers are installed, so a SIGTERM from
        # here on drains gracefully instead of killing mid-startup.
        deadline = time.monotonic() + 60.0
        while len(banners) < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert len(banners) == 2, "restarted child never announced readiness"
        os.kill(int(banners[1]["pid"]), signal.SIGTERM)
        runner.join(timeout=60.0)
        assert not runner.is_alive()

        report = box["report"]
        assert report.outcome == "clean-exit"
        assert report.crashes == 1
        assert report.restarts == 1
        assert report.last_exit_code == 0
        # Both incarnations recovered from the same (real) history.
        codes = [inc["exit_code"] for inc in report.incarnations]
        assert codes == [CHAOS_EXIT_CODE, 0]
        assert all(inc["banner"]["recovered"] for inc in report.incarnations)
        # The drained child's digest equals an offline replay: the
        # crash/restart cycle rewrote nothing.
        assert report.last_digest == replay_log(wal).digest

    def test_persistent_crash_is_a_crash_loop(self, tmp_path):
        """chaos_once=False re-arms the crash every incarnation; the
        supervisor must detect the loop, not restart forever."""
        wal = tmp_path / "wal.log"
        supervisor = ServeSupervisor(
            serve_argv(TOPOLOGY, wal, ["--chaos-crash", "post-listen:1"]),
            wal,
            SupervisorPolicy(
                max_restarts=10,
                backoff_base_s=0.02,
                backoff_cap_s=0.1,
                crash_loop_threshold=3,
                min_healthy_uptime_s=5.0,
                chaos_once=False,
            ),
        )
        report = supervisor.run()
        assert report.outcome == "crash-loop"
        assert report.crashes == 3
        assert report.restarts == 2  # threshold hit before budget
        assert report.last_exit_code == CHAOS_EXIT_CODE

    def test_restart_budget_exhaustion(self, tmp_path):
        wal = tmp_path / "wal.log"
        supervisor = ServeSupervisor(
            serve_argv(TOPOLOGY, wal, ["--chaos-crash", "post-listen:1"]),
            wal,
            SupervisorPolicy(
                max_restarts=2,
                backoff_base_s=0.02,
                backoff_cap_s=0.1,
                crash_loop_threshold=99,
                min_healthy_uptime_s=5.0,
                chaos_once=False,
            ),
        )
        report = supervisor.run()
        assert report.outcome == "restart-budget-exhausted"
        assert report.restarts == 2
        assert report.crashes == 3  # initial run + 2 restarts
