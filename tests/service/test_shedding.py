"""Backpressure policy: pure, deterministic, utility-aware."""

import pytest

from repro.errors import SimulationError
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.service.protocol import Request
from repro.service.server import deadline_expired
from repro.service.shedding import BackpressureConfig, admit_decision


def _establish(utility):
    qos = ConnectionQoS(
        performance=ElasticQoS(
            b_min=100.0, b_max=200.0, increment=100.0, utility=utility
        ),
        dependability=DependabilityQoS(num_backups=1),
    )
    return Request(op="establish", req_id=1, src=0, dst=1, qos=qos)


CFG = BackpressureConfig(
    queue_limit=100, shed_watermark=0.5, utility_ceiling=1.0, drain_rate_hint=100.0
)


class TestRegimes:
    def test_below_watermark_admits_everything(self):
        for depth in (0, 49):
            assert admit_decision(CFG, depth, _establish(0.0)).admit

    def test_full_queue_rejects_everything_with_hint(self):
        decision = admit_decision(CFG, 100, Request(op="teardown", req_id=1, conn_id=3))
        assert not decision.admit
        assert decision.retry_after == pytest.approx(101 / 100.0)
        assert "queue full" in decision.reason

    def test_selective_band_sheds_by_utility(self):
        # depth 75 -> occupancy 0.75 -> threshold 0.5.
        assert not admit_decision(CFG, 75, _establish(0.4)).admit
        assert admit_decision(CFG, 75, _establish(0.6)).admit

    def test_threshold_rises_linearly(self):
        # Just above watermark almost nothing is shed...
        assert admit_decision(CFG, 51, _establish(0.05)).admit
        # ...near full, almost everything is.
        assert not admit_decision(CFG, 99, _establish(0.9)).admit

    def test_releasing_ops_admitted_in_band(self):
        for op, extra in (
            ("teardown", {"conn_id": 1}),
            ("fail", {"link": (0, 1)}),
            ("repair", {"link": (0, 1)}),
        ):
            req = Request(op=op, req_id=1, **extra)
            assert admit_decision(CFG, 99, req).admit

    def test_queries_never_shed(self):
        req = Request(op="query", req_id=1, what="health")
        assert admit_decision(CFG, 100, req).admit

    def test_deterministic(self):
        req = _establish(0.3)
        first = admit_decision(CFG, 80, req)
        assert all(admit_decision(CFG, 80, req) == first for _ in range(5))


class TestBoundaries:
    """Exact edges of the three regimes (off-by-one hunting)."""

    def test_exactly_at_watermark_enters_band_with_zero_threshold(self):
        # depth 50 / limit 100 == watermark 0.5: the selective band is
        # entered (strict <), but the threshold is exactly 0 there, so
        # even a zero-utility establish still passes (strict < again).
        decision = admit_decision(CFG, 50, _establish(0.0))
        assert decision.admit

    def test_one_below_watermark_is_unconditional(self):
        assert admit_decision(CFG, 49, _establish(0.0)).admit

    def test_utility_equal_to_threshold_is_admitted(self):
        # depth 75 -> threshold exactly 0.5; the comparison is strict.
        assert admit_decision(CFG, 75, _establish(0.5)).admit

    def test_last_free_slot_still_obeys_the_band(self):
        # depth 99 -> threshold 0.98: the last slot is reserved for
        # near-ceiling utilities, not closed outright.
        assert admit_decision(CFG, 99, _establish(0.98)).admit
        assert not admit_decision(CFG, 99, _establish(0.9799)).admit

    def test_full_queue_rejects_releasing_ops_too(self):
        # Releasing ops beat the *band*, not a full queue: with no slot
        # free there is nothing to admit them into.
        for op, extra in (
            ("teardown", {"conn_id": 1}),
            ("fail", {"link": (0, 1)}),
            ("repair", {"link": (0, 1)}),
        ):
            decision = admit_decision(CFG, 100, Request(op=op, req_id=1, **extra))
            assert not decision.admit
            assert decision.retry_after is not None

    def test_watermark_of_one_disables_selective_shedding(self):
        cfg = BackpressureConfig(
            queue_limit=100, shed_watermark=1.0, utility_ceiling=1.0,
            drain_rate_hint=100.0,
        )
        assert admit_decision(cfg, 99, _establish(0.0)).admit
        assert not admit_decision(cfg, 100, _establish(1.0)).admit


class TestDeadlineBoundary:
    """``now == deadline`` is the last servable instant, not expired."""

    def test_equality_is_not_expired(self):
        assert not deadline_expired(5.0, 5.0)

    def test_strictly_later_is_expired(self):
        assert deadline_expired(5.0, 5.0000001)

    def test_earlier_is_not_expired(self):
        assert not deadline_expired(5.0, 4.9)

    def test_no_deadline_never_expires(self):
        assert not deadline_expired(None, 1e18)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_limit": 0},
            {"shed_watermark": 0.0},
            {"shed_watermark": 1.5},
            {"utility_ceiling": -1.0},
            {"drain_rate_hint": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            BackpressureConfig(**kwargs)
