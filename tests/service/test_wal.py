"""Replay-log durability: headers, torn tails, truncation, export."""

import json

import pytest

from repro.errors import SimulationError
from repro.parallel.jobs import TopologySpec
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.service.protocol import Request
from repro.service.wal import (
    ReplayLogReader,
    ReplayLogWriter,
    encode_record,
    parse_topology_arg,
    request_from_record,
    request_to_record,
    topology_from_dict,
    topology_to_dict,
)

GRID = TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=3, cols=3)


def _qos():
    return ConnectionQoS(
        performance=ElasticQoS(b_min=50.0, b_max=150.0, increment=50.0, utility=0.8),
        dependability=DependabilityQoS(num_backups=1),
    )


def _events(n):
    return [
        (i, Request(op="establish", req_id=i, src=0, dst=8, qos=_qos()))
        for i in range(n)
    ]


class TestTopologySpecWire:
    def test_round_trip(self):
        for spec in (
            GRID,
            TopologySpec(kind="waxman", capacity=155.0, seed=7, nodes=20),
        ):
            assert topology_from_dict(topology_to_dict(spec)) == spec

    def test_parse_topology_arg(self):
        spec = parse_topology_arg("grid:nodes=4,cols=4,capacity=1000")
        assert spec == TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=4, cols=4)

    @pytest.mark.parametrize(
        "text", ["donut:nodes=4", "grid:nodes", "grid:flavor=ring"]
    )
    def test_parse_topology_arg_rejects(self, text):
        with pytest.raises(SimulationError):
            parse_topology_arg(text)


class TestEventRecords:
    def test_round_trip_all_ops(self):
        requests = [
            Request(op="establish", req_id=0, src=1, dst=2, qos=_qos()),
            Request(op="teardown", req_id=1, conn_id=9),
            Request(op="fail", req_id=2, link=(0, 1)),
            Request(op="repair", req_id=3, link=(0, 1)),
        ]
        for seq, req in enumerate(requests):
            rebuilt = request_from_record(
                json.loads(json.dumps(request_to_record(seq, req)))
            )
            assert rebuilt.op == req.op
            assert rebuilt.link == req.link
            assert rebuilt.conn_id == req.conn_id
            assert rebuilt.qos == req.qos


class TestWriterReader:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "wal.log"
        with ReplayLogWriter(path, GRID, manager_kwargs={"policy": "greedy"}) as w:
            w.log_events(_events(3))
            w.log_epoch(2)
            w.log_shutdown(2)
        reader = ReplayLogReader(path)
        assert reader.topology == GRID
        assert reader.manager_kwargs == {"policy": "greedy"}
        assert reader.core == "array"
        assert reader.clean_shutdown and not reader.torn_tail
        assert [seq for seq, _ in reader.events()] == [0, 1, 2]
        assert reader.epoch_ends() == [2]
        assert reader.last_seq == 2

    def test_append_mode_keeps_single_header(self, tmp_path):
        path = tmp_path / "wal.log"
        with ReplayLogWriter(path, GRID) as w:
            w.log_events(_events(2))
        with ReplayLogWriter(path, GRID) as w:
            w.log_events([(2, _events(3)[2][1])])
        headers = [
            line for line in path.read_text().splitlines() if '"header"' in line
        ]
        assert len(headers) == 1
        assert ReplayLogReader(path).last_seq == 2

    def test_unterminated_tail_is_torn_even_if_decodable(self, tmp_path):
        path = tmp_path / "wal.log"
        with ReplayLogWriter(path, GRID) as w:
            w.log_events(_events(2))
        durable = path.stat().st_size
        with open(  # repro-lint: disable=ART001 — deliberate torn-write fixture
            path, "ab"
        ) as fh:
            fh.write(b'{"type":"event","seq":2,"op":"teardown","conn_id":1}')
        reader = ReplayLogReader(path)
        assert reader.torn_tail
        assert reader.valid_bytes == durable
        assert reader.last_seq == 1

    def test_terminated_garbage_final_line_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        with ReplayLogWriter(path, GRID) as w:
            w.log_events(_events(1))
        durable = path.stat().st_size
        with open(  # repro-lint: disable=ART001 — deliberate torn-write fixture
            path, "ab"
        ) as fh:
            fh.write(b"\x00\xffgarbage\n")
        reader = ReplayLogReader(path)
        assert reader.torn_tail and reader.valid_bytes == durable
        assert reader.last_seq == 0

    def test_mid_file_garbage_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        with ReplayLogWriter(path, GRID) as w:
            w.log_events(_events(1))
        with open(  # repro-lint: disable=ART001 — deliberate torn-write fixture
            path, "ab"
        ) as fh:
            fh.write(b"garbage\n")
            fh.write(b'{"type":"epoch","seq_end":0}\n')
        with pytest.raises(SimulationError, match="corrupt replay log"):
            ReplayLogReader(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        record = {"type": "event", "seq": 0, "op": "teardown", "conn_id": 1}
        path.write_bytes(  # repro-lint: disable=ART001 — deliberate bad-log fixture
            encode_record(record)
        )
        with pytest.raises(SimulationError, match="no header record"):
            ReplayLogReader(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        header = {
            "type": "header", "version": 99, "core": "array",
            "topology": topology_to_dict(GRID), "manager": {},
        }
        path.write_bytes(  # repro-lint: disable=ART001 — deliberate bad-log fixture
            encode_record(header)
        )
        with pytest.raises(SimulationError, match="unsupported version"):
            ReplayLogReader(path)

    def test_crc_protects_terminated_final_line(self, tmp_path):
        # A bit-flip in a *terminated* final record must read as torn,
        # never as a different valid record — that is what the per-record
        # CRC buys over plain JSON decodability.
        path = tmp_path / "wal.log"
        with ReplayLogWriter(path, GRID) as w:
            w.log_events(_events(2))
        durable_before = ReplayLogReader(path).valid_bytes
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x04  # flip one bit inside the final record's body
        path.write_bytes(  # repro-lint: disable=ART001 — deliberate corruption
            bytes(data)
        )
        reader = ReplayLogReader(path)
        assert reader.torn_tail
        assert reader.last_seq == 0
        assert reader.valid_bytes < durable_before
