"""Engine determinism: batches, replay, recovery and core crossing."""

import random

import pytest

from repro.errors import SimulationError
from repro.parallel.jobs import TopologySpec
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.protocol import Request
from repro.service.replay import export_campaign, recover_engine, replay_log
from repro.service.wal import ReplayLogReader, ReplayLogWriter

GRID = TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=4, cols=4)


def _qos(rng):
    b_min = rng.choice((50.0, 100.0, 150.0))
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=b_min,
            b_max=b_min * rng.choice((2, 3)),
            increment=b_min,
            utility=rng.choice((0.25, 0.5, 1.0)),
        ),
        dependability=DependabilityQoS(num_backups=1),
    )


#: Largest batch size the digest tests exercise.  The script keeps
#: dependent events (establish->teardown, fail->repair of one link) at
#: least this far apart so no batch ever contains both halves: batched
#: validation runs against batch-*start* state, so an intra-batch
#: dependency is a legitimate (deterministic, replay-consistent) source
#: of outcome differences between batchings — covered separately by
#: TestValidation.test_in_batch_race_is_deterministic.
MAX_BATCH = 16


def _script(steps=120, seed=5):
    """A fixed mixed request sequence, built once against a scratch
    engine (so teardown conn ids are real), then replayable verbatim
    against any engine/batching under test."""
    engine = ServiceEngine(GRID, EngineConfig())
    rng = random.Random(seed)
    nodes = engine.net.nodes()
    links = engine.net.link_ids()[:6]
    live = []    # (step_established, conn_id)
    failed = []  # (step_failed, link)
    last_repair = {}  # link -> step of most recent repair
    script = []
    for i in range(steps):
        r = rng.random()
        ripe_conns = [c for c in live if i - c[0] >= MAX_BATCH]
        ripe_links = [f for f in failed if i - f[0] >= MAX_BATCH]
        if r < 0.5 or not ripe_conns:
            s, d = rng.sample(nodes, 2)
            req = Request(op="establish", req_id=i, src=s, dst=d, qos=_qos(rng))
        elif r < 0.75:
            entry = ripe_conns[0]
            live.remove(entry)
            req = Request(op="teardown", req_id=i, conn_id=entry[1])
        elif r < 0.88 and len(failed) < 3:
            candidates = [
                l for l in links
                if all(f[1] != l for f in failed)
                and i - last_repair.get(l, -MAX_BATCH) >= MAX_BATCH
            ]
            if not candidates:
                continue
            failed.append((i, candidates[0]))
            req = Request(op="fail", req_id=i, link=candidates[0])
        elif ripe_links:
            entry = ripe_links[0]
            failed.remove(entry)
            last_repair[entry[1]] = i
            req = Request(op="repair", req_id=i, link=entry[1])
        else:
            continue
        response = engine.apply_sequential(req)
        result = response.get("result") or {}
        if response.get("ok") and result.get("accepted"):
            live.append((i, result["conn_id"]))
        script.append(req)
    return script


def _drive(engine, script=None, batch=None):
    """Apply a scripted workload; returns responses."""
    if script is None:
        script = _script()
    responses = []
    if batch is None:
        for req in script:
            responses.append(engine.apply_sequential(req))
        return responses
    for start in range(0, len(script), batch):
        responses.extend(engine.apply_batch(script[start:start + batch]))
    return responses


class TestEngineConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            EngineConfig(batch_max=0)
        with pytest.raises(SimulationError):
            EngineConfig(manager_kwargs={"turbo": True})


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("batch", [1, 5, MAX_BATCH])
    def test_digest_independent_of_batching(self, batch):
        sequential = ServiceEngine(GRID, EngineConfig())
        _drive(sequential, batch=None)
        batched = ServiceEngine(GRID, EngineConfig(batch_max=batch))
        _drive(batched, batch=batch)
        assert batched.digest() == sequential.digest()

    def test_cores_agree(self):
        digests = {}
        for core in ("object", "array"):
            engine = ServiceEngine(GRID, EngineConfig(core=core))
            _drive(engine, batch=8)
            digests[core] = engine.digest()
        assert digests["object"] == digests["array"]


class TestValidation:
    def test_validation_errors_not_logged(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = ReplayLogWriter(path, GRID)
        engine = ServiceEngine(GRID, EngineConfig(), wal=wal)
        bad = [
            Request(op="establish", req_id=0, src=0, dst=0, qos=_qos(random.Random(0))),
            Request(op="establish", req_id=1, src=0, dst=999, qos=_qos(random.Random(0))),
            Request(op="teardown", req_id=2, conn_id=404),
            Request(op="fail", req_id=3, link=(0, 5)),  # not a grid link
            Request(op="repair", req_id=4, link=(0, 1)),  # not failed
        ]
        responses = engine.apply_batch(bad)
        engine.close()
        assert [r["ok"] for r in responses] == [False] * 5
        assert [r["error"] for r in responses] == [
            "bad-request", "bad-request", "not-live", "bad-request", "link-state"
        ]
        assert engine.seq == 0
        assert list(ReplayLogReader(path).events()) == []

    def test_in_batch_race_is_deterministic(self, tmp_path):
        """An event invalidated by an earlier event in its own batch is
        answered with an error, not applied — and replay agrees."""
        path = tmp_path / "wal.log"
        wal = ReplayLogWriter(path, GRID)
        engine = ServiceEngine(GRID, EngineConfig(batch_max=8), wal=wal)
        lid = engine.net.link_ids()[0]
        batch = [
            Request(op="fail", req_id=0, link=lid),
            Request(op="fail", req_id=1, link=lid),  # race: already failed
        ]
        responses = engine.apply_batch(batch)
        engine.close()
        assert responses[0]["ok"] is True
        assert responses[1]["ok"] is True or responses[1]["error"] in (
            "link-state", "internal"
        )
        assert replay_log(path).digest == engine.digest()


class TestReplayAndRecovery:
    def _live_run(self, tmp_path, batch=8):
        path = tmp_path / "wal.log"
        wal = ReplayLogWriter(path, GRID)
        engine = ServiceEngine(GRID, EngineConfig(batch_max=batch), wal=wal)
        _drive(engine, batch=batch)
        digest = engine.digest()
        return path, engine, digest

    def test_replay_matches_live(self, tmp_path):
        path, engine, digest = self._live_run(tmp_path)
        engine.close()
        result = replay_log(path)
        assert result.digest == digest
        assert result.events_applied == engine.seq
        assert not result.clean_shutdown and not result.torn_tail

    def test_recover_after_torn_tail(self, tmp_path):
        path, engine, digest = self._live_run(tmp_path)
        engine.close()
        with open(  # repro-lint: disable=ART001 — deliberate torn-write fixture
            path, "ab"
        ) as fh:
            fh.write(b'{"type":"event","seq":9')  # crash mid-write
        recovered = recover_engine(path)
        assert recovered.digest() == digest
        assert recovered.seq == engine.seq
        # The truncation leaves a log a fresh reader accepts cleanly.
        assert not ReplayLogReader(path).torn_tail
        # And the recovered engine can keep appending valid records.
        lid = recovered.net.link_ids()[0]
        op = "repair" if recovered.manager.state.link(lid).failed else "fail"
        req = Request(op=op, req_id=0, link=lid)
        recovered.apply_sequential(req)
        recovered.close()
        assert ReplayLogReader(path).last_seq == engine.seq
        assert replay_log(path).digest == recovered.digest()

    def test_cross_core_replay(self, tmp_path):
        path, engine, digest = self._live_run(tmp_path)
        engine.close()
        reader = ReplayLogReader(path)
        other = ServiceEngine(
            reader.topology, EngineConfig(core="object", manager_kwargs=reader.manager_kwargs)
        )
        for seq, request in reader.events():
            other.seq = seq
            other.apply_sequential(request)
        assert other.digest() == digest

    def test_export_campaign_replays_identically(self, tmp_path):
        path, engine, digest = self._live_run(tmp_path)
        engine.close()
        out = tmp_path / "campaign.log"
        summary = export_campaign(path, out)
        assert summary["events"] == engine.seq
        result = replay_log(out)
        assert result.digest == digest
        assert result.clean_shutdown


class TestQueries:
    def test_query_shapes(self):
        engine = ServiceEngine(GRID, EngineConfig())
        rng = random.Random(1)
        resp = engine.apply_sequential(
            Request(op="establish", req_id=0, src=0, dst=15, qos=_qos(rng))
        )
        cid = resp["result"]["conn_id"]
        info = engine.query(Request(op="query", req_id=1, what="info"))["result"]
        assert info["num_nodes"] == 16 and len(info["links_sample"]) == 8
        stats = engine.query(Request(op="query", req_id=2, what="stats"))["result"]
        assert stats["num_live"] == 1
        conn = engine.query(
            Request(op="query", req_id=3, what="connection", conn_id=cid)
        )["result"]
        assert conn["level"] >= 0 and conn["primary_path"][0] == 0
        missing = engine.query(
            Request(op="query", req_id=4, what="connection", conn_id=404)
        )
        assert missing["error"] == "not-live"
