"""Wire-protocol parsing, framing and QoS round-trips."""

import math

import pytest

from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.service.protocol import (
    ERROR_CODES,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
    qos_from_dict,
    qos_to_dict,
)


def _qos(utility=1.0):
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=100.0, b_max=300.0, increment=100.0, utility=utility
        ),
        dependability=DependabilityQoS(num_backups=1, require_link_disjoint=True),
    )


class TestQoSRoundTrip:
    def test_exact_round_trip(self):
        qos = _qos(utility=0.7)
        rebuilt = qos_from_dict(qos_to_dict(qos))
        assert rebuilt == qos

    def test_awkward_float_survives_json(self):
        qos = ConnectionQoS(
            performance=ElasticQoS(
                b_min=0.1, b_max=0.1 * 3, increment=0.1, utility=1 / 3
            ),
            dependability=DependabilityQoS(num_backups=0),
        )
        line = encode_line({"qos": qos_to_dict(qos)})
        rebuilt = qos_from_dict(decode_line(line)["qos"])
        assert rebuilt.performance.utility == qos.performance.utility
        assert math.isclose(rebuilt.performance.b_max, 0.1 * 3, rel_tol=0.0)

    def test_invalid_qos_rejected(self):
        with pytest.raises(ProtocolError, match="invalid qos"):
            qos_from_dict({"b_min": 300.0, "b_max": 100.0, "increment": 100.0})
        with pytest.raises(ProtocolError):
            qos_from_dict("not an object")
        with pytest.raises(ProtocolError):
            qos_from_dict({"b_min": 100.0})  # missing fields


class TestParseRequest:
    def test_establish(self):
        req = parse_request(
            {"op": "establish", "id": 7, "src": 1, "dst": 2,
             "qos": qos_to_dict(_qos()), "deadline_ms": 50}
        )
        assert req.op == "establish" and req.is_mutation
        assert (req.src, req.dst, req.req_id) == (1, 2, 7)
        assert req.deadline_ms == 50.0

    def test_teardown_and_query(self):
        req = parse_request({"op": "teardown", "id": "t", "conn_id": 3})
        assert req.conn_id == 3 and req.is_mutation
        query = parse_request({"op": "query", "what": "digest"})
        assert not query.is_mutation and query.what == "digest"

    def test_link_normalized(self):
        req = parse_request({"op": "fail", "link": [5, 2]})
        assert req.link == (2, 5)

    @pytest.mark.parametrize(
        "obj",
        [
            "not a dict",
            {"op": "launch"},
            {"op": "establish", "src": "a", "dst": 2, "qos": {}},
            {"op": "establish", "src": True, "dst": 2, "qos": {}},
            {"op": "teardown"},
            {"op": "fail", "link": [1]},
            {"op": "fail", "link": [1, True]},
            {"op": "fail", "link": "1-2"},
            {"op": "query", "what": "everything"},
            {"op": "query", "what": "connection"},
            {"op": "teardown", "conn_id": 1, "deadline_ms": 0},
            {"op": "teardown", "conn_id": 1, "deadline_ms": "soon"},
        ],
    )
    def test_malformed_rejected(self, obj):
        with pytest.raises(ProtocolError):
            parse_request(obj)


class TestFraming:
    def test_encode_decode_round_trip(self):
        frame = encode_line(ok_response(9, {"x": 1}))
        assert frame.endswith(b"\n")
        assert decode_line(frame) == {"id": 9, "ok": True, "result": {"x": 1}}

    def test_bad_frame_raises(self):
        with pytest.raises(ProtocolError, match="malformed frame"):
            decode_line(b"{nope\n")

    def test_error_response_shapes(self):
        resp = error_response(1, "shed", "busy", retry_after=0.25)
        assert resp["retry_after"] == 0.25 and resp["error"] in ERROR_CODES
        assert "retry_after" not in error_response(1, "bad-request", "no")
        with pytest.raises(ProtocolError, match="unknown error code"):
            error_response(1, "teapot", "?")
