"""Chaos soak trials and loadgen resilience (out-of-process).

The full sweep runs in CI (``repro chaos --sweep``); here we keep one
bounded end-to-end trial per plane so a plain ``pytest`` run still
exercises the crash → replay → restart → digest chain against a real
server process.
"""

import asyncio
import socket
import time

import pytest

from repro.service.chaos import CHAOS_EXIT_CODE, DURABILITY_SITES
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.procs import read_banner, serve_argv, spawn_server
from repro.service.soak import (
    SoakTrialSpec,
    derive_trial,
    _request_mix,
    run_trial,
)

TOPOLOGY = "grid:nodes=4,cols=4,capacity=1000"


class TestTrialDerivation:
    def test_derive_trial_is_deterministic(self):
        for seed in range(30):
            first = derive_trial(seed, core="object", requests=17)
            again = derive_trial(seed, core="object", requests=17)
            assert first == again
            assert first.site in DURABILITY_SITES
            assert first.hit >= 1

    def test_request_mix_is_a_pure_function_of_the_seed(self):
        spec = SoakTrialSpec(seed=11, site="post-fsync", hit=3, requests=40)
        mix = _request_mix(spec)
        assert mix == _request_mix(spec)
        assert len(mix) == 40
        ops = {request["op"] for request in mix}
        # Every WAL record type appears in a 40-request mix.
        assert ops == {"establish", "teardown", "fail", "repair"}


class TestBoundedTrial:
    def test_post_fsync_crash_trial_digests_agree(self, tmp_path):
        """One full trial: seeded crash, offline replay, restart with
        recovery, clean drain, cross-core replay — four equal digests."""
        spec = SoakTrialSpec(
            seed=3, site="post-fsync", hit=3, core="array", requests=12,
            topology=TOPOLOGY,
        )
        result = run_trial(spec, tmp_path)
        assert result.crashed
        assert result.exit_code == CHAOS_EXIT_CODE
        assert result.ok, result.detail
        # post-fsync crashes *after* durability: all three hit-triggering
        # events are on disk.
        assert result.durable_events == 3
        assert (
            result.offline_digest
            == result.recovered_digest
            == result.drained_digest
            == result.cross_core_digest
        )


class TestLoadgenResilience:
    """Satellite: loadgen survives a server dying mid-campaign."""

    def test_unreachable_server_aborts_without_traceback(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        report = asyncio.run(
            run_loadgen(LoadgenConfig(port=port, total_requests=5))
        )
        assert report.aborted
        assert report.sent == 0

    def test_server_killed_mid_run_aborts_with_partial_stats(self, tmp_path):
        """Kill the server while the campaign is in flight: clients
        burn their bounded reconnect budgets and the run ends with
        ``aborted`` plus whatever stats were gathered — no exception."""
        wal = tmp_path / "wal.log"
        proc = spawn_server(serve_argv(TOPOLOGY, wal))
        try:
            banner = read_banner(proc)
            cfg = LoadgenConfig(
                port=int(banner["port"]),
                total_requests=200_000,  # far more than we let finish
                concurrency=4,
                seed=5,
                deadline_ms=None,
                reconnect_attempts=2,
                reconnect_base_s=0.01,
                reconnect_cap_s=0.05,
            )

            async def scenario():
                campaign = asyncio.ensure_future(run_loadgen(cfg))
                # Let some traffic land first, then pull the plug.
                await asyncio.sleep(0.4)
                proc.kill()
                return await asyncio.wait_for(campaign, timeout=30.0)

            start = time.monotonic()
            report = asyncio.run(scenario())
            elapsed = time.monotonic() - start
            assert report.aborted
            assert report.disconnects >= 1
            assert report.sent < cfg.total_requests
            # Bounded reconnects: giving up is prompt, not a hang.
            assert elapsed < 30.0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)

    def test_config_rejects_nonsense(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            LoadgenConfig(total_requests=0)
