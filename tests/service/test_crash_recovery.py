"""Kill -9 the live service mid-epoch; recovery must be bitwise exact.

The scenario the WAL exists for, end to end and out of process:

1. start ``repro serve`` with a WAL and a widened durable-but-unapplied
   window (``--epoch-hold-s``);
2. drive a scripted burst of requests, SIGKILL the server while a batch
   is in flight;
3. replay the surviving log in-process — this *is* the uninterrupted
   run over the durable prefix (batching is bitwise inert);
4. restart the service on the same WAL and assert its recovered state
   digest equals the replay digest, then drain it cleanly and check the
   digest one last time.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.service.protocol import decode_line, encode_line
from repro.service.replay import replay_log

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

QOS = {"b_min": 100.0, "b_max": 300.0, "increment": 100.0, "utility": 1.0,
       "backups": 1}


def _spawn_server(wal, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--topology", "grid:nodes=4,cols=4,capacity=1000",
         "--wal", str(wal), "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise AssertionError(f"server died at startup: {proc.stderr.read()}")
    banner = json.loads(line)
    assert banner["event"] == "listening"
    return proc, banner


class _Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.file = self.sock.makefile("rb")

    def rpc(self, obj):
        self.sock.sendall(encode_line(obj))
        return decode_line(self.file.readline())

    def send_only(self, obj):
        self.sock.sendall(encode_line(obj))

    def close(self):
        self.sock.close()


class TestKillAndReplay:
    def test_sigkill_mid_epoch_recovers_bitwise(self, tmp_path):
        wal = tmp_path / "wal.log"
        proc, banner = _spawn_server(wal, extra=["--epoch-hold-s", "0.05"])
        try:
            client = _Client(banner["port"])
            # A deterministic scripted burst with answered requests...
            for i in range(40):
                resp = client.rpc({
                    "op": "establish", "id": i, "src": i % 16,
                    "dst": (i + 5) % 16, "qos": QOS,
                })
                assert "ok" in resp
            # ...then a pipelined burst we do NOT wait for, so a batch
            # is durably logged but still unapplied (epoch hold) when
            # the SIGKILL lands.
            for i in range(40, 80):
                client.send_only({
                    "op": "establish", "id": i, "src": i % 16,
                    "dst": (i + 3) % 16, "qos": QOS,
                })
            time.sleep(0.1)  # let some of the burst reach the WAL
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            client.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        assert wal.exists() and wal.stat().st_size > 0
        # The uninterrupted run over the durable prefix.
        offline = replay_log(wal)
        assert offline.events_applied >= 40

        # Restart on the same WAL: recovery must replay to the same state.
        proc2, banner2 = _spawn_server(wal)
        try:
            assert banner2["recovered"] is True
            assert banner2["seq"] == offline.events_applied
            client = _Client(banner2["port"])
            live = client.rpc({"op": "query", "id": 1, "what": "digest"})
            assert live["ok"]
            assert live["result"]["digest"] == offline.digest
            client.close()
            proc2.send_signal(signal.SIGTERM)
            out, err = proc2.communicate(timeout=30)
            assert proc2.returncode == 0, err
            drained = json.loads(out.strip().splitlines()[-1])
            assert drained["event"] == "drained"
            assert drained["digest"] == offline.digest
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait(timeout=10)

        # The WAL now carries a clean shutdown marker and still replays
        # to the identical state.
        final = replay_log(wal)
        assert final.clean_shutdown
        assert final.digest == offline.digest

    def test_clean_restart_without_crash(self, tmp_path):
        """Restart after SIGTERM also recovers (idempotent recovery)."""
        wal = tmp_path / "wal.log"
        proc, banner = _spawn_server(wal)
        client = _Client(banner["port"])
        for i in range(10):
            client.rpc({
                "op": "establish", "id": i, "src": 0, "dst": 15, "qos": QOS,
            })
        client.close()
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        drained = json.loads(out.strip().splitlines()[-1])

        proc2, banner2 = _spawn_server(wal)
        try:
            assert banner2["recovered"] is True
            client = _Client(banner2["port"])
            live = client.rpc({"op": "query", "id": 1, "what": "digest"})
            assert live["result"]["digest"] == drained["digest"]
            client.close()
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.communicate(timeout=30)
