"""Chaos crash plane: schedules, hit counting, in-process crashes."""

import pytest

from repro.errors import SimulationError
from repro.parallel.jobs import TopologySpec
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.service.chaos import (
    CRASH_SITES,
    DURABILITY_SITES,
    ChaosCrash,
    ChaosSchedule,
    chaos_hits,
    chaos_point,
    install_chaos,
    raise_chaos,
    reset_chaos,
)
from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.protocol import Request
from repro.service.replay import replay_log
from repro.service.wal import ReplayLogWriter

GRID = TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=4, cols=4)


@pytest.fixture(autouse=True)
def _clean_chaos():
    """Never leak an armed schedule into (or out of) a test."""
    reset_chaos()
    yield
    reset_chaos()


def _qos():
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=100.0, b_max=300.0, increment=100.0, utility=1.0
        ),
        dependability=DependabilityQoS(num_backups=1),
    )


def _establish(i):
    return Request(op="establish", req_id=i, src=0, dst=15, qos=_qos())


class TestSchedule:
    def test_from_spec_parses_sites_and_hits(self):
        sched = ChaosSchedule.from_spec("pre-fsync:3,mid-drain")
        assert sched.crashes == {"pre-fsync": 3, "mid-drain": 1}
        assert sched.describe() == "mid-drain:1,pre-fsync:3"

    @pytest.mark.parametrize(
        "spec", ["", "nowhere:1", "pre-fsync:0", "pre-fsync:x"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(SimulationError):
            ChaosSchedule.from_spec(spec)

    def test_from_seed_is_deterministic(self):
        for seed in range(20):
            a = ChaosSchedule.from_seed(seed)
            b = ChaosSchedule.from_seed(seed)
            assert a.crashes == b.crashes
            (site, hit), = a.crashes.items()
            assert site in DURABILITY_SITES
            assert 1 <= hit <= 8

    def test_from_seed_covers_all_durability_sites(self):
        seen = {
            next(iter(ChaosSchedule.from_seed(seed).crashes))
            for seed in range(200)
        }
        assert seen == set(DURABILITY_SITES)

    def test_trigger_matches_exact_hit_only(self):
        sched = ChaosSchedule({"mid-epoch": 2})
        assert not sched.trigger("mid-epoch", 1)
        assert sched.trigger("mid-epoch", 2)
        assert not sched.trigger("mid-epoch", 3)
        assert not sched.trigger("pre-fsync", 2)


class TestChaosPoint:
    def test_noop_when_unarmed(self):
        for site in CRASH_SITES:
            chaos_point(site)  # must not raise, must not count
        assert chaos_hits() == {}

    def test_counts_hits_and_fires_at_exact_hit(self):
        install_chaos(ChaosSchedule({"pre-reply": 3}), action=raise_chaos)
        chaos_point("pre-reply")
        chaos_point("pre-reply")
        chaos_point("pre-fsync")  # other sites count independently
        with pytest.raises(ChaosCrash) as err:
            chaos_point("pre-reply")
        assert err.value.site == "pre-reply" and err.value.hit == 3
        assert chaos_hits() == {"pre-reply": 3, "pre-fsync": 1}

    def test_unknown_site_is_a_bug_when_armed(self):
        install_chaos(ChaosSchedule({"pre-fsync": 1}), action=raise_chaos)
        with pytest.raises(SimulationError):
            chaos_point("made-up-site")

    def test_chaos_crash_is_not_an_exception(self):
        # `except Exception` must never swallow a chaos crash.
        assert not issubclass(ChaosCrash, Exception)


class TestInProcessCrashRecovery:
    """ChaosCrash through the real engine+WAL stack, then recovery."""

    def _drive_until_crash(self, wal_path, schedule, requests=8):
        install_chaos(schedule, action=raise_chaos)
        wal = ReplayLogWriter(wal_path, GRID)
        engine = ServiceEngine(GRID, EngineConfig(), wal=wal)
        applied = 0
        try:
            for i in range(requests):
                engine.apply_batch([_establish(i)])
                applied += 1
        except ChaosCrash as crash:
            return engine, applied, crash
        raise AssertionError("schedule never fired")

    def test_mid_epoch_crash_recovers_durable_prefix(self, tmp_path):
        # mid-epoch fires *before* applying the 3rd durably-logged
        # event: the WAL holds 3 events, the live manager applied 2.
        path = tmp_path / "wal.log"
        engine, applied, crash = self._drive_until_crash(
            path, ChaosSchedule({"mid-epoch": 3})
        )
        assert (crash.site, crash.hit) == ("mid-epoch", 3)
        assert applied == 2
        result = replay_log(path)
        assert result.events_applied == 3
        # Recovery equals a clean run over the same 3 requests.
        reference = ServiceEngine(GRID, EngineConfig())
        for i in range(3):
            reference.apply_sequential(_establish(i))
        assert result.digest == reference.digest()

    def test_post_fsync_crash_loses_no_durable_events(self, tmp_path):
        path = tmp_path / "wal.log"
        engine, applied, crash = self._drive_until_crash(
            path, ChaosSchedule({"post-fsync": 4})
        )
        assert (crash.site, crash.hit) == ("post-fsync", 4)
        # The 4th batch fsynced before the crash: all 4 events replay.
        assert replay_log(path).events_applied == 4

    def test_pre_fsync_crash_still_replays_cleanly(self, tmp_path):
        # Whatever prefix survives (in-process the write is visible),
        # the log must replay without errors and without a torn tail.
        path = tmp_path / "wal.log"
        self._drive_until_crash(path, ChaosSchedule({"pre-fsync": 2}))
        result = replay_log(path)
        assert not result.torn_tail
        assert result.events_applied >= 1
