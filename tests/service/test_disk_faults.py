"""Disk-fault plane: fault plans, dirty writers, degraded read-only mode."""

import asyncio

import pytest

from repro.errors import SimulationError
from repro.parallel.jobs import TopologySpec
from repro.service.chaos import (
    DiskFaultPlan,
    FaultyWALFile,
    corrupt_file,
    reset_chaos,
)
from repro.service.protocol import Request, decode_line, encode_line
from repro.service.replay import replay_log
from repro.service.server import AdmissionService, DegradedConfig, ServiceConfig
from repro.service.wal import ReplayLogReader, ReplayLogWriter, WALWriteError

GRID = TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=4, cols=4)

QOS = {"b_min": 100.0, "b_max": 300.0, "increment": 100.0, "utility": 1.0,
       "backups": 1}


@pytest.fixture(autouse=True)
def _clean_chaos():
    reset_chaos()
    yield
    reset_chaos()


class TestDiskFaultPlan:
    def test_from_spec_and_describe_round_trip(self):
        plan = DiskFaultPlan.from_spec("fsync-eio:2-4,write-short:7")
        assert plan.fsync_fault(2) and plan.fsync_fault(4)
        assert not plan.fsync_fault(1) and not plan.fsync_fault(5)
        assert plan.write_fault(7) == "short"
        assert plan.write_fault(6) is None
        assert DiskFaultPlan.from_spec(plan.describe()) == plan

    @pytest.mark.parametrize(
        "spec", ["", "fsync-eio", "melt-cpu:1", "fsync-eio:0", "fsync-eio:5-2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(SimulationError):
            DiskFaultPlan.from_spec(spec)

    def test_from_seed_is_deterministic(self):
        for seed in range(20):
            assert DiskFaultPlan.from_seed(seed) == DiskFaultPlan.from_seed(seed)
            plan = DiskFaultPlan.from_seed(seed)
            assert plan.fsync_eio and plan.fsync_eio[0][0] >= 2

    def test_enospc_beats_short_when_both_match(self):
        plan = DiskFaultPlan(write_enospc=((1, 1),), write_short=((1, 1),))
        assert plan.write_fault(1) == "enospc"


class TestFaultyWALFile:
    def test_injects_by_call_index(self, tmp_path):
        raw = open(  # repro-lint: disable=ART001 — fault-injection fixture
            tmp_path / "f.bin", "ab", buffering=0
        )
        fh = FaultyWALFile(raw, DiskFaultPlan(
            write_enospc=((2, 2),), write_short=((3, 3),), fsync_eio=((1, 1),)
        ))
        assert fh.write(b"abcd") == 4
        with pytest.raises(OSError):
            fh.write(b"efgh")  # call 2: ENOSPC, nothing written
        with pytest.raises(OSError):
            fh.write(b"ijkl")  # call 3: short, half written
        with pytest.raises(OSError):
            fh.sync()  # fsync call 1: EIO
        fh.sync()  # call 2: clean
        fh.close()
        # abcd + the torn half of ijkl; the ENOSPC write left no bytes.
        assert (tmp_path / "f.bin").read_bytes() == b"abcdij"


class TestDirtyWriter:
    def _events(self, start, n=1):
        return [
            (start + i, Request(op="fail", req_id=start + i, link=(0, 1)))
            for i in range(n)
        ]

    def test_fsync_fault_dirties_until_probed(self, tmp_path):
        path = tmp_path / "wal.log"
        # fsync 1 is the header; fsync 2 (first batch) fails.
        writer = ReplayLogWriter(
            path, GRID, disk_faults=DiskFaultPlan(fsync_eio=((2, 2),))
        )
        with pytest.raises(WALWriteError):
            writer.log_events(self._events(0))
        assert writer.dirty
        with pytest.raises(WALWriteError):
            writer.log_events(self._events(1))  # refused while dirty
        assert writer.probe()  # repair + fsync 3: clean again
        assert not writer.dirty
        writer.log_events(self._events(0))
        writer.close()
        assert ReplayLogReader(path).last_seq == 0

    def test_short_write_tears_then_repair_truncates(self, tmp_path):
        path = tmp_path / "wal.log"
        # write 1 is the header; write 2 tears mid-record.
        writer = ReplayLogWriter(
            path, GRID, disk_faults=DiskFaultPlan(write_short=((2, 2),))
        )
        durable = writer.durable_bytes
        with pytest.raises(WALWriteError):
            writer.log_events(self._events(0))
        assert path.stat().st_size > durable  # torn bytes on disk
        assert ReplayLogReader(path).torn_tail
        assert writer.repair()
        assert path.stat().st_size == durable
        reader = ReplayLogReader(path)
        assert not reader.torn_tail and reader.last_seq == -1
        writer.close()


class TestReappendVerification:
    """Satellite: re-opening a WAL re-verifies header and tail."""

    def _write_log(self, path):
        writer = ReplayLogWriter(path, GRID)
        writer.log_events(
            [(0, Request(op="fail", req_id=0, link=(0, 1)))]
        )
        writer.close()

    def test_torn_tail_refuses_reappend(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_log(path)
        with open(  # repro-lint: disable=ART001 — deliberate torn fixture
            path, "ab"
        ) as fh:
            fh.write(b'{"type":"event","seq":9')
        with pytest.raises(SimulationError, match="torn"):
            ReplayLogWriter(path, GRID)

    def test_corrupt_header_refuses_reappend(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_log(path)
        corrupt_file(path, flip_bits=[8 * 12 + 1])  # a bit inside the header
        with pytest.raises(SimulationError, match="header"):
            ReplayLogWriter(path, GRID)

    def test_clean_log_reappends_fine(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_log(path)
        writer = ReplayLogWriter(path, GRID)
        writer.log_events([(1, Request(op="repair", req_id=1, link=(0, 1)))])
        writer.close()
        assert ReplayLogReader(path).last_seq == 1


class TestDegradedMode:
    """Full in-process lifecycle: fault -> degraded -> probation -> healthy."""

    def _config(self, wal, journal_limit=16, **kwargs):
        return ServiceConfig(
            topology=GRID,
            wal_path=str(wal),
            degraded=DegradedConfig(
                probe_interval_s=0.02,
                probation_probes=2,
                retry_after_s=0.1,
                journal_limit=journal_limit,
            ),
            **kwargs,
        )

    async def _rpc(self, port, obj):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(encode_line(obj))
            await writer.drain()
            return decode_line(await reader.readline())
        finally:
            writer.close()

    def test_fsync_fault_degrades_then_rearms_losslessly(self, tmp_path):
        wal = tmp_path / "wal.log"
        # fsync calls: 1 = header, 2 = first admitted batch, 3 = EIO
        # (enter degraded), 4 = probe fails, 5-6 = probes succeed.
        plan = DiskFaultPlan.from_spec("fsync-eio:3-4")

        async def scenario():
            service = AdmissionService(
                self._config(wal, disk_faults=plan)
            )
            await service.start()
            port = service.port
            first = await self._rpc(port, {
                "op": "establish", "id": 1, "src": 0, "dst": 15, "qos": QOS,
            })
            assert first["ok"] and first["result"]["accepted"]
            cid = first["result"]["conn_id"]

            # This admission hits the faulting fsync: rejected, not lost.
            refused = await self._rpc(port, {
                "op": "establish", "id": 2, "src": 1, "dst": 14, "qos": QOS,
            })
            assert refused["error"] == "degraded"
            assert refused["retry_after"] > 0
            assert service.mode == "degraded"

            health = await self._rpc(port, {"op": "query", "id": 3,
                                            "what": "health"})
            assert health["result"]["mode"] == "degraded"
            ready = await self._rpc(port, {"op": "query", "id": 4,
                                           "what": "ready"})
            assert ready["error"] == "degraded"

            # Releasing ops still land (journaled, acked) while degraded.
            down = await self._rpc(port, {"op": "teardown", "id": 5,
                                          "conn_id": cid})
            assert down["ok"]

            # Probation loop re-arms once the injected window passes.
            for _ in range(200):
                ready = await self._rpc(port, {"op": "query", "id": 6,
                                               "what": "ready"})
                if ready.get("ok"):
                    break
                await asyncio.sleep(0.02)
            assert ready.get("ok"), f"never re-armed: {ready}"
            assert service.mode == "healthy"

            after = await self._rpc(port, {
                "op": "establish", "id": 7, "src": 2, "dst": 13, "qos": QOS,
            })
            assert after["ok"] and after["result"]["accepted"]

            stats = await self._rpc(port, {"op": "query", "id": 8,
                                           "what": "stats"})
            svc = stats["result"]["service"]
            assert svc["wal_faults"] == 1
            assert svc["rearms"] == 1
            assert svc["journal_flushed"] == 1
            assert svc["journal_lost"] == 0

            service.initiate_drain()
            await service.drained()
            return service.engine.digest()

        digest = asyncio.run(scenario())
        # Every acked mutation — including the journaled teardown —
        # replays from the WAL into the identical state.
        result = replay_log(wal)
        assert result.clean_shutdown
        assert result.digest == digest
        assert result.events_applied == 3  # establish, teardown, establish

    def test_journal_limit_rejects_releasing_ops_too(self, tmp_path):
        wal = tmp_path / "wal.log"
        # A disk that never recovers inside the test window.
        plan = DiskFaultPlan.from_spec("fsync-eio:3-1000")

        async def scenario():
            service = AdmissionService(
                self._config(wal, journal_limit=1, disk_faults=plan)
            )
            await service.start()
            port = service.port
            admitted = await self._rpc(port, {
                "op": "establish", "id": 1, "src": 0, "dst": 15, "qos": QOS,
            })
            cid = admitted["result"]["conn_id"]
            tripped = await self._rpc(port, {
                "op": "establish", "id": 2, "src": 1, "dst": 14, "qos": QOS,
            })
            assert tripped["error"] == "degraded"
            first_down = await self._rpc(port, {"op": "fail", "id": 3,
                                                "link": [0, 1]})
            assert first_down["ok"]  # fills the single journal slot
            second = await self._rpc(port, {"op": "teardown", "id": 4,
                                            "conn_id": cid})
            assert second["error"] == "degraded"
            assert service.journal_lost == 0
            service.initiate_drain()
            await service.drained()
            # The disk never recovered: the drain records the loss.
            assert service.journal_lost == 1

        asyncio.run(scenario())
