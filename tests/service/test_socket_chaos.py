"""Socket chaos: the protocol layer survives a misbehaving network."""

import asyncio

import pytest

from repro.parallel.jobs import TopologySpec
from repro.service.chaos import ChaosProxy, ProxyChaosConfig, reset_chaos
from repro.service.protocol import decode_line, encode_line
from repro.service.server import AdmissionService, ServiceConfig

GRID = TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=4, cols=4)

QOS = {"b_min": 100.0, "b_max": 300.0, "increment": 100.0, "utility": 1.0,
       "backups": 1}


@pytest.fixture(autouse=True)
def _clean_chaos():
    reset_chaos()
    yield
    reset_chaos()


async def _rpc(port, obj):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_line(obj))
        await writer.drain()
        return decode_line(await reader.readline())
    finally:
        writer.close()


def _quiet(**overrides):
    base = dict(delay_prob=0.0, max_delay_s=0.0, garbage_prob=0.0,
                drop_prob=0.0, half_close_prob=0.0)
    base.update(overrides)
    return ProxyChaosConfig(**base)


class TestChaosProxy:
    def test_garbage_frame_is_answered_not_fatal(self):
        async def scenario():
            service = AdmissionService(ServiceConfig(topology=GRID))
            await service.start()
            proxy = ChaosProxy(
                "127.0.0.1", service.port, seed=1,
                config=_quiet(garbage_prob=1.0),
            )
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            writer.write(encode_line({"op": "query", "id": 1,
                                      "what": "health"}))
            await writer.drain()
            # The proxy slipped a garbage frame in first; the server
            # answers both, in order, on the same connection.
            garbage_answer = decode_line(await reader.readline())
            real_answer = decode_line(await reader.readline())
            writer.close()
            assert garbage_answer["error"] == "bad-request"
            assert real_answer["ok"] and real_answer["result"]["seq"] == 0
            assert proxy.stats.garbage_injected == 1
            await proxy.close()
            # The batcher is unpoisoned: a direct mutation still works.
            resp = await _rpc(service.port, {
                "op": "establish", "id": 2, "src": 0, "dst": 15, "qos": QOS,
            })
            assert resp["ok"] and resp["result"]["accepted"]
            service.initiate_drain()
            await service.drained()

        asyncio.run(scenario())

    def test_dropped_connection_leaves_server_healthy(self):
        async def scenario():
            service = AdmissionService(ServiceConfig(topology=GRID))
            await service.start()
            proxy = ChaosProxy(
                "127.0.0.1", service.port, seed=2,
                config=_quiet(drop_prob=1.0, drop_after_max_bytes=1),
            )
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            writer.write(encode_line({"op": "query", "id": 1,
                                      "what": "health"}))
            await writer.drain()
            # The proxy aborts us mid-exchange: EOF or reset, no hang.
            try:
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
            except (OSError, asyncio.IncompleteReadError):
                data = b""
            del data  # whatever survived the abort is unspecified
            writer.close()
            assert proxy.stats.dropped == 1
            await proxy.close()
            health = await _rpc(service.port, {"op": "query", "id": 2,
                                               "what": "health"})
            assert health["ok"]
            service.initiate_drain()
            await service.drained()

        asyncio.run(scenario())

    def test_seeded_storm_is_survivable_and_reproducible(self):
        """A burst of misbehaving connections: the server answers what
        it can, never dies, and the proxy's misbehavior sequence is a
        pure function of its seed."""

        async def storm(seed):
            service = AdmissionService(ServiceConfig(topology=GRID))
            await service.start()
            proxy = ChaosProxy("127.0.0.1", service.port, seed=seed)
            await proxy.start()
            answered = 0
            for i in range(16):
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    writer.write(encode_line({
                        "op": "establish", "id": i,
                        "src": i % 16, "dst": (i + 5) % 16, "qos": QOS,
                    }))
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=5.0
                    )
                    if line and decode_line(line).get("id") == i:
                        answered += 1
                    writer.close()
                except (OSError, asyncio.TimeoutError, ValueError):
                    pass
            await proxy.close()
            health = await _rpc(service.port, {"op": "query", "id": 99,
                                               "what": "health"})
            assert health["ok"]
            service.initiate_drain()
            await service.drained()
            stats = proxy.stats
            return (answered, stats.garbage_injected, stats.dropped,
                    stats.half_closed)

        first = asyncio.run(storm(7))
        second = asyncio.run(storm(7))
        assert first[0] > 0  # some requests made it through the storm
        # Same seed, same misbehavior plan.
        assert first[1:] == second[1:]

        asyncio.run(storm(8))  # a different storm also survives

    def test_unterminated_flood_ends_connection_only(self):
        """A client that streams garbage with no newline overruns the
        server's readline limit; that connection dies, the server does
        not."""

        async def scenario():
            service = AdmissionService(ServiceConfig(topology=GRID))
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            try:
                writer.write(b"\xff" * (2**17))  # stream limit is 64 KiB
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                # Connection closed, nothing parsed as a frame.
                assert data == b""
            except OSError:
                pass  # an outright reset mid-flood is just as good
            writer.close()
            health = await _rpc(service.port, {"op": "query", "id": 1,
                                               "what": "health"})
            assert health["ok"]
            service.initiate_drain()
            await service.drained()

        asyncio.run(scenario())
