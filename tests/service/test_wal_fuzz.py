"""Property fuzz of the WAL tear rule (hypothesis).

The invariant under fuzz: whatever a crash does to the *tail* of a
replay log — truncation at any byte, bit flips in the final bytes —
recovery yields exactly a prefix of the original durable history.
Never an error on a pure truncation, never a fabricated or altered
record (that is what the per-record CRC buys), and damage to earlier,
durable lines is loudly fatal instead of silently absorbed.

Uses ``tempfile`` directly rather than ``tmp_path`` because hypothesis
re-runs the test body many times per fixture instance.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.parallel.jobs import TopologySpec
from repro.service.chaos import corrupt_file
from repro.service.protocol import Request
from repro.service.wal import ReplayLogReader, ReplayLogWriter

GRID = TopologySpec(kind="grid", capacity=1000.0, seed=0, nodes=4, cols=4)


def _build_log() -> bytes:
    """A log of header + 6 event lines (no epoch/shutdown markers)."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "wal.log")
        writer = ReplayLogWriter(path, GRID)
        for seq in range(6):
            op = "fail" if seq % 2 == 0 else "repair"
            writer.log_events([(seq, Request(op=op, req_id=seq, link=(0, 1)))])
        writer.close()
        with open(path, "rb") as fh:
            return fh.read()


RAW = _build_log()
#: End offset (exclusive, includes the newline) of every line.
LINE_ENDS = [i + 1 for i, b in enumerate(RAW) if b == ord(b"\n")]
HEADER_END = LINE_ENDS[0]
FINAL_LINE_START = LINE_ENDS[-2]
EXPECTED_SEQS = list(range(6))
EXPECTED_EVENTS = [
    (seq, "fail" if seq % 2 == 0 else "repair") for seq in EXPECTED_SEQS
]


def _read(data: bytes) -> ReplayLogReader:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "wal.log")
        with open(path, "wb") as fh:  # repro-lint: disable=ART001 — fixture
            fh.write(data)
        return ReplayLogReader(path)


class TestTruncationFuzz:
    @given(cut=st.integers(min_value=HEADER_END, max_value=len(RAW)))
    @settings(max_examples=200, deadline=None)
    def test_any_truncation_recovers_exact_durable_prefix(self, cut):
        reader = _read(RAW[:cut])
        boundary = max(end for end in LINE_ENDS if end <= cut)
        survivors = sum(1 for end in LINE_ENDS[1:] if end <= cut)
        assert [seq for seq, _ in reader.events()] == EXPECTED_SEQS[:survivors]
        assert reader.valid_bytes == boundary
        assert reader.torn_tail == (cut != boundary)

    def test_truncation_inside_header_is_fatal(self):
        with pytest.raises(SimulationError):
            _read(RAW[: HEADER_END - 2])


class TestBitFlipFuzz:
    @staticmethod
    def _flip(bits):
        """Apply the flips; also report whether any flip changed the
        line *structure* (created or destroyed a newline byte)."""
        data = bytearray(RAW)
        structural = False
        for bit in bits:
            byte = bit // 8
            if data[byte] == 0x0A or data[byte] ^ (1 << (bit % 8)) == 0x0A:
                structural = True
            data[byte] ^= 1 << (bit % 8)
        return bytes(data), structural

    @given(
        bits=st.lists(
            st.integers(min_value=HEADER_END * 8, max_value=len(RAW) * 8 - 1),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_flips_never_rewrite_history(self, bits):
        """Flipped tail bytes either recover a strict prefix of the
        original history or raise; no outcome fabricates or alters a
        surviving record.  Damage confined to the final line (without
        splitting it into several lines) recovers all-but-last exactly."""
        data, structural = self._flip(bits)
        final_line_only = all(bit >= FINAL_LINE_START * 8 for bit in bits)
        try:
            reader = _read(data)
        except SimulationError:
            # Legal only when durable history was hit, or a flip faked
            # a line break (two damaged tail lines exceed the one-torn-
            # record tolerance — conservatively fatal by design).
            assert not final_line_only or structural
            return
        recovered = [(seq, req.op) for seq, req in reader.events()]
        assert recovered == EXPECTED_EVENTS[: len(recovered)]
        if final_line_only:
            # The CRC unmasks the damaged final line; everything durable
            # before it survives untouched.
            assert recovered == EXPECTED_EVENTS[:-1]
            assert reader.torn_tail
            assert reader.valid_bytes == FINAL_LINE_START

    @given(bit=st.integers(min_value=HEADER_END * 8, max_value=len(RAW) * 8 - 1))
    @settings(max_examples=200, deadline=None)
    def test_single_flip_is_always_detected(self, bit):
        """A one-bit flip can never slip past CRC32: in the final line
        it costs exactly that line; anywhere earlier it is fatal."""
        data, structural = self._flip([bit])
        if structural:
            # Line structure changed; covered by the list-of-flips
            # property above.
            return
        if bit >= FINAL_LINE_START * 8:
            reader = _read(data)
            assert [(s, r.op) for s, r in reader.events()] == EXPECTED_EVENTS[:-1]
        else:
            with pytest.raises(SimulationError):
                _read(data)

    def test_corrupt_file_helper_matches_manual_flips(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "wal.log")
            with open(path, "wb") as fh:  # repro-lint: disable=ART001 — fixture
                fh.write(RAW)
            corrupt_file(path, flip_bits=[HEADER_END * 8 + 5],
                         truncate_to=len(RAW) - 3)
            with open(path, "rb") as fh:
                data = fh.read()
        assert len(data) == len(RAW) - 3
        expected = RAW[HEADER_END] ^ (1 << 5)
        assert data[HEADER_END] == expected
