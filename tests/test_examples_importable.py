"""Smoke tests: every example script parses, imports and defines main().

Full example runs take tens of seconds each; the unit suite only checks
they stay importable and wired to real library APIs (a renamed function
would break the import, not just the run).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "video_service",
        "failure_recovery",
        "analytic_vs_simulation",
        "capacity_planning",
        "model_sensitivity",
        "runtime_scheduling",
    } <= names
