"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package,
so ``pip install -e .`` cannot build a PEP 660 editable wheel.  This
shim lets ``python setup.py develop`` (which pip falls back to) install
the package in editable mode; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
