"""Deterministic admission engine: validated requests -> manager events.

:class:`ServiceEngine` is the piece both the live server and offline
recovery share.  It owns one manager (either core, array by default),
assigns the global event sequence, validates requests *before* they
reach the write-ahead log (so the log only ever contains events that
apply deterministically), applies them — batched into the array core's
micro-epochs — and shapes responses.

Determinism contract (what makes `kill -9` recovery bitwise-exact):

* No wall clock, no RNG.  The manager's event timestamp is the event's
  sequence number (``manager.now = float(seq)``), so impact records and
  any derived traces are functions of the request sequence alone.
* Validation is a pure function of current manager state; an event is
  only logged once it is known to apply (establish requests may still
  be *rejected* by admission control — a rejection is itself a
  deterministic outcome and is logged, so replay reproduces the
  rejected sequence numbers too).
* Micro-epoch batching is bitwise-identical to sequential application
  (PR 7's twin proofs), so recovery may replay a log sequentially and
  land on the same state the batched live run reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.channels import make_manager
from repro.channels.digest import manager_state_digest
from repro.errors import ReproError, SimulationError
from repro.parallel.jobs import TopologySpec
from repro.service.chaos import chaos_point
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Request,
    error_response,
    ok_response,
)
from repro.service.wal import MANAGER_KWARG_KEYS, ReplayLogWriter, WALWriteError


@dataclass(frozen=True)
class EngineConfig:
    """Engine construction knobs.

    Attributes:
        core: Manager core (``array``/``object``); array is the service
            default because micro-epoch batching lives there.
        batch_max: Largest batch one micro-epoch may absorb; the server
            drains at most this many queued requests per epoch.
        manager_kwargs: Forwarded to :func:`~repro.channels.make_manager`
            (``policy``, ``routing``, ...); recorded in the WAL header
            so recovery rebuilds the same manager.
    """

    core: str = "array"
    batch_max: int = 64
    manager_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise SimulationError(f"batch_max must be >= 1, got {self.batch_max}")
        unknown = set(self.manager_kwargs) - set(MANAGER_KWARG_KEYS)
        if unknown:
            raise SimulationError(
                f"unknown manager kwargs {sorted(unknown)}; "
                f"choose from {MANAGER_KWARG_KEYS}"
            )


class ServiceEngine:
    """One manager plus the WAL discipline around it.

    Not thread-safe; the asyncio server applies batches from a single
    task, and replay is single-threaded by construction.
    """

    def __init__(
        self,
        topology: TopologySpec,
        config: Optional[EngineConfig] = None,
        wal: Optional[ReplayLogWriter] = None,
    ) -> None:
        self.topology = topology
        self.config = config or EngineConfig()
        self.net = topology.build()
        self.manager = make_manager(
            self.net, core=self.config.core, **self.config.manager_kwargs
        )
        self.wal = wal
        #: Next event sequence number (== number of events ever applied).
        self.seq = 0

    # ------------------------------------------------------------------
    # validation (pure, pre-WAL)
    # ------------------------------------------------------------------
    def validate(self, request: Request) -> Optional[Tuple[str, str]]:
        """``None`` when the mutation may be logged+applied, else
        ``(error_code, message)``.

        Cheap checks only — full admission control runs at apply time.
        The point is that anything passing here applies without raising,
        so the WAL never records an event whose apply outcome could
        depend on *when* we crashed.
        """
        if request.op == "establish":
            for node in (request.src, request.dst):
                if not self.net.has_node(node):
                    return "bad-request", f"unknown node {node}"
            if request.src == request.dst:
                return "bad-request", "src and dst must differ"
            return None
        if request.op == "teardown":
            if request.conn_id not in self.manager.connections:
                return "not-live", f"connection {request.conn_id} is not live"
            return None
        # fail / repair
        assert request.link is not None
        u, v = request.link
        if not self.net.has_link(u, v):
            return "bad-request", f"no link {list(request.link)}"
        failed = self.manager.state.link(request.link).failed
        if request.op == "fail" and failed:
            return "link-state", f"link {list(request.link)} is already failed"
        if request.op == "repair" and not failed:
            return "link-state", f"link {list(request.link)} is not failed"
        return None

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def _apply_one(self, seq: int, request: Request) -> Dict[str, Any]:
        """Apply one durably-logged mutation; returns the result body."""
        self.manager.now = float(seq)
        if request.op == "establish":
            assert request.qos is not None
            _, impact = self.manager.request_connection(
                request.src, request.dst, request.qos
            )
            return {
                "seq": seq,
                "accepted": impact.accepted,
                "conn_id": impact.conn_id if impact.accepted else None,
            }
        if request.op == "teardown":
            self.manager.terminate_connection(request.conn_id)
            return {"seq": seq, "conn_id": request.conn_id}
        if request.op == "fail":
            impact = self.manager.fail_link(request.link)
            return {
                "seq": seq,
                "link": list(request.link or ()),
                "activated": list(impact.activated),
                "dropped": list(impact.dropped),
            }
        self.manager.repair_link(request.link)
        return {"seq": seq, "link": list(request.link or ())}

    def apply_batch(
        self,
        batch: List[Request],
        journal: Optional[List[Tuple[int, Request]]] = None,
    ) -> List[Dict[str, Any]]:
        """Validate, durably log, then epoch-apply one batch of mutations.

        Returns one response envelope per request, in order.  Requests
        failing validation are answered with an error and *not* logged;
        the rest are logged write-ahead (single fsync for the whole
        batch), applied inside one micro-epoch, and answered from their
        impact records.

        With ``journal`` set (degraded mode), the WAL is not touched:
        the batch's ``(seq, request)`` pairs are appended to the journal
        instead, to be flushed to the WAL when the disk recovers, and no
        epoch marker is written.  If the WAL append itself fails, the
        assigned sequence numbers are rolled back before the
        :class:`~repro.service.wal.WALWriteError` propagates — nothing
        was applied, so the numbers must be reusable by the degraded
        path or the live log would have a hole.
        """
        to_apply: List[Tuple[int, Request]] = []
        slots: List[Optional[Dict[str, Any]]] = []
        for request in batch:
            problem = self.validate(request)
            if problem is not None:
                code, message = problem
                slots.append(error_response(request.req_id, code, message))
                continue
            to_apply.append((self.seq, request))
            self.seq += 1
            slots.append(None)
        if journal is not None:
            journal.extend(to_apply)
        elif self.wal is not None:
            try:
                self.wal.log_events(to_apply)
            except WALWriteError:
                self.seq -= len(to_apply)
                raise
        responses: List[Dict[str, Any]] = []
        apply_iter = iter(to_apply)
        self.manager.begin_micro_epoch()
        try:
            for request, slot in zip(batch, slots):
                if slot is not None:
                    responses.append(slot)
                    continue
                seq, _ = next(apply_iter)
                chaos_point("mid-epoch")
                try:
                    responses.append(
                        ok_response(request.req_id, self._apply_one(seq, request))
                    )
                except ReproError as exc:
                    # Deterministic, non-mutating apply failure: an
                    # earlier event in this very batch invalidated the
                    # target (e.g. a failure dropped the connection a
                    # later teardown names).  Replay rejects the same
                    # event at validation, reaching the same state.
                    problem = self.validate(request)
                    code, message = problem if problem else ("internal", str(exc))
                    responses.append(error_response(request.req_id, code, message))
        finally:
            self.manager.end_micro_epoch()
        if journal is None and self.wal is not None and to_apply:
            self.wal.log_epoch(to_apply[-1][0])
        return responses

    def apply_sequential(self, request: Request) -> Dict[str, Any]:
        """Single-request flavour of :meth:`apply_batch` (replay path)."""
        return self.apply_batch([request])[0]

    # ------------------------------------------------------------------
    # queries (read-only, answered off-queue)
    # ------------------------------------------------------------------
    def query(self, request: Request) -> Dict[str, Any]:
        """Answer one read-only query against current state."""
        what = request.what
        if what in ("health", "ready"):
            return ok_response(request.req_id, {"status": "ok", "seq": self.seq})
        if what == "info":
            return ok_response(
                request.req_id,
                {
                    "protocol": PROTOCOL_VERSION,
                    "core": self.config.core,
                    "batch_max": self.config.batch_max,
                    "topology": self.topology.kind,
                    "num_nodes": self.net.num_nodes,
                    "num_links": self.net.num_links,
                    "links_sample": [list(lid) for lid in self.net.link_ids()[:8]],
                    "seq": self.seq,
                },
            )
        if what == "stats":
            return ok_response(
                request.req_id,
                {
                    "seq": self.seq,
                    "num_live": self.manager.num_live,
                    "average_live_bandwidth": self.manager.average_live_bandwidth(),
                    "manager": vars(self.manager.stats).copy(),
                },
            )
        if what == "digest":
            return ok_response(
                request.req_id,
                {"seq": self.seq, "digest": manager_state_digest(self.manager)},
            )
        # connection
        if request.conn_id not in self.manager.connections:
            return error_response(
                request.req_id, "not-live", f"connection {request.conn_id} is not live"
            )
        conn = self.manager.connections[request.conn_id]
        return ok_response(
            request.req_id,
            {
                "conn_id": request.conn_id,
                "level": conn.level,
                "bandwidth": conn.bandwidth,
                "on_backup": conn.on_backup,
                "primary_path": list(conn.primary_path),
            },
        )

    def digest(self) -> str:
        """Bitwise state digest (see :mod:`repro.channels.digest`)."""
        return manager_state_digest(self.manager)

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
