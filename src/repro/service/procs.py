"""Subprocess plumbing shared by the supervisor and the chaos soak.

Both spawn real ``repro serve`` processes (chaos crash points only
prove anything when the abort kills an actual OS process with real file
descriptors), read the JSON startup banner, drive the JSON-per-line
protocol over a blocking socket, and tear the process down without
leaking it.  This module owns that plumbing so
:mod:`repro.service.supervisor` and :mod:`repro.service.soak` stay
about *policy*.

Timing plane: deadlines on banner reads and process waits come from
the monotonic clock — this module is process babysitting, not decision
logic, and is DET003-exempt by path like the rest of the serving shell.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import SimulationError
from repro.service.protocol import decode_line, encode_line


def serve_argv(
    topology_arg: str,
    wal_path: Union[str, Path],
    extra: Sequence[str] = (),
) -> List[str]:
    """The ``repro serve`` command line the harnesses spawn."""
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--topology",
        topology_arg,
        "--wal",
        str(wal_path),
        "--port",
        "0",
        *extra,
    ]


def spawn_server(argv: Sequence[str]) -> "subprocess.Popen[str]":
    """Start a server subprocess with ``src/`` importable, banner on stdout."""
    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        list(argv),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def read_banner(
    proc: "subprocess.Popen[str]", timeout_s: float = 60.0
) -> Dict[str, Any]:
    """Read the one-line JSON ``listening`` banner, or raise with stderr.

    A crashed-at-startup child (e.g. a ``post-listen`` chaos schedule
    re-armed on restart) yields EOF; the child's stderr tail is folded
    into the exception so the caller's report says *why*.  A child that
    hangs silently (no banner, no exit) is killed at the deadline
    rather than hanging the harness.
    """
    import select

    assert proc.stdout is not None
    deadline = time.monotonic() + timeout_s
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            proc.kill()
            proc.wait(timeout=timeout_s)
            raise SimulationError(
                f"server produced no startup banner within {timeout_s}s"
            )
        ready, _, _ = select.select([proc.stdout], [], [], remaining)
        if ready:
            break
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=timeout_s)
        stderr_tail = ""
        if proc.stderr is not None:
            stderr_tail = proc.stderr.read()[-2000:]
        raise SimulationError(
            f"server exited (code {proc.returncode}) before announcing "
            f"readiness; stderr tail: {stderr_tail!r}"
        )
    banner = json.loads(line)
    if banner.get("event") != "listening":
        raise SimulationError(f"unexpected startup banner {banner!r}")
    return dict(banner)


def wait_exit(proc: "subprocess.Popen[str]", timeout_s: float = 60.0) -> int:
    """Wait for exit, escalating SIGKILL on timeout; returns the code."""
    try:
        return proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait(timeout=timeout_s)


def terminate(proc: "subprocess.Popen[str]", timeout_s: float = 60.0) -> int:
    """SIGTERM (graceful drain) with a SIGKILL escalation."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    return wait_exit(proc, timeout_s)


def drain_stdout(proc: "subprocess.Popen[str]") -> List[Dict[str, Any]]:
    """Collect remaining stdout JSON lines (e.g. the ``drained`` banner)."""
    assert proc.stdout is not None
    events = []
    for line in proc.stdout.read().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


class ScriptClient:
    """Blocking JSON-per-line client for scripted request sequences.

    The soak driver uses one of these *sequentially* — each request
    waits for its response — so every live batch holds exactly one
    event and chaos hit counts are deterministic in the request
    sequence, not in racing arrival timing.
    """

    def __init__(self, port: int, host: str = "127.0.0.1", timeout_s: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self.file = self.sock.makefile("rb")

    def rpc(self, obj: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """One request/response; ``None`` when the server died mid-call."""
        try:
            self.sock.sendall(encode_line(obj))
            line = self.file.readline()
        except OSError:
            return None
        if not line:
            return None
        response = decode_line(line)
        return response if isinstance(response, dict) else None

    def send_only(self, obj: Dict[str, Any]) -> bool:
        try:
            self.sock.sendall(encode_line(obj))
            return True
        except OSError:
            return False

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
