"""Offline replay and crash recovery for the admission service.

A replay log (see :mod:`repro.service.wal`) plus the determinism
contract of :class:`~repro.service.engine.ServiceEngine` means any live
run is also an offline batch campaign:

* :func:`replay_log` rebuilds a fresh engine and applies every durable
  event sequentially — bitwise-identical to the live run's batched
  application (PR 7's micro-epoch equivalence), so the resulting
  digest *is* the live service's state digest.
* :func:`recover_engine` is what a restarted service calls: replay the
  log, then re-attach an append-mode WAL writer and continue the
  sequence numbering where the durable history ends.  Events that were
  received but never durably logged before the crash are simply lost —
  their clients never got a response, which is the contract.
* :func:`export_campaign` normalizes a live log into a standalone
  batch-campaign file: torn tails dropped, epoch/shutdown markers
  stripped, sequence numbers renumbered contiguously.  The output is
  itself a valid replay log, so the same tooling consumes it
  (``repro replay`` both replays and exports).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.parallel.checkpoint import atomic_write_text
from repro.service.chaos import DiskFaultPlan
from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.wal import (
    WAL_VERSION,
    ReplayLogReader,
    ReplayLogWriter,
    encode_record,
    request_to_record,
    topology_to_dict,
)


@dataclass
class ReplayResult:
    """Outcome of replaying one log into a fresh engine.

    Attributes:
        engine: The rebuilt engine (no WAL attached).
        events_applied: Number of durable events replayed.
        accepted: How many of the replayed establish events were
            admitted (sanity signal for campaign conversion).
        clean_shutdown: Whether the log ended with a drain marker.
        torn_tail: Whether a partial final record was discarded.
        digest: Bitwise state digest after replay.
    """

    engine: ServiceEngine
    events_applied: int
    accepted: int
    clean_shutdown: bool
    torn_tail: bool
    digest: str


def _engine_config(reader: ReplayLogReader, batch_max: int = 64) -> EngineConfig:
    return EngineConfig(
        core=reader.core, batch_max=batch_max, manager_kwargs=reader.manager_kwargs
    )


def replay_log(path: Union[str, Path]) -> ReplayResult:
    """Rebuild the manager state a log describes, from nothing.

    Applies events one per micro-epoch (i.e. effectively sequentially);
    bitwise-identical to the live run's batched application.
    """
    reader = ReplayLogReader(path)
    engine = ServiceEngine(reader.topology, _engine_config(reader), wal=None)
    events = 0
    accepted = 0
    for seq, request in reader.events():
        engine.seq = seq
        response = engine.apply_sequential(request)
        events += 1
        if request.op == "establish" and response.get("result", {}).get("accepted"):
            accepted += 1
    return ReplayResult(
        engine=engine,
        events_applied=events,
        accepted=accepted,
        clean_shutdown=reader.clean_shutdown,
        torn_tail=reader.torn_tail,
        digest=engine.digest(),
    )


def recover_engine(
    path: Union[str, Path],
    batch_max: Optional[int] = None,
    disk_faults: Optional[DiskFaultPlan] = None,
) -> ServiceEngine:
    """Recover a service engine from its WAL and keep appending to it.

    Replays every durable event, then attaches an append-mode writer to
    the same file (the header is only written on empty files, so
    durable history is preserved) and resumes sequence numbering after
    the last durable event.  A torn tail is truncated away first —
    appending after torn bytes would corrupt the next record.
    """
    reader = ReplayLogReader(path)
    if reader.torn_tail:
        # Pre-attach tear surgery: the writer re-verifies header and tail
        # when it opens the file, so this is the one sanctioned truncate
        # outside the WAL layer.
        os.truncate(path, reader.valid_bytes)  # repro-lint: disable=DUR003 — recovery-time tear removal; ReplayLogWriter re-verifies the tail on open
    result = replay_log(path)
    engine = result.engine
    if batch_max is not None:
        engine.config = EngineConfig(
            core=engine.config.core,
            batch_max=batch_max,
            manager_kwargs=engine.config.manager_kwargs,
        )
    engine.wal = ReplayLogWriter(
        path,
        engine.topology,
        manager_kwargs=engine.config.manager_kwargs,
        core=engine.config.core,
        disk_faults=disk_faults,
    )
    return engine


def export_campaign(
    log_path: Union[str, Path], out_path: Union[str, Path]
) -> Dict[str, Any]:
    """Convert a live replay log into a normalized batch-campaign file.

    The output is a clean replay log: same header (modulo formatting),
    only event records, contiguous sequence numbers from 0, one
    trailing shutdown marker.  Returns a small summary dict.
    """
    reader = ReplayLogReader(log_path)
    header = {
        "type": "header",
        "version": WAL_VERSION,
        "core": reader.core,
        "topology": topology_to_dict(reader.topology),
        "manager": reader.manager_kwargs,
    }
    chunks: List[bytes] = [encode_record(header)]
    count = 0
    for _, request in reader.events():
        chunks.append(encode_record(request_to_record(count, request)))
        count += 1
    chunks.append(encode_record({"type": "shutdown", "seq_end": count - 1}))
    atomic_write_text(Path(out_path), b"".join(chunks).decode("utf-8"))
    return {
        "events": count,
        "source_clean_shutdown": reader.clean_shutdown,
        "source_torn_tail": reader.torn_tail,
        "out": str(out_path),
    }
