"""Always-on admission-control service over the elastic-QoS manager.

The paper's manager is used *prescriptively* here: a long-running
asyncio service accepts live establish/teardown/failure/repair requests
over a JSON-per-line socket protocol, batches them into the array
core's deterministic micro-epochs, and answers admission decisions —
with the robustness shell a real deployment needs:

* **backpressure** — a bounded request queue with utility-aware load
  shedding (:mod:`repro.service.shedding`): a saturated service rejects
  with a ``retry_after`` hint instead of queueing unboundedly,
  mirroring the paper's degrade-don't-die semantics;
* **deadline budgets** — every queued request carries a deadline; work
  that would be answered too late is expired instead of applied, so a
  stuck client or pathological request cannot stall an epoch;
* **crash recovery** — an append-only write-ahead replay log
  (:mod:`repro.service.wal`) flushed per epoch: a ``kill -9`` mid-run
  recovers by replaying the log into a bitwise-identical manager state,
  and any live trace converts into an offline batch campaign
  (:mod:`repro.service.replay`, ``repro replay``);
* **operability** — graceful drain on SIGTERM, health/readiness
  probes, decision-latency telemetry (p50/p99), and a load-generator
  client (:mod:`repro.service.loadgen`, ``repro loadgen``) that
  survives a mid-run server death with bounded reconnects;
* **fault tolerance under test** — a deterministic chaos layer
  (:mod:`repro.service.chaos`): seeded crash schedules aborting the
  process at named durability boundaries, injected WAL disk faults
  that flip the server into a degraded read-only mode with
  probation-based re-arm (:mod:`repro.service.server`), and a
  misbehaving socket proxy; plus a supervised restart loop
  (:mod:`repro.service.supervisor`, ``repro supervise``) and a seeded
  chaos-soak runner (:mod:`repro.service.soak`, ``repro chaos``) that
  assert recovery is bitwise on every path.

Layering note (enforced by ``repro.lint`` DET003): the *decision*
modules — :mod:`protocol`, :mod:`shedding`, :mod:`wal`,
:mod:`engine`, :mod:`replay`, and :mod:`chaos` (pure seeded mechanism)
— are wall-clock-free, so a replayed log reproduces the live run bit
for bit; only the serving shell (:mod:`server`, :mod:`telemetry`,
:mod:`loadgen`) and the process harnesses (:mod:`procs`,
:mod:`supervisor`, :mod:`soak`) may read real time.
"""

from __future__ import annotations

from repro.service.chaos import (
    CHAOS_EXIT_CODE,
    CRASH_SITES,
    ChaosCrash,
    ChaosProxy,
    ChaosSchedule,
    DiskFaultPlan,
    chaos_point,
    install_chaos,
    install_disk_faults,
    reset_chaos,
    uninstall_chaos,
)
from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
    qos_from_dict,
    qos_to_dict,
)
from repro.service.replay import ReplayResult, recover_engine, replay_log
from repro.service.shedding import BackpressureConfig, ShedDecision, admit_decision
from repro.service.supervisor import ServeSupervisor, SupervisorPolicy, SupervisorReport
from repro.service.wal import (
    ReplayLogReader,
    ReplayLogWriter,
    WALWriteError,
    parse_topology_arg,
)
from repro.service.server import AdmissionService, DegradedConfig, ServiceConfig

__all__ = [
    "AdmissionService",
    "BackpressureConfig",
    "CHAOS_EXIT_CODE",
    "CRASH_SITES",
    "ChaosCrash",
    "ChaosProxy",
    "ChaosSchedule",
    "DegradedConfig",
    "DiskFaultPlan",
    "EngineConfig",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReplayLogReader",
    "ReplayLogWriter",
    "ReplayResult",
    "Request",
    "ServeSupervisor",
    "ServiceConfig",
    "ServiceEngine",
    "ShedDecision",
    "SupervisorPolicy",
    "SupervisorReport",
    "WALWriteError",
    "admit_decision",
    "chaos_point",
    "decode_line",
    "encode_line",
    "error_response",
    "install_chaos",
    "install_disk_faults",
    "ok_response",
    "parse_request",
    "parse_topology_arg",
    "qos_from_dict",
    "qos_to_dict",
    "recover_engine",
    "replay_log",
    "reset_chaos",
    "uninstall_chaos",
]
