"""Supervised restart loop for the admission service.

``repro supervise`` keeps one ``repro serve`` child alive across
crashes, with the three classic guard rails:

* **restart budget** — at most ``max_restarts`` restarts, ever;
* **exponential backoff** — ``backoff_base_s * 2^k`` (capped) between
  restarts, reset once a child stays up past ``min_healthy_uptime_s``;
* **crash-loop detection** — ``crash_loop_threshold`` consecutive
  short-lived children is a crash loop and stops the supervisor
  immediately (restarting faster won't fix a deterministic startup
  crash).

On every restart the supervisor cross-checks recovery: it replays the
WAL offline *before* starting the child, then compares the child's
live digest (queried right after the banner) against that replay
digest.  A mismatch means recovery is not bitwise — the one invariant
this whole stack exists for — and the supervisor refuses to continue.

``chaos_once`` strips ``--chaos-crash``/``--chaos-seed`` flags from the
child argv after the first crash, modeling a one-shot fault; leave it
off to let a schedule crash every incarnation (how the crash-loop path
is tested).
"""

from __future__ import annotations

import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import SimulationError
from repro.service.procs import (
    ScriptClient,
    drain_stdout,
    read_banner,
    spawn_server,
    terminate,
    wait_exit,
)
from repro.service.replay import replay_log


@dataclass(frozen=True)
class SupervisorPolicy:
    """Guard-rail knobs for :class:`ServeSupervisor`."""

    max_restarts: int = 8
    backoff_base_s: float = 0.2
    backoff_cap_s: float = 10.0
    crash_loop_threshold: int = 3
    min_healthy_uptime_s: float = 2.0
    ready_timeout_s: float = 60.0
    verify_digest: bool = True
    chaos_once: bool = True


@dataclass
class SupervisorReport:
    """What one supervisor run did and why it stopped.

    ``outcome`` is one of ``clean-exit``, ``restart-budget-exhausted``,
    ``crash-loop``, ``digest-mismatch``, ``terminated``, ``startup-failed``.
    """

    outcome: str = "clean-exit"
    restarts: int = 0
    crashes: int = 0
    digest_checks: int = 0
    last_exit_code: Optional[int] = None
    last_digest: Optional[str] = None
    detail: str = ""
    incarnations: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "outcome": self.outcome,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "digest_checks": self.digest_checks,
            "last_exit_code": self.last_exit_code,
            "last_digest": self.last_digest,
            "detail": self.detail,
            "incarnations": self.incarnations,
        }


def strip_chaos_flags(argv: Sequence[str]) -> List[str]:
    """Remove ``--chaos-*`` flag/value pairs from a serve argv."""
    out: List[str] = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg in ("--chaos-crash", "--chaos-seed", "--chaos-disk"):
            skip = True
            continue
        out.append(arg)
    return out


class ServeSupervisor:
    """Keep one serve child alive within policy; see module docstring."""

    def __init__(
        self,
        argv: Sequence[str],
        wal_path: Union[str, Path],
        policy: Optional[SupervisorPolicy] = None,
        on_banner: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.argv = list(argv)
        self.wal_path = str(wal_path)
        self.policy = policy or SupervisorPolicy()
        #: Called with each incarnation's startup banner — observability
        #: for callers (logging restarts, tests finding the live child's
        #: port/pid).  The banner is only announced after the child has
        #: installed its signal handlers, so it is the earliest moment a
        #: SIGTERM is guaranteed to drain rather than kill.
        self.on_banner = on_banner
        self._stop = False

    def request_stop(self) -> None:
        """Ask the loop to drain the current child and report."""
        self._stop = True

    # ------------------------------------------------------------------
    def _expected_digest(self) -> Optional[str]:
        """Offline replay digest of the current WAL (None when no log yet)."""
        import os

        if not os.path.exists(self.wal_path) or os.path.getsize(self.wal_path) == 0:
            return None
        return replay_log(self.wal_path).digest

    def run(self) -> SupervisorReport:
        policy = self.policy
        report = SupervisorReport()
        argv = list(self.argv)
        consecutive_short = 0
        backoff_exp = 0
        incarnation = 0
        while True:
            expected = self._expected_digest()
            proc = spawn_server(argv)
            started = time.monotonic()
            try:
                banner = read_banner(proc, timeout_s=policy.ready_timeout_s)
            except SimulationError as exc:
                # Died before announcing readiness — counts as a crash
                # (this is exactly what a post-listen... pre-listen
                # schedule or a corrupt WAL produces).
                report.crashes += 1
                report.last_exit_code = proc.returncode
                report.incarnations.append(
                    {"incarnation": incarnation, "banner": None,
                     "exit_code": proc.returncode, "uptime_s": 0.0}
                )
                consecutive_short += 1
                if consecutive_short >= policy.crash_loop_threshold:
                    report.outcome = "crash-loop"
                    report.detail = f"{consecutive_short} consecutive startup crashes: {exc}"
                    return report
                if report.restarts >= policy.max_restarts:
                    report.outcome = "restart-budget-exhausted"
                    report.detail = str(exc)
                    return report
                report.restarts += 1
                if policy.chaos_once:
                    argv = strip_chaos_flags(argv)
                time.sleep(min(policy.backoff_cap_s,
                               policy.backoff_base_s * (2 ** backoff_exp)))
                backoff_exp += 1
                incarnation += 1
                continue

            if self.on_banner is not None:
                self.on_banner(dict(banner))
            live_digest: Optional[str] = None
            if policy.verify_digest and expected:
                try:
                    client = ScriptClient(int(banner["port"]))
                    answer = client.rpc(
                        {"op": "query", "id": 0, "what": "digest"}
                    )
                    client.close()
                except OSError:
                    answer = None
                if answer is None:
                    # No answer at all: either the child died right
                    # after its banner (a post-listen crash — handle it
                    # as the crash it is, below) or it is alive but
                    # unresponsive, which the mismatch branch reports.
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        pass
                if answer is not None and answer.get("ok"):
                    live_digest = str(answer["result"]["digest"])
                if answer is not None or proc.poll() is None:
                    report.digest_checks += 1
                    report.last_digest = live_digest
                    if live_digest != expected:
                        terminate(proc, timeout_s=policy.ready_timeout_s)
                        report.outcome = "digest-mismatch"
                        report.detail = (
                            f"recovered digest {live_digest!r} != offline "
                            f"replay digest {expected!r}"
                        )
                        report.incarnations.append(
                            {"incarnation": incarnation, "banner": banner,
                             "exit_code": proc.returncode, "uptime_s": 0.0}
                        )
                        return report
                # else: the child crashed right after its banner —
                # wait_exit below turns that into the crash path.

            if self._stop:
                code = terminate(proc, timeout_s=policy.ready_timeout_s)
                report.last_exit_code = code
                report.outcome = "terminated"
                return report

            code = wait_exit(proc, timeout_s=86400.0)
            uptime = time.monotonic() - started
            report.last_exit_code = code
            report.incarnations.append(
                {"incarnation": incarnation, "banner": banner,
                 "exit_code": code, "uptime_s": round(uptime, 3)}
            )
            if code == 0:
                drained = [e for e in drain_stdout(proc) if e.get("event") == "drained"]
                if drained:
                    report.last_digest = drained[-1].get("digest")
                report.outcome = "clean-exit"
                return report

            report.crashes += 1
            if uptime >= policy.min_healthy_uptime_s:
                consecutive_short = 0
                backoff_exp = 0
            else:
                consecutive_short += 1
                if consecutive_short >= policy.crash_loop_threshold:
                    report.outcome = "crash-loop"
                    report.detail = (
                        f"{consecutive_short} consecutive exits under "
                        f"{policy.min_healthy_uptime_s}s uptime"
                    )
                    return report
            if report.restarts >= policy.max_restarts:
                report.outcome = "restart-budget-exhausted"
                report.detail = f"exit code {code} after {report.restarts} restarts"
                return report
            report.restarts += 1
            if policy.chaos_once:
                argv = strip_chaos_flags(argv)
            time.sleep(min(policy.backoff_cap_s,
                           policy.backoff_base_s * (2 ** backoff_exp)))
            backoff_exp += 1
            incarnation += 1
