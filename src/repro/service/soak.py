"""Chaos soak: seeded crash schedules against real server processes.

One *trial* is the full durability argument, end to end:

1. derive ``(crash site, hit number, request mix)`` from the trial seed;
2. start ``repro serve`` with that ``--chaos-crash`` schedule and drive
   the seeded request mix **strictly sequentially** (each request waits
   for its answer, so every live batch holds exactly one event — crash
   hit counts are then a pure function of the request sequence, which
   is what makes a trial bitwise-reproducible from its seed);
3. the scheduled chaos point aborts the process (`os._exit`, exit code
   :data:`~repro.service.chaos.CHAOS_EXIT_CODE`);
4. replay the surviving WAL offline — the durable prefix — and record
   its digest;
5. restart the server on the same WAL: the recovery digest must equal
   the offline digest; drain it cleanly: the drained digest must agree
   too;
6. replay the WAL once more on the *other* manager core: same digest
   again (the invariant is core-agnostic).

``run_soak`` executes N seeded trials (or a deterministic sweep over
every durability site × both cores); one failing invariant fails the
soak with the trial's seed in the report, so any red run is
reproducible with ``repro chaos --seed <seed>``.

``run_disk_smoke`` is the degraded-mode counterpart: a seeded
fsync-EIO window must flip the server into degraded read-only mode
(admissions rejected, releasing ops journaled) and back, with the
drained digest still equal to the offline replay digest — i.e. no
acked mutation lost across the fault.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.service.chaos import CHAOS_EXIT_CODE, DURABILITY_SITES, ChaosSchedule
from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.procs import (
    ScriptClient,
    drain_stdout,
    read_banner,
    serve_argv,
    spawn_server,
    terminate,
    wait_exit,
)
from repro.service.replay import replay_log
from repro.service.wal import ReplayLogReader

DEFAULT_TOPOLOGY = "grid:nodes=16,cols=4,capacity=1000"

QOS_WIRE = {
    "b_min": 100.0,
    "b_max": 300.0,
    "increment": 100.0,
    "utility": 1.0,
    "backups": 1,
}


@dataclass(frozen=True)
class SoakTrialSpec:
    """One seeded trial: where to crash and what traffic to send."""

    seed: int
    site: str
    hit: int
    core: str = "array"
    requests: int = 60
    topology: str = DEFAULT_TOPOLOGY

    @property
    def schedule(self) -> ChaosSchedule:
        return ChaosSchedule({self.site: self.hit})


@dataclass
class SoakTrialResult:
    spec: SoakTrialSpec
    crashed: bool = False
    exit_code: Optional[int] = None
    answered: int = 0
    durable_events: int = 0
    offline_digest: str = ""
    recovered_digest: str = ""
    drained_digest: str = ""
    cross_core_digest: str = ""
    ok: bool = False
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.spec.seed,
            "site": self.spec.site,
            "hit": self.spec.hit,
            "core": self.spec.core,
            "crashed": self.crashed,
            "exit_code": self.exit_code,
            "answered": self.answered,
            "durable_events": self.durable_events,
            "digests_agree": self.ok,
            "offline_digest": self.offline_digest,
            "detail": self.detail,
        }


def derive_trial(
    seed: int,
    core: str = "array",
    requests: int = 60,
    sites: Sequence[str] = DURABILITY_SITES,
    topology: str = DEFAULT_TOPOLOGY,
) -> SoakTrialSpec:
    """Seed -> trial spec (site, hit) via one dedicated RNG stream."""
    schedule = ChaosSchedule.from_seed(seed, sites=sites)
    ((site, hit),) = schedule.crashes.items()
    return SoakTrialSpec(
        seed=seed, site=site, hit=hit, core=core, requests=requests,
        topology=topology,
    )


def _request_mix(spec: SoakTrialSpec) -> List[Dict[str, Any]]:
    """The seeded scripted request sequence for one trial.

    Mostly establishes with a sprinkle of teardown/fail/repair so every
    WAL record type appears.  Node ids assume the default 16-node grid
    scaled by the modulus below; the mix depends only on the seed.
    """
    rng = random.Random(spec.seed * 7_919 + 1)
    requests: List[Dict[str, Any]] = []
    live_guess: List[int] = []
    failed: List[List[int]] = []
    for i in range(spec.requests):
        roll = rng.random()
        if roll < 0.70 or not live_guess:
            src = rng.randrange(16)
            dst = (src + rng.randrange(1, 15)) % 16
            requests.append(
                {"op": "establish", "id": i, "src": src, "dst": dst,
                 "qos": dict(QOS_WIRE)}
            )
            live_guess.append(i)
        elif roll < 0.80:
            requests.append(
                {"op": "teardown", "id": i,
                 "conn_id": live_guess.pop(rng.randrange(len(live_guess)))}
            )
        elif roll < 0.90 or not failed:
            a = rng.randrange(15)
            requests.append({"op": "fail", "id": i, "link": [a, a + 1]})
            failed.append([a, a + 1])
        else:
            requests.append(
                {"op": "repair", "id": i,
                 "link": failed.pop(rng.randrange(len(failed)))}
            )
    return requests


def _drive_sequential(port: int, requests: List[Dict[str, Any]]) -> int:
    """Send requests one at a time; returns how many got answered."""
    client = ScriptClient(port)
    answered = 0
    try:
        for obj in requests:
            response = client.rpc(obj)
            if response is None:
                break
            answered += 1
    finally:
        client.close()
    return answered


def cross_core_replay_digest(wal_path: Union[str, Path]) -> str:
    """Replay the log on the *other* core; returns its digest."""
    reader = ReplayLogReader(wal_path)
    other = "object" if reader.core == "array" else "array"
    engine = ServiceEngine(
        reader.topology,
        EngineConfig(core=other, manager_kwargs=reader.manager_kwargs),
        wal=None,
    )
    for seq, request in reader.events():
        engine.seq = seq
        engine.apply_sequential(request)
    return engine.digest()


def run_trial(spec: SoakTrialSpec, workdir: Union[str, Path]) -> SoakTrialResult:
    """Execute one trial (see module docstring steps 1-6)."""
    result = SoakTrialResult(spec=spec)
    wal = Path(workdir) / f"soak-{spec.seed}-{spec.site}-{spec.core}.wal"
    extra = [
        "--core", spec.core,
        "--chaos-crash", f"{spec.site}:{spec.hit}",
    ]
    proc = spawn_server(serve_argv(spec.topology, wal, extra))
    try:
        banner = read_banner(proc)
        result.answered = _drive_sequential(int(banner["port"]), _request_mix(spec))
        if proc.poll() is None:
            # mid-drain only fires during a drain; and a hit count that
            # exceeded the traffic leaves the server alive — drain it
            # (cleanly or into its scheduled abort) either way.
            result.exit_code = terminate(proc)
        else:
            result.exit_code = wait_exit(proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    result.crashed = result.exit_code == CHAOS_EXIT_CODE
    if not wal.exists() or wal.stat().st_size == 0:
        result.detail = "no WAL written"
        return result

    offline = replay_log(wal)
    result.durable_events = offline.events_applied
    result.offline_digest = offline.digest

    proc2 = spawn_server(serve_argv(spec.topology, wal, ["--core", spec.core]))
    try:
        banner2 = read_banner(proc2)
        client = ScriptClient(int(banner2["port"]))
        answer = client.rpc({"op": "query", "id": 0, "what": "digest"})
        client.close()
        if answer is None or not answer.get("ok"):
            result.detail = f"digest query failed: {answer!r}"
            return result
        result.recovered_digest = str(answer["result"]["digest"])
        code = terminate(proc2)
        drained = [e for e in drain_stdout(proc2) if e.get("event") == "drained"]
        if code != 0 or not drained:
            result.detail = f"drain failed (exit {code})"
            return result
        result.drained_digest = str(drained[-1].get("digest"))
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait(timeout=30)

    result.cross_core_digest = cross_core_replay_digest(wal)
    result.ok = (
        result.offline_digest
        == result.recovered_digest
        == result.drained_digest
        == result.cross_core_digest
    )
    if not result.ok:
        result.detail = (
            f"digest disagreement: offline={result.offline_digest[:12]} "
            f"recovered={result.recovered_digest[:12]} "
            f"drained={result.drained_digest[:12]} "
            f"cross-core={result.cross_core_digest[:12]}"
        )
    return result


@dataclass
class SoakReport:
    trials: List[SoakTrialResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return bool(self.trials) and all(t.ok for t in self.trials)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "trials": [t.to_dict() for t in self.trials],
            "crashed": sum(1 for t in self.trials if t.crashed),
            "elapsed_s": round(self.elapsed_s, 3),
        }


def run_soak(
    workdir: Union[str, Path],
    seed: int = 0,
    trials: int = 5,
    cores: Sequence[str] = ("array",),
    requests: int = 60,
    sweep: bool = False,
    topology: str = DEFAULT_TOPOLOGY,
) -> SoakReport:
    """N seeded trials, or (``sweep=True``) every durability site × core.

    Sweep hits are derived from ``seed`` per (site, core) so the sweep
    is deterministic yet not pinned to hit 1 forever.
    """
    specs: List[SoakTrialSpec] = []
    if sweep:
        for core in cores:
            for index, site in enumerate(DURABILITY_SITES):
                # Seeded from a string: random.Random hashes the bytes
                # deterministically (unlike built-in str hashing, which
                # is salted per process).
                rng = random.Random(f"{seed}:{core}:{site}")
                hit = 1 if site == "mid-drain" else rng.randint(2, 8)
                specs.append(
                    SoakTrialSpec(
                        seed=seed * 1000 + index, site=site, hit=hit, core=core,
                        requests=requests, topology=topology,
                    )
                )
    else:
        for index in range(trials):
            core = cores[index % len(cores)]
            specs.append(
                derive_trial(
                    seed + index, core=core, requests=requests, topology=topology
                )
            )
    report = SoakReport()
    start = time.monotonic()
    for spec in specs:
        report.trials.append(run_trial(spec, workdir))
    report.elapsed_s = time.monotonic() - start
    return report


def run_disk_smoke(
    workdir: Union[str, Path],
    seed: int = 0,
    topology: str = DEFAULT_TOPOLOGY,
) -> Dict[str, Any]:
    """Degraded-mode smoke: fsync outage -> read-only -> re-arm -> no loss.

    Drives establishes until one is rejected ``degraded``, tears down an
    admitted connection *while degraded* (must be acked + journaled),
    then waits for re-arm, admits again, drains, and replays: the
    drained digest must equal the offline replay digest, proving the
    journal flush kept every acked mutation.
    """
    wal = Path(workdir) / f"disk-smoke-{seed}.wal"
    extra = ["--chaos-disk", "fsync-eio:3-5"]
    proc = spawn_server(serve_argv(topology, wal, extra))
    out: Dict[str, Any] = {
        "ok": False, "degraded_seen": False, "teardown_during_degraded": False,
        "rearmed": False, "digests_agree": False,
    }
    try:
        banner = read_banner(proc)
        client = ScriptClient(int(banner["port"]))
        try:
            conn_ids: List[int] = []
            degraded_at = None
            for i in range(40):
                response = client.rpc(
                    {"op": "establish", "id": i, "src": i % 16,
                     "dst": (i + 5) % 16, "qos": dict(QOS_WIRE)}
                )
                if response is None:
                    out["detail"] = "server died during establish burst"
                    return out
                if response.get("ok") and response["result"].get("accepted"):
                    conn_ids.append(response["result"]["conn_id"])
                elif response.get("error") == "degraded":
                    out["degraded_seen"] = True
                    assert response.get("retry_after") is not None
                    degraded_at = i
                    break
            if degraded_at is None:
                out["detail"] = "fault window never produced a degraded rejection"
                return out
            health = client.rpc({"op": "query", "id": 900, "what": "health"})
            out["health_mode"] = (health or {}).get("result", {}).get("mode")
            ready = client.rpc({"op": "query", "id": 901, "what": "ready"})
            out["ready_degraded"] = bool(ready and ready.get("error") == "degraded")
            # Releasing op while degraded: still served, journaled.
            if conn_ids:
                tear = client.rpc(
                    {"op": "teardown", "id": 902, "conn_id": conn_ids.pop(0)}
                )
                out["teardown_during_degraded"] = bool(tear and tear.get("ok"))
            # Wait out probation; then admissions must work again.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                ready = client.rpc({"op": "query", "id": 903, "what": "ready"})
                if ready is not None and ready.get("ok"):
                    out["rearmed"] = True
                    break
                time.sleep(0.05)
            if not out["rearmed"]:
                out["detail"] = "server never re-armed after fault window"
                return out
            post = client.rpc(
                {"op": "establish", "id": 904, "src": 0, "dst": 9,
                 "qos": dict(QOS_WIRE)}
            )
            out["post_rearm_admission"] = bool(post and post.get("ok"))
            stats = client.rpc({"op": "query", "id": 905, "what": "stats"})
            if stats and stats.get("ok"):
                out["service"] = stats["result"]["service"]
        finally:
            client.close()
        code = terminate(proc)
        drained = [e for e in drain_stdout(proc) if e.get("event") == "drained"]
        if code != 0 or not drained:
            out["detail"] = f"drain failed (exit {code})"
            return out
        out["drained_digest"] = drained[-1].get("digest")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    offline = replay_log(wal)
    out["offline_digest"] = offline.digest
    out["digests_agree"] = offline.digest == out.get("drained_digest")
    out["ok"] = bool(
        out["degraded_seen"]
        and out["ready_degraded"]
        and out["teardown_during_degraded"]
        and out["rearmed"]
        and out.get("post_rearm_admission")
        and out["digests_agree"]
    )
    return out
