"""Load-generator client for the admission service (``repro loadgen``).

Drives a live service with an open-loop mix of establish/teardown/
fail/repair requests from ``concurrency`` pipelined connections,
honouring backpressure: a shed response triggers jittered exponential
backoff seeded by the server's ``retry_after`` hint, so a saturated
service sheds load instead of melting, and the generator keeps total
request count honest by retrying the shed request until admitted or
the retry budget runs out.

Client-side RNG is a seeded :class:`random.Random` instance — the
*request mix* is reproducible given a seed, while timing (backoff,
interleaving across connections) is intentionally real-world.  This is
a client/benchmark module and may read real time (exempt from lint
rule DET003 by path).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.service.protocol import decode_line, encode_line
from repro.service.telemetry import percentile

#: The dyadic bandwidth grid the twin tests use (exact in both cores).
B_MINS = (50.0, 100.0, 150.0)
INCREMENTS = (50.0, 100.0)


@dataclass(frozen=True)
class LoadgenConfig:
    """Campaign shape for one loadgen run.

    Attributes:
        host / port: Service address.
        total_requests: Admitted-request budget across all connections.
        concurrency: Parallel client connections.
        seed: Request-mix seed (reproducible mix, not timing).
        teardown_fraction: Probability a request tears down a live
            connection this client owns (when it owns any).
        failure_fraction: Probability a request is a link fail/repair
            toggle (exercises the failure path under load).
        deadline_ms: Per-request deadline budget sent to the server
            (``None`` = none).
        max_retries: Backoff attempts per shed request before counting
            it as dropped.
        backoff_base_s / backoff_cap_s: Exponential backoff bounds;
            the server's ``retry_after`` hint overrides the base when
            larger.
        reconnect_attempts: Bounded reconnects per client after a
            connection refusal/reset/EOF (a restarting or dead server)
            before the client gives up and the run reports ``aborted``.
        reconnect_base_s / reconnect_cap_s: Jittered exponential
            backoff bounds between reconnect attempts.
    """

    host: str = "127.0.0.1"
    port: int = 0
    total_requests: int = 1000
    concurrency: int = 8
    seed: int = 0
    teardown_fraction: float = 0.3
    failure_fraction: float = 0.05
    deadline_ms: Optional[float] = 250.0
    max_retries: int = 8
    backoff_base_s: float = 0.002
    backoff_cap_s: float = 0.5
    reconnect_attempts: int = 4
    reconnect_base_s: float = 0.05
    reconnect_cap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.total_requests < 1 or self.concurrency < 1:
            raise SimulationError("total_requests and concurrency must be >= 1")


@dataclass
class LoadgenReport:
    """Aggregate outcome of one loadgen campaign."""

    sent: int = 0
    accepted: int = 0
    rejected: int = 0
    torn_down: int = 0
    failures_driven: int = 0
    shed: int = 0
    expired: int = 0
    errors: int = 0
    dropped_after_retries: int = 0
    retries: int = 0
    disconnects: int = 0
    reconnects: int = 0
    #: True when at least one client exhausted its reconnect budget —
    #: the server is gone; the other counters are partial but valid.
    aborted: bool = False
    client_latencies_s: List[float] = field(default_factory=list)
    service_stats: Dict[str, Any] = field(default_factory=dict)

    def latency_summary(self) -> Dict[str, float]:
        ordered = sorted(self.client_latencies_s)
        return {
            "count": float(len(ordered)),
            "p50_us": percentile(ordered, 0.50) * 1e6,
            "p99_us": percentile(ordered, 0.99) * 1e6,
        }


class _Client:
    """One pipelined connection worth of load."""

    def __init__(
        self,
        cfg: LoadgenConfig,
        rng: random.Random,
        report: LoadgenReport,
        num_nodes: int,
        link_pool: List[Tuple[int, int]],
    ) -> None:
        self.cfg = cfg
        self.rng = rng
        self.report = report
        self.num_nodes = num_nodes
        self.link_pool = link_pool
        self.owned: List[int] = []
        self.failed_links: List[Tuple[int, int]] = []
        self.next_id = 0

    def _make_request(self) -> Dict[str, Any]:
        self.next_id += 1
        base: Dict[str, Any] = {"id": self.next_id}
        if self.cfg.deadline_ms is not None:
            base["deadline_ms"] = self.cfg.deadline_ms
        roll = self.rng.random()
        if self.failed_links and roll < self.cfg.failure_fraction / 2:
            link = self.failed_links.pop(self.rng.randrange(len(self.failed_links)))
            return {**base, "op": "repair", "link": list(link)}
        if self.link_pool and roll < self.cfg.failure_fraction:
            link = self.rng.choice(self.link_pool)
            if link not in self.failed_links:
                self.failed_links.append(link)
                return {**base, "op": "fail", "link": list(link)}
        if self.owned and roll < self.cfg.failure_fraction + self.cfg.teardown_fraction:
            cid = self.owned.pop(self.rng.randrange(len(self.owned)))
            return {**base, "op": "teardown", "conn_id": cid}
        src = self.rng.randrange(self.num_nodes)
        dst = self.rng.randrange(self.num_nodes)
        while dst == src:
            dst = self.rng.randrange(self.num_nodes)
        b_min = self.rng.choice(B_MINS)
        inc = self.rng.choice(INCREMENTS)
        levels = self.rng.randrange(1, 5)
        qos = {
            "b_min": b_min,
            "b_max": b_min + inc * max(1, levels - 1),
            "increment": inc,
            "utility": float(self.rng.randrange(1, 4)),
            "backups": self.rng.choice((0, 1)),
        }
        return {**base, "op": "establish", "src": src, "dst": dst, "qos": qos}

    def _note_response(self, request: Dict[str, Any], response: Dict[str, Any]) -> None:
        r = self.report
        op = request["op"]
        if response.get("ok"):
            if op == "establish":
                result = response.get("result", {})
                if result.get("accepted"):
                    r.accepted += 1
                    if result.get("conn_id") is not None:
                        self.owned.append(result["conn_id"])
                else:
                    r.rejected += 1
            elif op == "teardown":
                r.torn_down += 1
            else:
                r.failures_driven += 1
            return
        code = response.get("error")
        if code == "deadline":
            r.expired += 1
        elif code in ("not-live", "link-state"):
            # Lost a race with another client (e.g. its teardown target
            # was dropped by a failure): a benign rejection.
            r.rejected += 1
        else:
            r.errors += 1
        if op == "fail" and request["link"] and tuple(request["link"]) in self.failed_links:
            self.failed_links.remove(tuple(request["link"]))

    async def _reconnect(
        self,
    ) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        """Bounded jittered reconnect after a refusal/reset/EOF."""
        cfg = self.cfg
        for attempt in range(cfg.reconnect_attempts):
            backoff = min(cfg.reconnect_cap_s, cfg.reconnect_base_s * (2.0**attempt))
            await asyncio.sleep(backoff * (0.5 + 0.5 * self.rng.random()))
            try:
                reader, writer = await asyncio.open_connection(cfg.host, cfg.port)
            except OSError:
                continue
            self.report.reconnects += 1
            return reader, writer
        return None

    async def run(self, budget: "asyncio.Semaphore", counter: List[int]) -> None:
        cfg = self.cfg
        loop = asyncio.get_running_loop()
        try:
            reader, writer = await asyncio.open_connection(cfg.host, cfg.port)
        except OSError:
            self.report.disconnects += 1
            fresh = await self._reconnect()
            if fresh is None:
                self.report.aborted = True
                return
            reader, writer = fresh
        try:
            while True:
                async with budget:
                    if counter[0] >= cfg.total_requests:
                        return
                    counter[0] += 1
                request = self._make_request()
                attempt = 0
                while True:
                    started = loop.time()
                    try:
                        writer.write(encode_line(request))
                        await writer.drain()
                        line = await reader.readline()
                        if not line:
                            raise ConnectionResetError("server closed connection")
                    except OSError:
                        # Mid-run server death: reconnect within budget
                        # and resend the in-flight request, else give up
                        # cleanly with whatever stats we gathered.
                        self.report.disconnects += 1
                        try:
                            writer.close()
                        except OSError:
                            pass
                        fresh = await self._reconnect()
                        if fresh is None:
                            self.report.aborted = True
                            return
                        reader, writer = fresh
                        continue
                    response = decode_line(line)
                    if response.get("error") == "shed":
                        self.report.shed += 1
                        if attempt >= cfg.max_retries:
                            self.report.dropped_after_retries += 1
                            break
                        hint = float(response.get("retry_after") or 0.0)
                        backoff = max(hint, cfg.backoff_base_s * (2.0**attempt))
                        backoff = min(backoff, cfg.backoff_cap_s)
                        # Full jitter: desynchronize the retrying herd.
                        await asyncio.sleep(backoff * self.rng.random())
                        attempt += 1
                        self.report.retries += 1
                        continue
                    self.report.sent += 1
                    self.report.client_latencies_s.append(loop.time() - started)
                    self._note_response(request, response)
                    break
        finally:
            try:
                writer.close()
            except OSError:
                pass


async def _query(host: str, port: int, what: str) -> Dict[str, Any]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_line({"op": "query", "id": 0, "what": what}))
        await writer.drain()
        return decode_line(await reader.readline())
    finally:
        writer.close()


async def run_loadgen(cfg: LoadgenConfig) -> LoadgenReport:
    """Drive one campaign against a running service.

    A server that is unreachable (or dies before answering the opening
    info query) yields ``report.aborted`` rather than an exception —
    the CLI turns that into a distinct non-zero exit with partial
    stats, never a traceback.
    """
    report = LoadgenReport()
    try:
        info = await _query(cfg.host, cfg.port, "info")
    except OSError:
        report.aborted = True
        return report
    if not info.get("ok"):
        raise SimulationError(f"service info query failed: {info}")
    num_nodes = int(info["result"]["num_nodes"])
    rng = random.Random(cfg.seed)
    # A small pool of real links for fail/repair churn.
    link_pool = [
        (int(u), int(v)) for u, v in info["result"].get("links_sample", [])[:4]
    ]
    clients = [
        _Client(cfg, random.Random(rng.randrange(2**63)), report, num_nodes, link_pool)
        for _ in range(cfg.concurrency)
    ]
    budget = asyncio.Semaphore(1)
    counter = [0]
    results = await asyncio.gather(
        *(c.run(budget, counter) for c in clients), return_exceptions=True
    )
    for outcome in results:
        if isinstance(outcome, BaseException):
            report.errors += 1
    try:
        stats = await _query(cfg.host, cfg.port, "stats")
    except OSError:
        # Server died after (or while) the campaign finished; partial
        # client-side stats are still the deliverable.
        report.aborted = True
        return report
    if stats.get("ok"):
        report.service_stats = stats["result"].get("service", {})
    return report


def run_loadgen_sync(cfg: LoadgenConfig) -> LoadgenReport:
    """Blocking wrapper (CLI entry point)."""
    return asyncio.run(run_loadgen(cfg))
