"""The asyncio serving shell around :class:`ServiceEngine`.

Single event loop, three layers:

* **connection handlers** parse frames, answer queries inline (safe:
  batch application is synchronous, so no query can observe a
  half-applied epoch), run the backpressure check, stamp deadlines and
  enqueue mutations with a per-request future;
* **the batcher task** drains up to ``batch_max`` queued requests,
  expires the ones already past their deadline, hands the rest to
  :meth:`ServiceEngine.apply_batch` (write-ahead log fsync, then one
  micro-epoch), resolves the futures and records decision latency;
* **lifecycle**: SIGTERM/SIGINT set the draining flag — the listener
  closes, queued work finishes, a shutdown marker lands in the WAL —
  and readiness flips to "draining" so probes see it.

This module is the *timing* layer: it reads the loop clock for
deadlines and latency telemetry (exempt from lint rule DET003 by
path).  No clock value ever reaches the engine — shedding decisions
depend on queue depth, deadline expiry only turns a request into an
error *before* it is logged, so the WAL stays a pure function of the
admitted request sequence.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.parallel.jobs import TopologySpec
from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.protocol import (
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    error_response,
    parse_request,
)
from repro.service.replay import recover_engine
from repro.service.shedding import BackpressureConfig, admit_decision
from repro.service.telemetry import LatencyRecorder
from repro.service.wal import ReplayLogWriter


@dataclass
class ServiceConfig:
    """Everything one service instance needs.

    Attributes:
        topology: Network recipe (ignored on recovery — the WAL header
            wins, so a restart cannot silently change the network).
        wal_path: Replay-log location; an existing non-empty file
            triggers recovery-by-replay on startup.
        host / port: Listen address; port 0 lets the OS pick (the bound
            port is in :attr:`AdmissionService.port` and the startup
            announcement line).
        engine: Core/batching knobs.
        backpressure: Queue bound and shedding thresholds.
        default_deadline_ms: Deadline applied to mutations that do not
            carry their own (``None`` = no implicit deadline).
        epoch_hold_s: Test-only pause between WAL fsync and epoch
            application, widening the durable-but-unapplied window so
            crash tests can land a SIGKILL mid-epoch deterministically.
    """

    topology: TopologySpec
    wal_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    engine: EngineConfig = field(default_factory=EngineConfig)
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    default_deadline_ms: Optional[float] = None
    epoch_hold_s: float = 0.0


class _Pending:
    """One queued mutation awaiting its epoch."""

    __slots__ = ("request", "deadline", "enqueued", "future")

    def __init__(
        self,
        request: Request,
        deadline: Optional[float],
        enqueued: float,
        future: "asyncio.Future[Dict[str, Any]]",
    ) -> None:
        self.request = request
        self.deadline = deadline
        self.enqueued = enqueued
        self.future = future


class AdmissionService:
    """A running admission-control service instance."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.engine: Optional[ServiceEngine] = None
        self.latency = LatencyRecorder()
        self.shed_count = 0
        self.expired_count = 0
        self.port: Optional[int] = None
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher: Optional[asyncio.Task] = None
        self._draining = False
        self._drained = asyncio.Event()
        self.recovered = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build_engine(self) -> ServiceEngine:
        cfg = self.config
        if cfg.wal_path is None:
            return ServiceEngine(cfg.topology, cfg.engine, wal=None)
        import os

        if os.path.exists(cfg.wal_path) and os.path.getsize(cfg.wal_path) > 0:
            self.recovered = True
            return recover_engine(cfg.wal_path, batch_max=cfg.engine.batch_max)
        wal = ReplayLogWriter(
            cfg.wal_path,
            cfg.topology,
            manager_kwargs=cfg.engine.manager_kwargs,
            core=cfg.engine.core,
        )
        return ServiceEngine(cfg.topology, cfg.engine, wal=wal)

    async def start(self, install_signals: bool = False) -> None:
        """Build/recover the engine, bind the socket, start batching."""
        if self.engine is not None:
            raise SimulationError("service already started")
        self.engine = self._build_engine()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher = asyncio.create_task(self._batch_loop())
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.initiate_drain)

    def initiate_drain(self) -> None:
        """Stop accepting work; queued requests still get answers."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        # Wake the batcher even when the queue is empty.
        loop = asyncio.get_running_loop()
        loop.call_soon(self._queue.put_nowait, _DRAIN_SENTINEL)

    async def drained(self) -> None:
        """Wait until the drain (started via :meth:`initiate_drain`) ends."""
        await self._drained.wait()

    async def run_until_drained(self, install_signals: bool = True) -> None:
        """Convenience: start, then serve until drained (CLI entry)."""
        await self.start(install_signals=install_signals)
        await self._drained.wait()
        if self._server is not None:
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_frame(line)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _handle_frame(self, line: bytes) -> Dict[str, Any]:
        assert self.engine is not None
        req_id: Any = None
        try:
            obj = decode_line(line)
            if isinstance(obj, dict):
                req_id = obj.get("id")
            request = parse_request(obj)
        except ProtocolError as exc:
            return error_response(req_id, "bad-request", str(exc))
        if not request.is_mutation:
            if request.what == "ready" and self._draining:
                return error_response(request.req_id, "shutting-down", "draining")
            try:
                result = self.engine.query(request)
                if request.what == "stats":
                    result["result"]["service"] = self.service_stats()
                return result
            except Exception as exc:
                return error_response(request.req_id, "internal", str(exc))
        if self._draining:
            return error_response(
                request.req_id, "shutting-down", "service is draining"
            )
        decision = admit_decision(
            self.config.backpressure, self._queue.qsize(), request
        )
        if not decision.admit:
            self.shed_count += 1
            return error_response(
                request.req_id, "shed", decision.reason, decision.retry_after
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        deadline = None if deadline_ms is None else now + deadline_ms / 1000.0
        pending = _Pending(request, deadline, now, loop.create_future())
        self._queue.put_nowait(pending)
        return await pending.future

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self.engine is not None
        loop = asyncio.get_running_loop()
        batch_max = self.engine.config.batch_max
        while True:
            first = await self._queue.get()
            items: List[_Pending] = [] if first is _DRAIN_SENTINEL else [first]
            while len(items) < batch_max:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is not _DRAIN_SENTINEL:
                    items.append(extra)
            live: List[_Pending] = []
            now = loop.time()
            for item in items:
                if item.deadline is not None and now > item.deadline:
                    self.expired_count += 1
                    item.future.set_result(
                        error_response(
                            item.request.req_id,
                            "deadline",
                            "expired in queue past its deadline budget",
                        )
                    )
                else:
                    live.append(item)
            if live:
                if self.config.epoch_hold_s > 0.0:
                    # Crash-test hook: log write-ahead, then linger with
                    # the epoch durable-but-unapplied.
                    batch = [p.request for p in live]
                    to_apply = [
                        (self.engine.seq + i, r)
                        for i, r in enumerate(
                            r for r in batch if self.engine.validate(r) is None
                        )
                    ]
                    if self.engine.wal is not None:
                        self.engine.wal.log_events(to_apply)
                        await asyncio.sleep(self.config.epoch_hold_s)
                        # The engine will re-log the same events; rewind
                        # is impossible on an append-only file, so make
                        # the engine skip its own log call instead.
                        responses = self._apply_prelogged(batch)
                    else:
                        await asyncio.sleep(self.config.epoch_hold_s)
                        responses = self.engine.apply_batch(batch)
                else:
                    responses = self.engine.apply_batch([p.request for p in live])
                done = loop.time()
                for item, response in zip(live, responses):
                    self.latency.record(done - item.enqueued)
                    if not item.future.done():
                        item.future.set_result(response)
            if self._draining and self._queue.empty():
                self._finish_drain()
                return

    def _apply_prelogged(self, batch: List[Request]) -> List[Dict[str, Any]]:
        """Apply a batch whose events were already durably logged."""
        assert self.engine is not None
        wal = self.engine.wal
        self.engine.wal = None
        try:
            responses = self.engine.apply_batch(batch)
        finally:
            self.engine.wal = wal
        if wal is not None:
            wal.log_epoch(self.engine.seq - 1)
        return responses

    def _finish_drain(self) -> None:
        assert self.engine is not None
        if self.engine.wal is not None:
            self.engine.wal.log_shutdown(self.engine.seq - 1)
        self.engine.close()
        self._drained.set()

    # ------------------------------------------------------------------
    def service_stats(self) -> Dict[str, Any]:
        """Service-plane counters and latency summary."""
        return {
            "queue_depth": self._queue.qsize(),
            "shed": self.shed_count,
            "expired": self.expired_count,
            "draining": self._draining,
            "recovered": self.recovered,
            "latency": self.latency.summary(),
        }


#: Queue sentinel used to wake the batcher during drain.
_DRAIN_SENTINEL: Any = _Pending(
    Request(op="query", req_id=None, what="health"), None, 0.0, None  # type: ignore[arg-type]
)
