"""The asyncio serving shell around :class:`ServiceEngine`.

Single event loop, three layers:

* **connection handlers** parse frames, answer queries inline (safe:
  batch application is synchronous, so no query can observe a
  half-applied epoch), run the backpressure check, stamp deadlines and
  enqueue mutations with a per-request future;
* **the batcher task** drains up to ``batch_max`` queued requests,
  expires the ones already past their deadline, hands the rest to
  :meth:`ServiceEngine.apply_batch` (write-ahead log fsync, then one
  micro-epoch), resolves the futures and records decision latency;
* **lifecycle**: SIGTERM/SIGINT set the draining flag — the listener
  closes, queued work finishes, a shutdown marker lands in the WAL —
  and readiness flips to "draining" so probes see it.

**Degraded read-only mode.**  A WAL append/fsync failure
(:class:`~repro.service.wal.WALWriteError` — injected by chaos or a
genuinely sick disk) must not kill the service *or* silently break the
write-ahead contract.  The server drops to ``degraded``: queries keep
being answered, admissions are rejected with a ``degraded`` error and a
``retry_after`` hint, but *releasing* operations (teardown/fail/repair
— the ones that free capacity and carry failure-plane truth) are still
applied, journaled in memory instead of the WAL.  A probation loop
probes the disk every ``probe_interval_s``; after ``probation_probes``
consecutive successful probes the journal is flushed to the WAL (in
original sequence order, so the log stays gap-free) and admissions
re-arm.  The residual window is explicit: a hard crash while degraded
loses journaled-but-unflushed releasing ops (counted as
``journal_lost`` when detectable); every mutation acked in healthy mode
stays fsync-durable before its ack, and the degraded→healthy flip
itself loses nothing.

This module is the *timing* layer: it reads the loop clock for
deadlines and latency telemetry (exempt from lint rule DET003 by
path).  No clock value ever reaches the engine — shedding decisions
depend on queue depth, deadline expiry only turns a request into an
error *before* it is logged, so the WAL stays a pure function of the
admitted request sequence.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.parallel.jobs import TopologySpec
from repro.service.chaos import DiskFaultPlan, chaos_point
from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.protocol import (
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.replay import recover_engine
from repro.service.shedding import BackpressureConfig, admit_decision
from repro.service.telemetry import LatencyRecorder
from repro.service.wal import ReplayLogWriter, WALWriteError


def deadline_expired(deadline: Optional[float], now: float) -> bool:
    """Whether a queued request's deadline has passed.

    Boundary: ``now == deadline`` is *not* expired — the budget is the
    last instant the request may still be served.
    """
    return deadline is not None and now > deadline


@dataclass(frozen=True)
class DegradedConfig:
    """Degraded-mode / probation knobs.

    Attributes:
        probe_interval_s: How often the batcher probes a faulting WAL.
        probation_probes: Consecutive successful probes required before
            the journal is flushed and admissions re-arm (one success
            is "probation"; a disk that flaps mid-probation starts
            over).
        retry_after_s: Hint attached to ``degraded`` rejections.
        journal_limit: Max in-memory journaled releasing ops; beyond it
            even releasing ops are rejected (bounded memory, and a cap
            on the crash-while-degraded loss window).
    """

    probe_interval_s: float = 0.05
    probation_probes: int = 3
    retry_after_s: float = 0.25
    journal_limit: int = 4096


@dataclass
class ServiceConfig:
    """Everything one service instance needs.

    Attributes:
        topology: Network recipe (ignored on recovery — the WAL header
            wins, so a restart cannot silently change the network).
        wal_path: Replay-log location; an existing non-empty file
            triggers recovery-by-replay on startup.
        host / port: Listen address; port 0 lets the OS pick (the bound
            port is in :attr:`AdmissionService.port` and the startup
            announcement line).
        engine: Core/batching knobs.
        backpressure: Queue bound and shedding thresholds.
        default_deadline_ms: Deadline applied to mutations that do not
            carry their own (``None`` = no implicit deadline).
        epoch_hold_s: Test-only pause between WAL fsync and epoch
            application, widening the durable-but-unapplied window so
            crash tests can land a SIGKILL mid-epoch deterministically.
        degraded: Degraded-mode probation policy.
        disk_faults: Optional injected WAL fault plan (chaos testing).
    """

    topology: TopologySpec
    wal_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    engine: EngineConfig = field(default_factory=EngineConfig)
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    default_deadline_ms: Optional[float] = None
    epoch_hold_s: float = 0.0
    degraded: DegradedConfig = field(default_factory=DegradedConfig)
    disk_faults: Optional[DiskFaultPlan] = None


class _Pending:
    """One queued mutation awaiting its epoch."""

    __slots__ = ("request", "deadline", "enqueued", "future")

    def __init__(
        self,
        request: Request,
        deadline: Optional[float],
        enqueued: float,
        future: "asyncio.Future[Dict[str, Any]]",
    ) -> None:
        self.request = request
        self.deadline = deadline
        self.enqueued = enqueued
        self.future = future


class AdmissionService:
    """A running admission-control service instance."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.engine: Optional[ServiceEngine] = None
        self.latency = LatencyRecorder()
        self.shed_count = 0
        self.expired_count = 0
        self.port: Optional[int] = None
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher: Optional[asyncio.Task] = None
        self._draining = False
        self._drained = asyncio.Event()
        self.recovered = False
        #: WAL health state machine: healthy -> degraded -> probation -> healthy.
        self.mode = "healthy"
        self._journal: List[Tuple[int, Request]] = []
        self._probe_ok = 0
        self.wal_fault_count = 0
        self.rearm_count = 0
        self.degraded_rejects = 0
        self.journal_flushed_total = 0
        self.journal_lost = 0
        self.last_fault: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build_engine(self) -> ServiceEngine:
        cfg = self.config
        if cfg.wal_path is None:
            return ServiceEngine(cfg.topology, cfg.engine, wal=None)
        import os

        if os.path.exists(cfg.wal_path) and os.path.getsize(cfg.wal_path) > 0:
            self.recovered = True
            return recover_engine(
                cfg.wal_path,
                batch_max=cfg.engine.batch_max,
                disk_faults=cfg.disk_faults,
            )
        wal = ReplayLogWriter(
            cfg.wal_path,
            cfg.topology,
            manager_kwargs=cfg.engine.manager_kwargs,
            core=cfg.engine.core,
            disk_faults=cfg.disk_faults,
        )
        return ServiceEngine(cfg.topology, cfg.engine, wal=wal)

    async def start(self, install_signals: bool = False) -> None:
        """Build/recover the engine, bind the socket, start batching."""
        if self.engine is not None:
            raise SimulationError("service already started")
        self.engine = self._build_engine()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher = asyncio.create_task(self._batch_loop())
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.initiate_drain)

    def initiate_drain(self) -> None:
        """Stop accepting work; queued requests still get answers."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        # Wake the batcher even when the queue is empty.
        loop = asyncio.get_running_loop()
        loop.call_soon(self._queue.put_nowait, _DRAIN_SENTINEL)

    async def drained(self) -> None:
        """Wait until the drain (started via :meth:`initiate_drain`) ends."""
        await self._drained.wait()

    async def run_until_drained(self, install_signals: bool = True) -> None:
        """Convenience: start, then serve until drained (CLI entry)."""
        await self.start(install_signals=install_signals)
        await self._drained.wait()
        if self._server is not None:
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Chaos-proxy clients misbehave in every way a real network can:
        # reset mid-write (ConnectionResetError/BrokenPipeError, both
        # OSError), half-close, and send unterminated garbage longer
        # than the stream limit (readline raises ValueError wrapping
        # LimitOverrunError).  All of it ends this one connection;
        # none of it may escape to the loop or touch the batcher.
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_frame(line)
                writer.write(encode_line(response))
                await writer.drain()
        except (OSError, ValueError, asyncio.LimitOverrunError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except OSError:
                pass

    async def _handle_frame(self, line: bytes) -> Dict[str, Any]:
        assert self.engine is not None
        req_id: Any = None
        try:
            obj = decode_line(line)
            if isinstance(obj, dict):
                req_id = obj.get("id")
            request = parse_request(obj)
        except ProtocolError as exc:
            return error_response(req_id, "bad-request", str(exc))
        if not request.is_mutation:
            if request.what == "ready":
                if self._draining:
                    return error_response(request.req_id, "shutting-down", "draining")
                if self.mode != "healthy":
                    return error_response(
                        request.req_id,
                        "degraded",
                        f"WAL is {self.mode}: {self.last_fault}",
                        self.config.degraded.retry_after_s,
                    )
            if request.what == "health":
                return ok_response(
                    request.req_id,
                    {
                        "status": "ok" if self.mode == "healthy" else self.mode,
                        "seq": self.engine.seq,
                        "mode": self.mode,
                        "journal": len(self._journal),
                    },
                )
            try:
                result = self.engine.query(request)
                if request.what == "stats":
                    result["result"]["service"] = self.service_stats()
                return result
            except Exception as exc:
                return error_response(request.req_id, "internal", str(exc))
        if self._draining:
            return error_response(
                request.req_id, "shutting-down", "service is draining"
            )
        if self.mode != "healthy" and (
            request.op == "establish"
            or len(self._journal) >= self.config.degraded.journal_limit
        ):
            # Fast-path rejection; the batcher re-checks at apply time,
            # so a mode flip between here and there is still handled.
            self.degraded_rejects += 1
            return error_response(
                request.req_id,
                "degraded",
                f"WAL is {self.mode}; admissions suspended ({self.last_fault})",
                self.config.degraded.retry_after_s,
            )
        decision = admit_decision(
            self.config.backpressure, self._queue.qsize(), request
        )
        if not decision.admit:
            self.shed_count += 1
            return error_response(
                request.req_id, "shed", decision.reason, decision.retry_after
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        deadline = None if deadline_ms is None else now + deadline_ms / 1000.0
        pending = _Pending(request, deadline, now, loop.create_future())
        self._queue.put_nowait(pending)
        return await pending.future

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self.engine is not None
        loop = asyncio.get_running_loop()
        batch_max = self.engine.config.batch_max
        while True:
            if self.mode != "healthy" and not self._draining:
                # Degraded: keep draining the queue, but wake on a timer
                # so the disk is probed (and the journal flushed) even
                # with no traffic at all.
                try:
                    first = await asyncio.wait_for(
                        self._queue.get(), self.config.degraded.probe_interval_s
                    )
                except asyncio.TimeoutError:
                    self._probe_wal()
                    continue
            else:
                first = await self._queue.get()
            items: List[_Pending] = [] if first is _DRAIN_SENTINEL else [first]
            while len(items) < batch_max:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is not _DRAIN_SENTINEL:
                    items.append(extra)
            live: List[_Pending] = []
            now = loop.time()
            for item in items:
                if deadline_expired(item.deadline, now):
                    self.expired_count += 1
                    item.future.set_result(
                        error_response(
                            item.request.req_id,
                            "deadline",
                            "expired in queue past its deadline budget",
                        )
                    )
                else:
                    live.append(item)
            if live:
                responses = await self._apply_live([p.request for p in live])
                done = loop.time()
                chaos_point("pre-reply")
                for item, response in zip(live, responses):
                    self.latency.record(done - item.enqueued)
                    if not item.future.done():
                        item.future.set_result(response)
            if self._draining and self._queue.empty():
                self._finish_drain()
                return

    async def _apply_live(self, batch: List[Request]) -> List[Dict[str, Any]]:
        """Apply one batch, degrading (not dying) on a WAL fault."""
        assert self.engine is not None
        if self.mode != "healthy":
            return self._apply_degraded(batch)
        try:
            if self.config.epoch_hold_s > 0.0:
                # Crash-test hook: log write-ahead, then linger with
                # the epoch durable-but-unapplied.
                to_apply = [
                    (self.engine.seq + i, r)
                    for i, r in enumerate(
                        r for r in batch if self.engine.validate(r) is None
                    )
                ]
                if self.engine.wal is not None:
                    self.engine.wal.log_events(to_apply)
                    await asyncio.sleep(self.config.epoch_hold_s)
                    # The engine will re-log the same events; rewind
                    # is impossible on an append-only file, so make
                    # the engine skip its own log call instead.
                    return self._apply_prelogged(batch)
                await asyncio.sleep(self.config.epoch_hold_s)
                return self.engine.apply_batch(batch)
            return self.engine.apply_batch(batch)
        except WALWriteError as exc:
            # Nothing of this batch was applied (write-ahead discipline:
            # the engine rolls its sequence numbers back), so rerouting
            # the whole batch through the degraded path is exact.
            self._enter_degraded(str(exc))
            return self._apply_degraded(batch)

    def _apply_degraded(self, batch: List[Request]) -> List[Dict[str, Any]]:
        """Read-only mode: journal releasing ops, reject admissions."""
        assert self.engine is not None
        journal_full = (
            len(self._journal) + len(batch) > self.config.degraded.journal_limit
        )
        slots: List[Optional[Dict[str, Any]]] = []
        releasing: List[Request] = []
        for request in batch:
            if request.op == "establish" or journal_full:
                self.degraded_rejects += 1
                slots.append(
                    error_response(
                        request.req_id,
                        "degraded",
                        f"WAL is {self.mode}; admissions suspended "
                        f"({self.last_fault})",
                        self.config.degraded.retry_after_s,
                    )
                )
            else:
                releasing.append(request)
                slots.append(None)
        if releasing:
            sub = iter(self.engine.apply_batch(releasing, journal=self._journal))
            slots = [slot if slot is not None else next(sub) for slot in slots]
        return [slot for slot in slots if slot is not None]

    def _enter_degraded(self, reason: str) -> None:
        self.wal_fault_count += 1
        self.last_fault = reason
        self.mode = "degraded"
        self._probe_ok = 0
        # Truncate unsynced garbage immediately if the disk lets us; if
        # not, the probation loop keeps trying.
        if self.engine is not None and self.engine.wal is not None:
            self.engine.wal.repair()

    def _probe_wal(self) -> None:
        """One probation probe; re-arms after enough consecutive successes."""
        assert self.engine is not None
        wal = self.engine.wal
        if wal is None:
            self.mode = "healthy"
            return
        if wal.probe():
            self.mode = "probation"
            self._probe_ok += 1
            if self._probe_ok >= self.config.degraded.probation_probes:
                self._rearm()
        else:
            self.mode = "degraded"
            self._probe_ok = 0

    def _rearm(self) -> None:
        """Flush the journal to the recovered WAL and resume admissions.

        Flushing before the flip is what makes the degraded→healthy
        transition lossless: every acked releasing op becomes durable
        (in original sequence order) before any new admission can be
        logged after it.
        """
        assert self.engine is not None and self.engine.wal is not None
        wal = self.engine.wal
        try:
            if self._journal:
                wal.log_events(self._journal)
                wal.log_epoch(self._journal[-1][0])
                self.journal_flushed_total += len(self._journal)
                self._journal.clear()
        except WALWriteError as exc:
            self._enter_degraded(f"journal flush failed: {exc}")
            return
        self.mode = "healthy"
        self._probe_ok = 0
        self.rearm_count += 1

    def _apply_prelogged(self, batch: List[Request]) -> List[Dict[str, Any]]:
        """Apply a batch whose events were already durably logged."""
        assert self.engine is not None
        wal = self.engine.wal
        self.engine.wal = None
        try:
            responses = self.engine.apply_batch(batch)
        finally:
            self.engine.wal = wal
        if wal is not None:
            wal.log_epoch(self.engine.seq - 1)
        return responses

    def _finish_drain(self) -> None:
        assert self.engine is not None
        chaos_point("mid-drain")
        wal = self.engine.wal
        if wal is not None:
            try:
                if self.mode != "healthy" or wal.dirty:
                    if not wal.probe():
                        raise WALWriteError("WAL still faulting at drain")
                if self._journal:
                    wal.log_events(self._journal)
                    self.journal_flushed_total += len(self._journal)
                    self._journal.clear()
                    self.mode = "healthy"
                wal.log_shutdown(self.engine.seq - 1)
            except WALWriteError as exc:
                # Last resort: the disk refused to the very end.  The
                # journaled releasing ops are lost; say so loudly in the
                # stats rather than pretending the drain was clean.
                self.journal_lost = len(self._journal)
                self.last_fault = f"drain flush failed: {exc}"
        self.engine.close()
        self._drained.set()

    # ------------------------------------------------------------------
    def service_stats(self) -> Dict[str, Any]:
        """Service-plane counters and latency summary."""
        return {
            "queue_depth": self._queue.qsize(),
            "shed": self.shed_count,
            "expired": self.expired_count,
            "draining": self._draining,
            "recovered": self.recovered,
            "mode": self.mode,
            "wal_faults": self.wal_fault_count,
            "rearms": self.rearm_count,
            "degraded_rejects": self.degraded_rejects,
            "journal_depth": len(self._journal),
            "journal_flushed": self.journal_flushed_total,
            "journal_lost": self.journal_lost,
            "last_fault": self.last_fault,
            "latency": self.latency.summary(),
        }


#: Queue sentinel used to wake the batcher during drain.
_DRAIN_SENTINEL: Any = _Pending(
    Request(op="query", req_id=None, what="health"), None, 0.0, None  # type: ignore[arg-type]
)
