"""Deterministic fault injection for the admission service stack.

Three injection planes, all seed-driven and bitwise-reproducible:

**Crash points.**  Named sites are threaded through the service stack
(:data:`CRASH_SITES`); :func:`chaos_point` is a no-op until a
:class:`ChaosSchedule` is installed, after which the scheduled site's
N-th hit aborts the process exactly like a ``kill -9`` (``os._exit``
skips every destructor, buffer flush and ``finally`` block).  Because
hits are counted in deterministic units — WAL batches, applied events —
a schedule reproduces the same durable prefix on every run, which turns
PR 8's single hand-placed SIGKILL test into an exhaustive sweep of the
durability boundaries (see :mod:`repro.service.soak`).

**Disk faults.**  :class:`DiskFaultPlan` scripts ``fsync`` EIO,
``ENOSPC`` and torn (short) writes by 1-based call index;
:class:`FaultyWALFile` wraps the WAL's raw file object and injects
them.  The server reacts by entering degraded read-only mode (see
:mod:`repro.service.server`).  :func:`corrupt_file` flips bits post hoc
for recovery tests.

**Socket chaos.**  :class:`ChaosProxy` sits between clients and the
service and delays, drops, half-closes and garbage-injects connections
with per-connection seeded RNG, so the protocol layer's robustness is
exercised without ever touching the decision plane.

Layering: this module holds *mechanism* only.  It reads no wall clock
(proxy delays go through ``asyncio.sleep`` with seeded durations) and
draws only from injected ``random.Random(seed)`` instances, so a chaos
run is a pure function of its seed.  The module-global installation
hooks (:func:`install_chaos`, :func:`install_disk_faults`) exist so the
``repro serve`` subprocess can be armed from the command line; library
code should pass schedules/plans explicitly.
"""

from __future__ import annotations

import asyncio
import errno
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: Exit status of a chaos-triggered process abort.  Distinct from both
#: clean exits and Python tracebacks so harnesses can assert the crash
#: they scheduled is the crash they got.
CHAOS_EXIT_CODE = 86

#: The crash-site catalogue, in stack order (see DESIGN.md §15).
CRASH_SITES = (
    "pre-fsync",    # WAL batch written to the fd, not yet fsynced
    "post-fsync",   # WAL batch durable, not yet applied to the manager
    "mid-epoch",    # before applying the N-th durably-logged event
    "pre-reply",    # batch applied and durable, clients not yet answered
    "mid-drain",    # drain applied everything, shutdown marker not written
    "post-listen",  # server announced readiness (supervisor/crash-loop site)
)

#: Sites whose triggering exercises the durability invariant; the soak
#: sweep covers exactly these.  ``post-listen`` is excluded — it exists
#: to make a server crash-loop on startup for supervisor tests.
DURABILITY_SITES = CRASH_SITES[:5]


class ChaosCrash(BaseException):
    """In-process stand-in for a chaos abort.

    Derives from ``BaseException`` so no ``except Exception`` handler in
    the stack under test can accidentally swallow the "crash" — the
    whole point is that nothing between the crash point and the test
    harness gets to clean up.
    """

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"chaos crash at {site!r} (hit {hit})")
        self.site = site
        self.hit = hit


def _hard_exit(site: str, hit: int) -> None:
    """The default crash action: die like ``kill -9`` would."""
    os._exit(CHAOS_EXIT_CODE)


def raise_chaos(site: str, hit: int) -> None:
    """Crash action for in-process tests: raise :class:`ChaosCrash`."""
    raise ChaosCrash(site, hit)


# ----------------------------------------------------------------------
# crash schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosSchedule:
    """Which crash site fires, and on which 1-based hit.

    ``crashes`` maps site name -> hit number.  Hit units are
    deterministic per site: ``pre-fsync``/``post-fsync`` count WAL
    batch fsyncs, ``mid-epoch`` counts applied events, ``pre-reply``
    counts answered batches, ``mid-drain`` and ``post-listen`` fire at
    most once per process.
    """

    crashes: Mapping[str, int]

    def __post_init__(self) -> None:
        for site, hit in self.crashes.items():
            if site not in CRASH_SITES:
                raise SimulationError(
                    f"unknown crash site {site!r}; choose from {CRASH_SITES}"
                )
            if not isinstance(hit, int) or hit < 1:
                raise SimulationError(
                    f"crash hit for {site!r} must be a positive int, got {hit!r}"
                )

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosSchedule":
        """Parse ``site[:hit][,site[:hit]...]`` (hit defaults to 1)."""
        crashes: Dict[str, int] = {}
        for part in filter(None, spec.split(",")):
            site, sep, hit_text = part.partition(":")
            try:
                hit = int(hit_text) if sep else 1
            except ValueError as exc:
                raise SimulationError(
                    f"crash spec {part!r} is not site[:hit]"
                ) from exc
            crashes[site.strip()] = hit
        if not crashes:
            raise SimulationError(f"empty chaos crash spec {spec!r}")
        return cls(crashes)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        sites: Sequence[str] = DURABILITY_SITES,
        max_hit: int = 8,
    ) -> "ChaosSchedule":
        """One seeded (site, hit) choice — the soak trial generator."""
        rng = random.Random(seed)
        site = rng.choice(list(sites))
        hit = 1 if site in ("mid-drain", "post-listen") else rng.randint(2, max_hit)
        return cls({site: hit})

    def trigger(self, site: str, hit: int) -> bool:
        return self.crashes.get(site) == hit

    def describe(self) -> str:
        return ",".join(f"{s}:{h}" for s, h in sorted(self.crashes.items()))


class _ChaosState:
    """Installed schedule plus per-site hit counters."""

    def __init__(
        self, schedule: ChaosSchedule, action: Callable[[str, int], None]
    ) -> None:
        self.schedule = schedule
        self.action = action
        self.hits: Dict[str, int] = {}


_STATE: Optional[_ChaosState] = None
_DISK_PLAN: Optional["DiskFaultPlan"] = None


def install_chaos(
    schedule: ChaosSchedule, action: Optional[Callable[[str, int], None]] = None
) -> None:
    """Arm the crash points; ``action`` defaults to a hard process exit."""
    global _STATE
    _STATE = _ChaosState(schedule, action or _hard_exit)


def uninstall_chaos() -> None:
    global _STATE
    _STATE = None


def chaos_hits() -> Dict[str, int]:
    """Per-site hit counters of the active schedule (empty when unarmed)."""
    return dict(_STATE.hits) if _STATE is not None else {}


def chaos_point(site: str) -> None:
    """Declare a crash site; no-op unless a schedule is installed."""
    state = _STATE
    if state is None:
        return
    if site not in CRASH_SITES:
        raise SimulationError(
            f"chaos_point called with unknown site {site!r}; "
            f"add it to CRASH_SITES first"
        )
    hit = state.hits.get(site, 0) + 1
    state.hits[site] = hit
    if state.schedule.trigger(site, hit):
        state.action(site, hit)


def install_disk_faults(plan: "DiskFaultPlan") -> None:
    """Arm the WAL disk-fault plan for writers that don't get one passed."""
    global _DISK_PLAN
    _DISK_PLAN = plan


def uninstall_disk_faults() -> None:
    global _DISK_PLAN
    _DISK_PLAN = None


def active_disk_plan() -> Optional["DiskFaultPlan"]:
    return _DISK_PLAN


def reset_chaos() -> None:
    """Clear every installed plane (test-fixture hygiene)."""
    uninstall_chaos()
    uninstall_disk_faults()


# ----------------------------------------------------------------------
# disk faults
# ----------------------------------------------------------------------
_Ranges = Tuple[Tuple[int, int], ...]


def _in_ranges(call: int, ranges: _Ranges) -> bool:
    return any(lo <= call <= hi for lo, hi in ranges)


def _parse_range(text: str) -> Tuple[int, int]:
    lo_text, sep, hi_text = text.partition("-")
    try:
        lo = int(lo_text)
        hi = int(hi_text) if sep else lo
    except ValueError as exc:
        raise SimulationError(f"disk-fault range {text!r} is not N or N-M") from exc
    if lo < 1 or hi < lo:
        raise SimulationError(f"disk-fault range {text!r} must be 1 <= lo <= hi")
    return lo, hi


@dataclass(frozen=True)
class DiskFaultPlan:
    """Scripted WAL file faults, keyed by 1-based call index.

    Call indexes count calls on one writer's file handle for the
    lifetime of that writer (a restarted process starts fresh), so a
    plan describes a deterministic fault window regardless of wall
    time: "fsyncs 2 through 4 fail with EIO, then the disk recovers".
    """

    fsync_eio: _Ranges = ()
    write_enospc: _Ranges = ()
    write_short: _Ranges = ()

    def fsync_fault(self, call: int) -> bool:
        return _in_ranges(call, self.fsync_eio)

    def write_fault(self, call: int) -> Optional[str]:
        if _in_ranges(call, self.write_enospc):
            return "enospc"
        if _in_ranges(call, self.write_short):
            return "short"
        return None

    @classmethod
    def from_spec(cls, spec: str) -> "DiskFaultPlan":
        """Parse ``kind:range[,kind:range...]``.

        Kinds: ``fsync-eio``, ``write-enospc``, ``write-short``;
        ranges are ``N`` or ``N-M`` (1-based, inclusive).  Example:
        ``fsync-eio:2-4,write-short:7``.
        """
        fields: Dict[str, Tuple[Tuple[int, int], ...]] = {
            "fsync-eio": (), "write-enospc": (), "write-short": (),
        }
        for part in filter(None, spec.split(",")):
            kind, sep, range_text = part.partition(":")
            if not sep or kind not in fields:
                raise SimulationError(
                    f"disk-fault spec part {part!r} is not kind:range with kind "
                    f"in {tuple(fields)}"
                )
            fields[kind] = fields[kind] + (_parse_range(range_text),)
        if not any(fields.values()):
            raise SimulationError(f"empty disk-fault spec {spec!r}")
        return cls(
            fsync_eio=fields["fsync-eio"],
            write_enospc=fields["write-enospc"],
            write_short=fields["write-short"],
        )

    @classmethod
    def from_seed(cls, seed: int, max_start: int = 6, max_len: int = 3) -> "DiskFaultPlan":
        """One seeded fault window — an fsync-EIO outage, sometimes a
        torn write right before it."""
        rng = random.Random(seed)
        start = rng.randint(2, max_start)
        length = rng.randint(1, max_len)
        fsync: _Ranges = ((start, start + length - 1),)
        short: _Ranges = ()
        if rng.random() < 0.5:
            short = ((start + length, start + length),)
        return cls(fsync_eio=fsync, write_short=short)

    def describe(self) -> str:
        parts = []
        for kind, ranges in (
            ("fsync-eio", self.fsync_eio),
            ("write-enospc", self.write_enospc),
            ("write-short", self.write_short),
        ):
            parts.extend(
                f"{kind}:{lo}" if lo == hi else f"{kind}:{lo}-{hi}"
                for lo, hi in ranges
            )
        return ",".join(parts)


class FaultyWALFile:
    """WAL file-object wrapper injecting a :class:`DiskFaultPlan`.

    Duck-types the slice of the file API the WAL writer uses (``write``
    / ``flush`` / ``fileno`` / ``close`` / ``closed``) plus ``sync()``,
    which the writer prefers over raw ``os.fsync`` when present.  A
    "short" write fault writes a prefix of the payload before raising,
    producing a genuinely torn record for the tear rule to discard.
    """

    def __init__(self, raw: Any, plan: DiskFaultPlan) -> None:
        self._raw = raw
        self._plan = plan
        self.writes = 0
        self.fsyncs = 0

    def write(self, data: bytes) -> int:
        self.writes += 1
        kind = self._plan.write_fault(self.writes)
        if kind == "enospc":
            raise OSError(errno.ENOSPC, "chaos: injected ENOSPC")
        if kind == "short":
            self._raw.write(data[: max(1, len(data) // 2)])
            raise OSError(errno.EIO, "chaos: injected short write")
        return int(self._raw.write(data))

    def sync(self) -> None:
        self.fsyncs += 1
        if self._plan.fsync_fault(self.fsyncs):
            raise OSError(errno.EIO, "chaos: injected fsync EIO")
        os.fsync(self._raw.fileno())

    def flush(self) -> None:
        self._raw.flush()

    def fileno(self) -> int:
        return int(self._raw.fileno())

    def close(self) -> None:
        self._raw.close()

    @property
    def closed(self) -> bool:
        return bool(self._raw.closed)


def corrupt_file(
    path: Any,
    flip_bits: Sequence[int] = (),
    truncate_to: Optional[int] = None,
) -> None:
    """Post-hoc corruption: flip the given bit offsets, then truncate.

    Bit offset ``b`` flips bit ``b % 8`` of byte ``b // 8``.  Offsets
    beyond the file are ignored (so seeded offsets need no clamping).
    """
    data = bytearray(open(path, "rb").read())
    for bit in flip_bits:
        byte = bit // 8
        if byte < len(data):
            data[byte] ^= 1 << (bit % 8)
    if truncate_to is not None:
        del data[truncate_to:]
    with open(  # repro-lint: disable=ART001 — deliberate corruption injector
        path, "wb"
    ) as fh:
        fh.write(bytes(data))


# ----------------------------------------------------------------------
# socket chaos
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProxyChaosConfig:
    """Per-connection misbehavior probabilities for :class:`ChaosProxy`."""

    delay_prob: float = 0.3        # chance each client chunk is delayed
    max_delay_s: float = 0.02      # uniform delay bound (seeded draw)
    garbage_prob: float = 0.25     # inject a garbage frame before traffic
    drop_prob: float = 0.15        # abort the connection after some bytes
    half_close_prob: float = 0.15  # close only the client->server direction
    drop_after_max_bytes: int = 2048


@dataclass
class ProxyStats:
    connections: int = 0
    garbage_injected: int = 0
    dropped: int = 0
    half_closed: int = 0
    delays: int = 0


#: The garbage frame the proxy injects: undecodable bytes plus a valid
#: newline terminator, so it parses as exactly one bad protocol frame.
GARBAGE_FRAME = b"\x00\xff{chaos-garbage!!\n"


class ChaosProxy:
    """A seeded misbehaving TCP proxy in front of the admission service.

    Connection ``i`` derives its RNG from ``seed`` and ``i``, so a
    proxy run's misbehavior sequence is reproducible.  The proxy never
    corrupts server->client traffic (clients under test still need to
    read responses); it attacks the server-facing direction, which is
    the one the service must survive.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        seed: int,
        config: Optional[ProxyChaosConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.seed = seed
        self.config = config or ProxyChaosConfig()
        self.host = host
        self.port = port
        self.stats = ProxyStats()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(
        self, client_r: asyncio.StreamReader, client_w: asyncio.StreamWriter
    ) -> None:
        index = self.stats.connections
        self.stats.connections += 1
        rng = random.Random(self.seed * 1_000_003 + index)
        cfg = self.config
        inject_garbage = rng.random() < cfg.garbage_prob
        drop_after = (
            rng.randint(1, cfg.drop_after_max_bytes)
            if rng.random() < cfg.drop_prob
            else None
        )
        half_close_after = (
            rng.randint(1, cfg.drop_after_max_bytes)
            if drop_after is None and rng.random() < cfg.half_close_prob
            else None
        )
        try:
            server_r, server_w = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            client_w.close()
            return

        async def upstream() -> None:
            forwarded = 0
            garbage_pending = inject_garbage
            try:
                while True:
                    data = await client_r.read(1024)
                    if not data:
                        break
                    if rng.random() < cfg.delay_prob:
                        self.stats.delays += 1
                        await asyncio.sleep(rng.uniform(0.0, cfg.max_delay_s))
                    if garbage_pending:
                        garbage_pending = False
                        self.stats.garbage_injected += 1
                        server_w.write(GARBAGE_FRAME)
                    server_w.write(data)
                    await server_w.drain()
                    forwarded += len(data)
                    if drop_after is not None and forwarded >= drop_after:
                        self.stats.dropped += 1
                        client_w.transport.abort()
                        break
                    if half_close_after is not None and forwarded >= half_close_after:
                        self.stats.half_closed += 1
                        break
            except (OSError, asyncio.IncompleteReadError):
                pass
            finally:
                try:
                    if server_w.can_write_eof():
                        server_w.write_eof()
                except OSError:
                    server_w.close()

        async def downstream() -> None:
            try:
                while True:
                    data = await server_r.read(1024)
                    if not data:
                        break
                    client_w.write(data)
                    await client_w.drain()
            except (OSError, asyncio.IncompleteReadError):
                pass

        try:
            await asyncio.gather(upstream(), downstream())
        finally:
            for writer in (server_w, client_w):
                try:
                    writer.close()
                except OSError:
                    pass
