"""Utility-aware load shedding for the admission service.

The service queue is bounded; when it saturates we *reject fast with a
hint* rather than queue unboundedly — the operational mirror of the
paper's elastic degradation: under overload, low-utility work gives up
bandwidth (here: queue slots) before high-utility work is touched.

The policy is a pure function of (queue occupancy, request), with no
clock and no randomness, so the same arrival sequence sheds the same
requests on every run — live decisions and their offline replay agree.

Three regimes, by occupancy ``q = depth / queue_limit``:

* ``q < shed_watermark`` — everything is admitted.
* ``shed_watermark <= q < 1`` — *selective* shedding: establish
  requests whose utility weight falls below a threshold that rises
  linearly from 0 (at the watermark) to ``utility_ceiling`` (at full)
  are rejected; teardown/fail/repair are always admitted while any
  slot is free, because they *release* resources and refusing them
  only deepens the overload.
* ``q >= 1`` — the queue is full: everything is rejected.

Every rejection carries ``retry_after = (depth + 1) / drain_rate_hint``
seconds — the backlog's expected drain time under the configured
service rate — which the load generator uses to seed its backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.service.protocol import Request


@dataclass(frozen=True)
class BackpressureConfig:
    """Bounds and thresholds of the service's admission queue.

    Attributes:
        queue_limit: Hard cap on queued mutating requests.
        shed_watermark: Occupancy fraction where selective shedding of
            low-utility establish requests begins.
        utility_ceiling: Utility weight below which an establish may be
            shed when the queue is *completely* full-but-one; the
            effective threshold scales linearly from the watermark up.
        drain_rate_hint: Assumed service rate (requests/second) used
            only to compute the ``retry_after`` hint; advisory, never a
            decision input beyond the hint value itself.
    """

    queue_limit: int = 1024
    shed_watermark: float = 0.5
    utility_ceiling: float = 1.0
    drain_rate_hint: float = 1000.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise SimulationError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if not 0.0 < self.shed_watermark <= 1.0:
            raise SimulationError(
                f"shed_watermark must be in (0, 1], got {self.shed_watermark}"
            )
        if self.utility_ceiling < 0.0:
            raise SimulationError(
                f"utility_ceiling must be >= 0, got {self.utility_ceiling}"
            )
        if self.drain_rate_hint <= 0.0:
            raise SimulationError(
                f"drain_rate_hint must be positive, got {self.drain_rate_hint}"
            )


@dataclass(frozen=True)
class ShedDecision:
    """Outcome of the backpressure check for one request.

    Attributes:
        admit: Whether the request may enter the queue.
        retry_after: Backoff hint in seconds (rejections only).
        reason: Short human-readable cause (rejections only).
    """

    admit: bool
    retry_after: Optional[float] = None
    reason: str = ""


def _retry_after(cfg: BackpressureConfig, depth: int) -> float:
    """Expected seconds until the current backlog (plus us) drains."""
    return (depth + 1) / cfg.drain_rate_hint


def admit_decision(
    cfg: BackpressureConfig, depth: int, request: Request
) -> ShedDecision:
    """Decide whether ``request`` may enter a queue currently ``depth`` deep.

    Deterministic: depends only on the arguments.  Queries are never
    shed (they are answered inline, off-queue); callers should not
    route them through here, but if they do the answer is admit.
    """
    if not request.is_mutation:
        return ShedDecision(admit=True)
    if depth >= cfg.queue_limit:
        return ShedDecision(
            admit=False,
            retry_after=_retry_after(cfg, depth),
            reason=f"queue full ({depth}/{cfg.queue_limit})",
        )
    occupancy = depth / cfg.queue_limit
    if occupancy < cfg.shed_watermark or request.op != "establish":
        return ShedDecision(admit=True)
    # Selective band: threshold rises linearly watermark -> full.
    span = 1.0 - cfg.shed_watermark
    scale = (occupancy - cfg.shed_watermark) / span if span > 0.0 else 1.0
    threshold = cfg.utility_ceiling * scale
    utility = request.qos.performance.utility if request.qos is not None else 0.0
    if utility < threshold:
        return ShedDecision(
            admit=False,
            retry_after=_retry_after(cfg, depth),
            reason=(
                f"shedding establish with utility {utility:g} < "
                f"threshold {threshold:g} at occupancy {occupancy:.2f}"
            ),
        )
    return ShedDecision(admit=True)
