"""Wire protocol of the admission service: JSON objects, one per line.

Requests and responses are single JSON objects terminated by ``\\n``.
Every request carries an ``op`` and a client-chosen ``id`` that the
response echoes, so clients may pipeline.  The five operations:

``establish``   ``{"op": "establish", "id": 1, "src": 3, "dst": 9,
                "qos": {...}}`` — try to admit a DR-connection.
``teardown``    ``{"op": "teardown", "id": 2, "conn_id": 17}``
``fail``        ``{"op": "fail", "id": 3, "link": [2, 5]}`` — report a
                link failure (operator/monitoring plane).
``repair``      ``{"op": "repair", "id": 4, "link": [2, 5]}``
``query``       ``{"op": "query", "id": 5, "what": "stats"}`` with
                ``what`` in :data:`QUERY_KINDS`.

Responses are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": "<code>", "message": "...",
"retry_after": <seconds, shed only>}``.  Error codes are listed in
:data:`ERROR_CODES`.

Mutating requests may carry ``"deadline_ms"``, the client's end-to-end
answer budget; the server expires requests still queued past it (see
:mod:`repro.service.server`).

This module is decision logic: pure parsing/validation with no clock,
no RNG, no I/O, so the replay path shares it verbatim with the live
server.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import QoSSpecError
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS

#: Bumped on incompatible wire changes; echoed by ``query what=info``.
PROTOCOL_VERSION = 1

#: Request operations the service understands.
OPS = ("establish", "teardown", "fail", "repair", "query")

#: Mutating operations (the ones that reach the WAL and the manager).
MUTATING_OPS = ("establish", "teardown", "fail", "repair")

#: ``query`` subjects.
QUERY_KINDS = ("health", "ready", "info", "stats", "digest", "connection")

#: Error codes a response may carry.
ERROR_CODES = (
    "bad-request",    # malformed JSON / unknown op / invalid fields
    "shed",           # backpressure: retry after `retry_after` seconds
    "deadline",       # expired in queue past its deadline budget
    "not-live",       # teardown/query of a connection that is not live
    "link-state",     # fail/repair against the wrong link state
    "shutting-down",  # service is draining
    "degraded",       # WAL disk faulting: read-only, retry after `retry_after`
    "internal",       # unexpected server-side failure
)


class ProtocolError(ValueError):
    """A request that cannot be parsed or validated."""


# ----------------------------------------------------------------------
# QoS serialization
# ----------------------------------------------------------------------
def qos_to_dict(qos: ConnectionQoS) -> Dict[str, Any]:
    """JSON-able rendering of a QoS contract (exact float round-trip)."""
    perf = qos.performance
    dep = qos.dependability
    return {
        "b_min": perf.b_min,
        "b_max": perf.b_max,
        "increment": perf.increment,
        "utility": perf.utility,
        "backups": dep.num_backups,
        "require_link_disjoint": dep.require_link_disjoint,
    }


def qos_from_dict(data: Dict[str, Any]) -> ConnectionQoS:
    """Rebuild a QoS contract from its wire form.

    Raises:
        ProtocolError: on missing/invalid fields (including every
            constraint :class:`ElasticQoS` itself enforces).
    """
    if not isinstance(data, dict):
        raise ProtocolError(f"qos must be an object, got {type(data).__name__}")
    try:
        perf = ElasticQoS(
            b_min=float(data["b_min"]),
            b_max=float(data["b_max"]),
            increment=float(data["increment"]),
            utility=float(data.get("utility", 1.0)),
        )
        dep = DependabilityQoS(
            num_backups=int(data.get("backups", 1)),
            require_link_disjoint=bool(data.get("require_link_disjoint", False)),
        )
    except (KeyError, TypeError, ValueError, QoSSpecError) as exc:
        raise ProtocolError(f"invalid qos: {exc}") from exc
    return ConnectionQoS(performance=perf, dependability=dep)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """One validated client request.

    ``link`` is normalized to the canonical ``(min, max)`` node order
    used by :class:`~repro.topology.graph.Network` link ids.
    """

    op: str
    req_id: Any
    src: int = -1
    dst: int = -1
    qos: Optional[ConnectionQoS] = None
    conn_id: int = -1
    link: Optional[Tuple[int, int]] = None
    what: str = ""
    deadline_ms: Optional[float] = None

    @property
    def is_mutation(self) -> bool:
        return self.op in MUTATING_OPS


def _require_int(obj: Dict[str, Any], key: str) -> int:
    value = obj.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{key!r} must be an integer, got {value!r}")
    return value


def parse_request(obj: Any) -> Request:
    """Validate one decoded JSON object into a :class:`Request`.

    Raises:
        ProtocolError: whenever the object is not a well-formed request.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"request must be an object, got {type(obj).__name__}")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {OPS}")
    req_id = obj.get("id")
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ProtocolError(f"deadline_ms must be a number, got {deadline_ms!r}")
        if deadline_ms <= 0:
            raise ProtocolError(f"deadline_ms must be positive, got {deadline_ms}")
        deadline_ms = float(deadline_ms)

    if op == "establish":
        src = _require_int(obj, "src")
        dst = _require_int(obj, "dst")
        qos = qos_from_dict(obj.get("qos"))
        return Request(op=op, req_id=req_id, src=src, dst=dst, qos=qos,
                       deadline_ms=deadline_ms)
    if op == "teardown":
        return Request(op=op, req_id=req_id, conn_id=_require_int(obj, "conn_id"),
                       deadline_ms=deadline_ms)
    if op in ("fail", "repair"):
        raw = obj.get("link")
        if (
            not isinstance(raw, (list, tuple))
            or len(raw) != 2
            or any(isinstance(v, bool) or not isinstance(v, int) for v in raw)
        ):
            raise ProtocolError(f"link must be a [node, node] pair, got {raw!r}")
        a, b = int(raw[0]), int(raw[1])
        return Request(op=op, req_id=req_id, link=(min(a, b), max(a, b)),
                       deadline_ms=deadline_ms)
    # query
    what = obj.get("what", "health")
    if what not in QUERY_KINDS:
        raise ProtocolError(f"unknown query {what!r}; choose from {QUERY_KINDS}")
    conn_id = obj.get("conn_id", -1)
    if what == "connection":
        conn_id = _require_int(obj, "conn_id")
    return Request(op=op, req_id=req_id, what=what, conn_id=conn_id)


# ----------------------------------------------------------------------
# responses and framing
# ----------------------------------------------------------------------
def ok_response(req_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success envelope echoing the request id."""
    return {"id": req_id, "ok": True, "result": result}


def error_response(
    req_id: Any,
    code: str,
    message: str,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """A failure envelope; ``retry_after`` only accompanies sheds."""
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    resp: Dict[str, Any] = {"id": req_id, "ok": False, "error": code, "message": message}
    if retry_after is not None:
        resp["retry_after"] = retry_after
    return resp


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One protocol frame: compact JSON + newline, UTF-8."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Any:
    """Decode one frame; raises :class:`ProtocolError` on bad JSON."""
    try:
        return json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
