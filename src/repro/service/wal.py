"""Append-only write-ahead replay log for the admission service.

One JSON object per line, four record types:

``header``    First line.  Carries the log format version, the
              :class:`~repro.parallel.jobs.TopologySpec` the manager's
              network was built from, and the manager construction
              kwargs — everything recovery needs to rebuild an
              identical manager from nothing.
``event``     One mutating request (establish/teardown/fail/repair) in
              wire form plus its global sequence number ``seq``.
              **Write-ahead**: the service appends and fsyncs an
              epoch's event records *before* applying any of them to
              the manager, so every applied event is durable.
``epoch``     Epoch barrier after a batch was applied; ``seq_end`` is
              the last applied sequence number.  Informational — it
              lets tooling see the live batching — but recovery does
              not need it: micro-epoch batching is bitwise-identical
              to sequential application, so replay just applies every
              durable event in order.
``shutdown``  Clean-drain marker; its absence means the previous run
              crashed (recovery works either way).

Torn tails: a crash can leave a partial final line.
:class:`ReplayLogReader` tolerates exactly one undecodable *final*
record (discarded with a note); garbage earlier in the log is an
error, because it means durable history was corrupted, not torn.

This module does file I/O but no wall-clock reads and no randomness:
log content is a pure function of the request sequence, which is what
makes a live trace convertible into an offline campaign.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.parallel.jobs import TOPOLOGY_KINDS, TopologySpec
from repro.service.protocol import Request, parse_request, qos_to_dict
from repro.topology.transit_stub import TransitStubParams

#: Log format version; bump on incompatible record changes.
WAL_VERSION = 1

#: Manager-constructor kwargs a header may carry (see ``make_manager``).
MANAGER_KWARG_KEYS = (
    "policy",
    "routing",
    "flood_hop_bound",
    "multiplex_backups",
    "reestablish_backups",
    "route_cache_probe",
)


# ----------------------------------------------------------------------
# topology spec (de)serialization
# ----------------------------------------------------------------------
def topology_to_dict(spec: TopologySpec) -> Dict[str, Any]:
    """JSON-able rendering of a topology recipe (drops ``None`` fields)."""
    data: Dict[str, Any] = {
        "kind": spec.kind,
        "capacity": spec.capacity,
        "seed": spec.seed,
        "nodes": spec.nodes,
    }
    if spec.edges is not None:
        data["edges"] = spec.edges
    if spec.cols is not None:
        data["cols"] = spec.cols
    if spec.tier is not None:
        data["tier"] = dataclasses.asdict(spec.tier)
    return data


def topology_from_dict(data: Dict[str, Any]) -> TopologySpec:
    """Rebuild a topology recipe from its wire form."""
    if not isinstance(data, dict):
        raise SimulationError(f"topology must be an object, got {type(data).__name__}")
    tier = None
    if data.get("tier") is not None:
        tier = TransitStubParams(**data["tier"])
    try:
        return TopologySpec(
            kind=str(data["kind"]),
            capacity=float(data["capacity"]),
            seed=int(data.get("seed", 0)),
            nodes=int(data.get("nodes", 0)),
            edges=None if data.get("edges") is None else int(data["edges"]),
            tier=tier,
            cols=None if data.get("cols") is None else int(data["cols"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"invalid topology spec {data!r}: {exc}") from exc


def parse_topology_arg(text: str) -> TopologySpec:
    """Parse a CLI topology argument: ``kind:key=value,key=value,...``.

    Examples: ``grid:nodes=4,cols=4,capacity=1000`` or
    ``waxman:nodes=20,capacity=155,seed=7``.  Keys are the
    :class:`TopologySpec` fields except ``tier`` (transit-stub shapes
    keep their defaults from the CLI).
    """
    kind, _, rest = text.partition(":")
    if kind not in TOPOLOGY_KINDS:
        raise SimulationError(
            f"unknown topology kind {kind!r}; choose from {TOPOLOGY_KINDS}"
        )
    fields: Dict[str, Any] = {"kind": kind, "capacity": 1000.0, "seed": 0}
    int_keys = ("seed", "nodes", "edges", "cols")
    for part in filter(None, rest.split(",")):
        key, sep, value = part.partition("=")
        if not sep:
            raise SimulationError(f"topology option {part!r} is not key=value")
        if key == "capacity":
            fields[key] = float(value)
        elif key in int_keys:
            fields[key] = int(value)
        else:
            raise SimulationError(
                f"unknown topology option {key!r}; choose from "
                f"('capacity',) + {int_keys}"
            )
    return TopologySpec(**fields)


# ----------------------------------------------------------------------
# record shaping
# ----------------------------------------------------------------------
def request_to_record(seq: int, request: Request) -> Dict[str, Any]:
    """The ``event`` record for one mutating request."""
    record: Dict[str, Any] = {"type": "event", "seq": seq, "op": request.op}
    if request.op == "establish":
        assert request.qos is not None
        record["src"] = request.src
        record["dst"] = request.dst
        record["qos"] = qos_to_dict(request.qos)
    elif request.op == "teardown":
        record["conn_id"] = request.conn_id
    else:  # fail / repair
        record["link"] = list(request.link or ())
    return record


def request_from_record(record: Dict[str, Any]) -> Request:
    """Rebuild the request a logged ``event`` record describes."""
    return parse_request({"op": record["op"], "id": record["seq"], **{
        k: v for k, v in record.items() if k in ("src", "dst", "qos", "conn_id", "link")
    }})


def _encode(record: Dict[str, Any]) -> bytes:
    return json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


class ReplayLogWriter:
    """Durable appender with write-ahead semantics.

    Usage per epoch::

        writer.log_events(seq_and_requests)   # append + fsync, THEN
        ...apply the batch to the manager...
        writer.log_epoch(last_seq)            # barrier marker

    The epoch marker itself is flushed lazily (with the next batch or
    on close); losing it is harmless because recovery replays every
    durable event regardless of markers.
    """

    def __init__(
        self,
        path: Union[str, Path],
        topology: TopologySpec,
        manager_kwargs: Optional[Dict[str, Any]] = None,
        core: str = "array",
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        # Append-only by design: the whole point is that existing durable
        # history must never be rewritten, so the atomic tmp-then-rename
        # primitive is the wrong tool here.
        self._fh = open(  # repro-lint: disable=ART001 — append-only WAL primitive
            self.path, "ab"
        )
        if fresh:
            header = {
                "type": "header",
                "version": WAL_VERSION,
                "core": core,
                "topology": topology_to_dict(topology),
                "manager": dict(manager_kwargs or {}),
            }
            self._fh.write(_encode(header))
            self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def log_events(self, batch: List[Tuple[int, Request]]) -> None:
        """Durably append one epoch's events *before* they are applied."""
        if not batch:
            return
        self._fh.write(b"".join(_encode(request_to_record(seq, req)) for seq, req in batch))
        self._sync()

    def log_epoch(self, seq_end: int) -> None:
        """Append the (lazily flushed) epoch barrier marker."""
        self._fh.write(_encode({"type": "epoch", "seq_end": seq_end}))

    def log_shutdown(self, seq_end: int) -> None:
        """Mark a clean drain; durable immediately."""
        self._fh.write(_encode({"type": "shutdown", "seq_end": seq_end}))
        self._sync()

    def close(self) -> None:
        if not self._fh.closed:
            self._sync()
            self._fh.close()

    def __enter__(self) -> "ReplayLogWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ReplayLogReader:
    """Parse a replay log, tolerating a torn final line.

    Attributes (after construction):
        header: The decoded header record.
        topology: The rebuilt :class:`TopologySpec`.
        manager_kwargs: Manager constructor kwargs from the header.
        core: Manager core name from the header.
        clean_shutdown: Whether a ``shutdown`` marker closed the log.
        torn_tail: Whether a torn final record was discarded.
        valid_bytes: Length of the durable prefix (everything up to and
            including the last valid newline-terminated record); a
            recovering writer truncates the file here before appending.

    Tear rule: a record is only durable once its full line *including
    the newline* is on disk (the writer fsyncs whole batches), so any
    unterminated tail — even one that happens to decode — was written
    mid-crash and never applied; it is discarded.  The same goes for a
    terminated-but-undecodable *final* line.  Garbage anywhere earlier
    is corruption of durable history and raises.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        raw = self.path.read_bytes()
        records: List[Dict[str, Any]] = []
        lines = raw.split(b"\n")
        # A well-formed log ends with "\n", leaving one empty trailing
        # chunk; anything else in the last slot is a torn tail.
        tail = lines.pop() if lines else b""
        self.torn_tail = bool(tail)
        self.valid_bytes = len(raw) - len(tail)
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                if index == len(lines) - 1:
                    self.torn_tail = True
                    self.valid_bytes -= len(line) + 1
                    break
                raise SimulationError(
                    f"corrupt replay log {self.path}: undecodable record "
                    f"{index + 1} is not the final line"
                ) from exc
            records.append(record)
        if not records or records[0].get("type") != "header":
            raise SimulationError(f"replay log {self.path} has no header record")
        self.header = records[0]
        if self.header.get("version") != WAL_VERSION:
            raise SimulationError(
                f"replay log {self.path} has unsupported version "
                f"{self.header.get('version')!r} (expected {WAL_VERSION})"
            )
        self.topology = topology_from_dict(self.header["topology"])
        self.manager_kwargs = dict(self.header.get("manager", {}))
        self.core = str(self.header.get("core", "array"))
        self._records = records[1:]
        self.clean_shutdown = any(r.get("type") == "shutdown" for r in self._records)

    def events(self) -> Iterator[Tuple[int, Request]]:
        """Yield every durable ``(seq, request)`` in log order."""
        for record in self._records:
            if record.get("type") == "event":
                yield int(record["seq"]), request_from_record(record)

    def epoch_ends(self) -> List[int]:
        """``seq_end`` of every epoch barrier, in log order."""
        return [int(r["seq_end"]) for r in self._records if r.get("type") == "epoch"]

    @property
    def last_seq(self) -> int:
        """Highest durable event sequence number (-1 when empty)."""
        seqs = [int(r["seq"]) for r in self._records if r.get("type") == "event"]
        return max(seqs) if seqs else -1
