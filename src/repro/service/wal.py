"""Append-only write-ahead replay log for the admission service.

One JSON object per line, four record types:

``header``    First line.  Carries the log format version, the
              :class:`~repro.parallel.jobs.TopologySpec` the manager's
              network was built from, and the manager construction
              kwargs — everything recovery needs to rebuild an
              identical manager from nothing.
``event``     One mutating request (establish/teardown/fail/repair) in
              wire form plus its global sequence number ``seq``.
              **Write-ahead**: the service appends and fsyncs an
              epoch's event records *before* applying any of them to
              the manager, so every applied event is durable.
``epoch``     Epoch barrier after a batch was applied; ``seq_end`` is
              the last applied sequence number.  Informational — it
              lets tooling see the live batching — but recovery does
              not need it: micro-epoch batching is bitwise-identical
              to sequential application, so replay just applies every
              durable event in order.
``shutdown``  Clean-drain marker; its absence means the previous run
              crashed (recovery works either way).

Every record carries a ``crc`` field — a CRC32 of the record's
canonical JSON without that field — so a damaged line is *detectably*
damaged: without it, a bit-flip in a terminated final line could decode
into a different valid record and silently rewrite history, which is
exactly what the tear-rule fuzz tests must be able to rule out.

Torn tails: a crash can leave a partial final line.
:class:`ReplayLogReader` tolerates exactly one undecodable *final*
record (discarded with a note); garbage earlier in the log is an
error, because it means durable history was corrupted, not torn.

Disk faults surface as :class:`WALWriteError`.  A failed append or
fsync marks the writer *dirty*: nothing further may be appended until
:meth:`ReplayLogWriter.repair` truncates the file back to the last
fsync-durable byte.  :meth:`ReplayLogWriter.probe` is repair plus a
test fsync — the primitive the server's degraded-mode probation loop
polls until the disk admits writes again.

This module does file I/O but no wall-clock reads and no randomness:
log content is a pure function of the request sequence, which is what
makes a live trace convertible into an offline campaign.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.parallel.jobs import TOPOLOGY_KINDS, TopologySpec
from repro.service.chaos import (
    DiskFaultPlan,
    FaultyWALFile,
    active_disk_plan,
    chaos_point,
)
from repro.service.protocol import Request, parse_request, qos_to_dict
from repro.topology.transit_stub import TransitStubParams

#: Log format version; bump on incompatible record changes.
#: v2: every record carries a ``crc`` integrity field.
WAL_VERSION = 2

#: Manager-constructor kwargs a header may carry (see ``make_manager``).
MANAGER_KWARG_KEYS = (
    "policy",
    "routing",
    "flood_hop_bound",
    "multiplex_backups",
    "reestablish_backups",
    "route_cache_probe",
)


# ----------------------------------------------------------------------
# topology spec (de)serialization
# ----------------------------------------------------------------------
def topology_to_dict(spec: TopologySpec) -> Dict[str, Any]:
    """JSON-able rendering of a topology recipe (drops ``None`` fields)."""
    data: Dict[str, Any] = {
        "kind": spec.kind,
        "capacity": spec.capacity,
        "seed": spec.seed,
        "nodes": spec.nodes,
    }
    if spec.edges is not None:
        data["edges"] = spec.edges
    if spec.cols is not None:
        data["cols"] = spec.cols
    if spec.tier is not None:
        data["tier"] = dataclasses.asdict(spec.tier)
    return data


def topology_from_dict(data: Dict[str, Any]) -> TopologySpec:
    """Rebuild a topology recipe from its wire form."""
    if not isinstance(data, dict):
        raise SimulationError(f"topology must be an object, got {type(data).__name__}")
    tier = None
    if data.get("tier") is not None:
        tier = TransitStubParams(**data["tier"])
    try:
        return TopologySpec(
            kind=str(data["kind"]),
            capacity=float(data["capacity"]),
            seed=int(data.get("seed", 0)),
            nodes=int(data.get("nodes", 0)),
            edges=None if data.get("edges") is None else int(data["edges"]),
            tier=tier,
            cols=None if data.get("cols") is None else int(data["cols"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"invalid topology spec {data!r}: {exc}") from exc


def parse_topology_arg(text: str) -> TopologySpec:
    """Parse a CLI topology argument: ``kind:key=value,key=value,...``.

    Examples: ``grid:nodes=4,cols=4,capacity=1000`` or
    ``waxman:nodes=20,capacity=155,seed=7``.  Keys are the
    :class:`TopologySpec` fields except ``tier`` (transit-stub shapes
    keep their defaults from the CLI).
    """
    kind, _, rest = text.partition(":")
    if kind not in TOPOLOGY_KINDS:
        raise SimulationError(
            f"unknown topology kind {kind!r}; choose from {TOPOLOGY_KINDS}"
        )
    fields: Dict[str, Any] = {"kind": kind, "capacity": 1000.0, "seed": 0}
    int_keys = ("seed", "nodes", "edges", "cols")
    for part in filter(None, rest.split(",")):
        key, sep, value = part.partition("=")
        if not sep:
            raise SimulationError(f"topology option {part!r} is not key=value")
        if key == "capacity":
            fields[key] = float(value)
        elif key in int_keys:
            fields[key] = int(value)
        else:
            raise SimulationError(
                f"unknown topology option {key!r}; choose from "
                f"('capacity',) + {int_keys}"
            )
    return TopologySpec(**fields)


# ----------------------------------------------------------------------
# record shaping
# ----------------------------------------------------------------------
def request_to_record(seq: int, request: Request) -> Dict[str, Any]:
    """The ``event`` record for one mutating request."""
    record: Dict[str, Any] = {"type": "event", "seq": seq, "op": request.op}
    if request.op == "establish":
        assert request.qos is not None
        record["src"] = request.src
        record["dst"] = request.dst
        record["qos"] = qos_to_dict(request.qos)
    elif request.op == "teardown":
        record["conn_id"] = request.conn_id
    else:  # fail / repair
        record["link"] = list(request.link or ())
    return record


def request_from_record(record: Dict[str, Any]) -> Request:
    """Rebuild the request a logged ``event`` record describes."""
    return parse_request({"op": record["op"], "id": record["seq"], **{
        k: v for k, v in record.items() if k in ("src", "dst", "qos", "conn_id", "link")
    }})


class WALWriteError(SimulationError):
    """An append or fsync failed; the writer is dirty until repaired."""


class WALRecordError(ValueError):
    """A log line is not a valid CRC-verified record."""


def _canonical(record: Dict[str, Any]) -> bytes:
    return json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")


def encode_record(record: Dict[str, Any]) -> bytes:
    """One wire line: the record plus a CRC32 over its canonical JSON."""
    body = {k: v for k, v in record.items() if k != "crc"}
    crc = zlib.crc32(_canonical(body)) & 0xFFFFFFFF
    return _canonical({**body, "crc": crc}) + b"\n"


def decode_record(line: bytes) -> Dict[str, Any]:
    """Decode and CRC-verify one log line (without its newline)."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WALRecordError(f"undecodable record: {exc}") from exc
    if not isinstance(record, dict):
        raise WALRecordError(f"record is not an object: {record!r}")
    stored = record.pop("crc", None)
    if stored is None:
        raise WALRecordError("record has no crc field")
    actual = zlib.crc32(_canonical(record)) & 0xFFFFFFFF
    if stored != actual:
        raise WALRecordError(f"crc mismatch: stored {stored}, computed {actual}")
    return record


class ReplayLogWriter:
    """Durable appender with write-ahead semantics.

    Usage per epoch::

        writer.log_events(seq_and_requests)   # append + fsync, THEN
        ...apply the batch to the manager...
        writer.log_epoch(last_seq)            # barrier marker

    The epoch marker itself is best-effort (flushed with the next batch
    or on close, swallowed entirely if the disk is faulting); losing it
    is harmless because recovery replays every durable event regardless
    of markers.

    Failure model: any :class:`OSError` out of an append or fsync marks
    the writer dirty and raises :class:`WALWriteError`.  While dirty,
    further appends are refused — the file may hold written-but-never-
    fsynced (hence never-acked, never-applied) bytes past ``_durable``,
    and appending after them would interleave durable history with
    garbage.  :meth:`repair` truncates back to the durable prefix and
    re-arms the writer; :meth:`probe` additionally proves the disk
    accepts an fsync again.
    """

    def __init__(
        self,
        path: Union[str, Path],
        topology: TopologySpec,
        manager_kwargs: Optional[Dict[str, Any]] = None,
        core: str = "array",
        disk_faults: Optional[DiskFaultPlan] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        size = self.path.stat().st_size if self.path.exists() else 0
        if size:
            self._verify_reappend_target()
        # Append-only by design: the whole point is that existing durable
        # history must never be rewritten, so the atomic tmp-then-rename
        # primitive is the wrong tool here.  Unbuffered so ``_written``
        # tracks actual file bytes, not libc buffer occupancy.
        raw = open(  # repro-lint: disable=ART001 — append-only WAL primitive
            self.path, "ab", buffering=0
        )
        plan = disk_faults if disk_faults is not None else active_disk_plan()
        self._fh: Any = FaultyWALFile(raw, plan) if plan is not None else raw
        self._dirty = False
        self._written = size
        self._durable = size
        if size == 0:
            header = {
                "type": "header",
                "version": WAL_VERSION,
                "core": core,
                "topology": topology_to_dict(topology),
                "manager": dict(manager_kwargs or {}),
            }
            self._append(encode_record(header))
            self._sync()

    def _verify_reappend_target(self) -> None:
        """Refuse to extend a log whose header or tail is damaged.

        Without this, appending to a corrupted log buries the damage
        under fresh records and it only surfaces on the *next* recovery
        — far from the fault.  Torn tails are the recovery path's job
        (:func:`repro.service.replay.recover_engine` truncates them
        before re-attaching a writer), so here they are an error.
        """
        with open(self.path, "rb") as fh:
            head = fh.read(65536)
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
        if last != b"\n":
            raise SimulationError(
                f"replay log {self.path} has a torn (unterminated) tail; "
                f"recover it before appending"
            )
        first_line, sep, _ = head.partition(b"\n")
        if not sep:
            raise SimulationError(
                f"replay log {self.path} header line is unterminated or oversized"
            )
        try:
            header = decode_record(first_line)
        except WALRecordError as exc:
            raise SimulationError(
                f"replay log {self.path} header is corrupt: {exc}"
            ) from exc
        if header.get("type") != "header":
            raise SimulationError(f"replay log {self.path} has no header record")
        if header.get("version") != WAL_VERSION:
            raise SimulationError(
                f"replay log {self.path} has unsupported version "
                f"{header.get('version')!r} (expected {WAL_VERSION})"
            )

    @property
    def dirty(self) -> bool:
        return self._dirty

    @property
    def durable_bytes(self) -> int:
        return self._durable

    def _append(self, data: bytes) -> None:
        if self._dirty:
            raise WALWriteError(
                f"WAL writer for {self.path} is dirty; repair() before appending"
            )
        try:
            self._fh.write(data)
        except OSError as exc:
            self._dirty = True
            raise WALWriteError(f"WAL append failed: {exc}") from exc
        self._written += len(data)

    def _sync(self) -> None:
        try:
            if hasattr(self._fh, "sync"):
                self._fh.sync()
            else:
                self._fh.flush()
                os.fsync(self._fh.fileno())
        except OSError as exc:
            self._dirty = True
            raise WALWriteError(f"WAL fsync failed: {exc}") from exc
        self._durable = self._written

    def repair(self) -> bool:
        """Truncate back to the fsync-durable prefix and re-arm.

        Safe to call on a clean writer (no-op).  Returns ``False`` and
        stays dirty if the truncate itself fails.
        """
        try:
            os.ftruncate(self._fh.fileno(), self._durable)
        except OSError:
            self._dirty = True
            return False
        self._written = self._durable
        self._dirty = False
        return True

    def probe(self) -> bool:
        """Repair, then prove the disk accepts an fsync again.

        The degraded-mode probation loop calls this until it succeeds;
        each success is one probation point.
        """
        if not self.repair():
            return False
        try:
            self._sync()
        except WALWriteError:
            return False
        return True

    def log_events(self, batch: List[Tuple[int, Request]]) -> None:
        """Durably append one epoch's events *before* they are applied.

        Raises :class:`WALWriteError` (writer left dirty) if the disk
        refuses; the caller must not apply the batch in that case.
        """
        if not batch:
            return
        self._append(
            b"".join(encode_record(request_to_record(seq, req)) for seq, req in batch)
        )
        chaos_point("pre-fsync")
        self._sync()
        chaos_point("post-fsync")

    def log_epoch(self, seq_end: int) -> None:
        """Append the epoch barrier marker; best-effort, never raises."""
        if self._dirty:
            return
        try:
            self._append(encode_record({"type": "epoch", "seq_end": seq_end}))
        except WALWriteError:
            pass

    def log_shutdown(self, seq_end: int) -> None:
        """Mark a clean drain; durable immediately."""
        self._append(encode_record({"type": "shutdown", "seq_end": seq_end}))
        self._sync()

    def close(self) -> None:
        if not self._fh.closed:
            if not self._dirty:
                try:
                    self._sync()
                except WALWriteError:
                    pass
            self._fh.close()

    def __enter__(self) -> "ReplayLogWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ReplayLogReader:
    """Parse a replay log, tolerating a torn final line.

    Attributes (after construction):
        header: The decoded header record.
        topology: The rebuilt :class:`TopologySpec`.
        manager_kwargs: Manager constructor kwargs from the header.
        core: Manager core name from the header.
        clean_shutdown: Whether a ``shutdown`` marker closed the log.
        torn_tail: Whether a torn final record was discarded.
        valid_bytes: Length of the durable prefix (everything up to and
            including the last valid newline-terminated record); a
            recovering writer truncates the file here before appending.

    Tear rule: a record is only durable once its full line *including
    the newline* is on disk (the writer fsyncs whole batches), so any
    unterminated tail — even one that happens to decode — was written
    mid-crash and never applied; it is discarded.  The same goes for a
    terminated final line that fails to decode or CRC-verify — a torn
    batch write can leave whole terminated-but-unsynced lines, and a
    bit-flipped tail must never be mistaken for a different valid
    record.  Garbage anywhere earlier is corruption of durable history
    and raises.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        raw = self.path.read_bytes()
        records: List[Dict[str, Any]] = []
        lines = raw.split(b"\n")
        # A well-formed log ends with "\n", leaving one empty trailing
        # chunk; anything else in the last slot is a torn tail.
        tail = lines.pop() if lines else b""
        self.torn_tail = bool(tail)
        self.valid_bytes = len(raw) - len(tail)
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                record = decode_record(line)
            except WALRecordError as exc:
                if index == len(lines) - 1:
                    self.torn_tail = True
                    self.valid_bytes -= len(line) + 1
                    break
                raise SimulationError(
                    f"corrupt replay log {self.path}: undecodable record "
                    f"{index + 1} is not the final line ({exc})"
                ) from exc
            records.append(record)
        if not records or records[0].get("type") != "header":
            raise SimulationError(f"replay log {self.path} has no header record")
        self.header = records[0]
        if self.header.get("version") != WAL_VERSION:
            raise SimulationError(
                f"replay log {self.path} has unsupported version "
                f"{self.header.get('version')!r} (expected {WAL_VERSION})"
            )
        self.topology = topology_from_dict(self.header["topology"])
        self.manager_kwargs = dict(self.header.get("manager", {}))
        self.core = str(self.header.get("core", "array"))
        self._records = records[1:]
        self.clean_shutdown = any(r.get("type") == "shutdown" for r in self._records)

    def events(self) -> Iterator[Tuple[int, Request]]:
        """Yield every durable ``(seq, request)`` in log order."""
        for record in self._records:
            if record.get("type") == "event":
                yield int(record["seq"]), request_from_record(record)

    def epoch_ends(self) -> List[int]:
        """``seq_end`` of every epoch barrier, in log order."""
        return [int(r["seq_end"]) for r in self._records if r.get("type") == "epoch"]

    @property
    def last_seq(self) -> int:
        """Highest durable event sequence number (-1 when empty)."""
        seqs = [int(r["seq"]) for r in self._records if r.get("type") == "event"]
        return max(seqs) if seqs else -1
