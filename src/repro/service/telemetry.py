"""Decision-latency telemetry for the admission service.

This is the *observability* side of the service and it may read real
time (it is exempt from lint rule DET003 by path); nothing here feeds
back into admission decisions, so determinism of the decision plane is
untouched.

:class:`LatencyRecorder` keeps a bounded reservoir of per-request
decision latencies (receipt -> response ready) and reports the
percentiles the loadgen benchmark records into ``BENCH_core_ops.json``.
"""

from __future__ import annotations

from typing import Dict, List


def percentile(sorted_samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, int(fraction * len(sorted_samples))))
    return sorted_samples[rank]


class LatencyRecorder:
    """Bounded sample sink with percentile summaries.

    Keeps the first ``capacity`` samples (a 10^5-request campaign fits
    whole by default); once full, further samples only bump the count,
    so long runs cannot grow memory without bound.
    """

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self.samples: List[float] = []
        self.count = 0
        self.dropped = 0

    def record(self, seconds: float) -> None:
        self.count += 1
        if len(self.samples) < self.capacity:
            self.samples.append(seconds)
        else:
            self.dropped += 1

    def summary(self) -> Dict[str, float]:
        """Percentiles in microseconds, plus counts."""
        ordered = sorted(self.samples)
        n = len(ordered)
        return {
            "count": float(self.count),
            "sampled": float(n),
            "p50_us": percentile(ordered, 0.50) * 1e6,
            "p90_us": percentile(ordered, 0.90) * 1e6,
            "p99_us": percentile(ordered, 0.99) * 1e6,
            "max_us": (ordered[-1] * 1e6) if ordered else 0.0,
            "mean_us": (sum(ordered) / n * 1e6) if ordered else 0.0,
        }
