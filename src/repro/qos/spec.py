"""QoS and traffic specifications for DR-connection requests.

Following Section 2.2 and 3.1 of the paper, a client's request carries:

* a *traffic specification* describing its generation behaviour (we keep
  the classic (peak, average, burst) linear-bounded-arrival form and map
  it to an equivalent bandwidth, since the paper "assume[s] that the
  performance-QoS requirement is given in the form of bandwidth");
* an *elastic performance QoS*: the min-max range model — minimum
  bandwidth ``b_min``, maximum ``b_max``, the increment size Δ in which
  reservations may change, and the utility/reward per extra increment;
* a *dependability QoS*: a single-value requirement that the connection
  be protected by backup channels (one in the paper) that are
  link-disjoint from the primary whenever possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import QoSSpecError


@dataclass(frozen=True)
class TrafficSpec:
    """Linear-bounded traffic description of a client's source.

    Attributes:
        peak_rate: Maximum instantaneous generation rate (Kb/s).
        average_rate: Long-term average rate (Kb/s).
        max_burst: Maximum burst size (Kb).  Zero means perfectly smooth.
    """

    peak_rate: float
    average_rate: float
    max_burst: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_rate <= 0:
            raise QoSSpecError(f"peak rate must be positive, got {self.peak_rate}")
        if self.average_rate <= 0:
            raise QoSSpecError(f"average rate must be positive, got {self.average_rate}")
        if self.average_rate > self.peak_rate:
            raise QoSSpecError(
                f"average rate {self.average_rate} exceeds peak rate {self.peak_rate}"
            )
        if self.max_burst < 0:
            raise QoSSpecError(f"max burst must be non-negative, got {self.max_burst}")

    def equivalent_bandwidth(self, delay_budget: float | None = None) -> float:
        """Bandwidth that must be reserved to honour this traffic.

        Without a delay budget the average rate suffices (fluid model).
        With a budget ``D`` (seconds), a burst of ``max_burst`` must
        drain within ``D``, so the reservation is
        ``max(average_rate, max_burst / D)`` capped at the peak rate —
        the standard equivalent-bandwidth bound for a linear-bounded
        source behind a rate server.
        """
        if delay_budget is None:
            return self.average_rate
        if delay_budget <= 0:
            raise QoSSpecError(f"delay budget must be positive, got {delay_budget}")
        needed = max(self.average_rate, self.max_burst / delay_budget)
        return min(needed, self.peak_rate)


@dataclass(frozen=True)
class ElasticQoS:
    """Min-max range performance QoS (the paper's elastic model).

    The bandwidth reserved for a primary channel is always one of the
    quantised *levels* ``b_min + i * increment`` for
    ``i in 0 .. num_levels - 1``; the paper requires the range to be an
    integral multiple of the increment size.

    Attributes:
        b_min: Minimum acceptable bandwidth (request rejected below it).
        b_max: Bandwidth giving the best performance QoS.
        increment: Granularity Δ of reservation changes.
        utility: Reward per extra increment; drives the adaptation
            policy's distribution of spare resources.
    """

    b_min: float
    b_max: float
    increment: float
    utility: float = 1.0
    #: Cached level count; the redistribution engine reads the level
    #: geometry once per candidate per event, so it is computed once
    #: here instead of per access (the dataclass is frozen, making the
    #: value valid for the object's whole lifetime).
    _num_levels: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.b_min <= 0:
            raise QoSSpecError(f"b_min must be positive, got {self.b_min}")
        if self.b_max < self.b_min:
            raise QoSSpecError(f"b_max {self.b_max} is below b_min {self.b_min}")
        if self.increment <= 0:
            raise QoSSpecError(f"increment must be positive, got {self.increment}")
        if self.utility < 0:
            raise QoSSpecError(f"utility must be non-negative, got {self.utility}")
        span = self.b_max - self.b_min
        steps = span / self.increment
        if abs(steps - round(steps)) > 1e-9:
            raise QoSSpecError(
                f"range [{self.b_min}, {self.b_max}] is not an integral "
                f"multiple of the increment {self.increment}"
            )
        object.__setattr__(self, "_num_levels", 1 + round(steps))

    @property
    def num_levels(self) -> int:
        """Number of distinct reservation levels, N = 1 + (b_max - b_min)/Δ."""
        return self._num_levels

    @property
    def max_level(self) -> int:
        """Index of the highest level, N - 1."""
        return self._num_levels - 1

    def level_bandwidth(self, level: int) -> float:
        """Bandwidth of level ``level`` (``b_min + level * Δ``)."""
        if not 0 <= level < self.num_levels:
            raise QoSSpecError(f"level {level} outside [0, {self.num_levels - 1}]")
        return self.b_min + level * self.increment

    def level_of(self, bandwidth: float) -> int:
        """Level index whose bandwidth equals ``bandwidth``.

        Raises:
            QoSSpecError: when ``bandwidth`` is not exactly on a level.
        """
        raw = (bandwidth - self.b_min) / self.increment
        level = round(raw)
        if abs(raw - level) > 1e-9 or not 0 <= level < self.num_levels:
            raise QoSSpecError(f"bandwidth {bandwidth} is not a valid level of {self}")
        return level

    def clamp_level(self, level: int) -> int:
        """Clamp an arbitrary integer to the valid level range."""
        return max(0, min(self.max_level, level))

    def is_elastic(self) -> bool:
        """True when the range actually allows more than one level."""
        return self.num_levels > 1


def single_value_qos(bandwidth: float, utility: float = 1.0) -> ElasticQoS:
    """The classic single-value QoS model as a degenerate elastic range.

    The baseline scheme of Han & Shin reserves exactly one bandwidth
    value; modelling it as ``b_min == b_max`` lets the baseline share
    every code path of the elastic manager.
    """
    return ElasticQoS(b_min=bandwidth, b_max=bandwidth, increment=bandwidth, utility=utility)


@dataclass(frozen=True)
class DependabilityQoS:
    """Single-value dependability requirement.

    Attributes:
        num_backups: Backup channels to establish (the paper analyses
            one backup per DR-connection).
        require_link_disjoint: Insist on a fully link-disjoint backup;
            when False, a maximally-disjoint backup is accepted if no
            disjoint path exists (the paper's footnote 1).
    """

    num_backups: int = 1
    require_link_disjoint: bool = False

    def __post_init__(self) -> None:
        if self.num_backups < 0:
            raise QoSSpecError(f"num_backups must be non-negative, got {self.num_backups}")

    @property
    def wants_backup(self) -> bool:
        """Whether any backup channel is required at all."""
        return self.num_backups > 0


@dataclass(frozen=True)
class ConnectionQoS:
    """Complete QoS contract of one DR-connection request."""

    performance: ElasticQoS
    dependability: DependabilityQoS = field(default_factory=DependabilityQoS)

    def describe(self) -> str:
        """One-line human-readable rendering used in logs and examples."""
        perf = self.performance
        dep = self.dependability
        shape = (
            f"{perf.b_min:g}..{perf.b_max:g} Kb/s (Δ={perf.increment:g}, "
            f"N={perf.num_levels}, utility={perf.utility:g})"
        )
        backup = f"{dep.num_backups} backup(s)" if dep.wants_backup else "no backup"
        return f"{shape}, {backup}"


def levels_between(qos: ElasticQoS, low_bw: float, high_bw: float) -> list[int]:
    """All level indices whose bandwidth lies within ``[low_bw, high_bw]``."""
    if low_bw > high_bw:
        raise QoSSpecError(f"empty bandwidth window [{low_bw}, {high_bw}]")
    lo = max(0, math.ceil((low_bw - qos.b_min) / qos.increment - 1e-9))
    hi = min(qos.max_level, math.floor((high_bw - qos.b_min) / qos.increment + 1e-9))
    return list(range(lo, hi + 1))
