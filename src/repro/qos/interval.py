"""Interval QoS: run-time k-out-of-M packet management (paper §2.2).

Besides the min-max *range* model used for channel establishment, the
paper describes a second elastic-QoS flavour for run-time channel
management: "QoS is expressed in the form of k-out-of-M within a fixed
time interval, meaning that at least k but less than or equal to M
packets should arrive within a fixed time interval.  The link manager
can selectively ignore a packet as long as it can satisfy the minimum
k-out-of-M requirement."

This module implements that link-manager logic:

* :class:`IntervalQoS` — the (k, M) contract;
* :class:`IntervalRegulator` — a tumbling-window regulator that grants
  drop requests (e.g. under congestion) only while the window can still
  meet its k-of-M floor, and *forces* forwarding otherwise;
* :class:`SkipOverRegulator` — the skip-over model of Koren & Shasha
  [12] cited by the paper: after ``s - 1`` consecutively forwarded
  packets, one packet may be skipped.

Both regulators expose counters so tests and examples can verify the
guarantee held over every completed window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import QoSSpecError


@dataclass(frozen=True)
class IntervalQoS:
    """A k-out-of-M interval contract.

    Attributes:
        k: Minimum packets that must be forwarded per window.
        m: Window length in packets.
    """

    k: int
    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise QoSSpecError(f"window length must be >= 1, got {self.m}")
        if not 0 <= self.k <= self.m:
            raise QoSSpecError(f"need 0 <= k <= M, got k={self.k}, M={self.m}")

    @property
    def min_forward_ratio(self) -> float:
        """Guaranteed long-run fraction of forwarded packets, k / M."""
        return self.k / self.m


@dataclass
class RegulatorStats:
    """Forward/drop counters of a regulator."""

    offered: int = 0
    forwarded: int = 0
    dropped: int = 0
    forced_forwards: int = 0
    windows_completed: int = 0
    #: Forwarded count of each completed window (guarantee audit trail).
    window_history: List[int] = field(default_factory=list)

    @property
    def drop_ratio(self) -> float:
        """Dropped fraction of offered packets (0 with none offered)."""
        return self.dropped / self.offered if self.offered else 0.0


class IntervalRegulator:
    """Tumbling-window k-of-M packet regulator.

    Usage: for each packet call :meth:`offer` with ``drop_requested=True``
    when the link would like to shed it (congestion) — the return value
    says whether the packet was actually forwarded.  The regulator never
    lets a completed window fall below ``k`` forwarded packets: once
    dropping one more packet would make ``k`` unreachable, forwarding is
    forced regardless of the request.
    """

    def __init__(self, qos: IntervalQoS) -> None:
        self.qos = qos
        self.stats = RegulatorStats()
        self._position = 0      # packets seen in the current window
        self._forwarded = 0     # packets forwarded in the current window

    def must_forward(self) -> bool:
        """Whether the next packet cannot be dropped.

        With ``r`` packets left in the window (including the next one),
        dropping the next packet caps the achievable forwards at
        ``forwarded + r - 1``; if that is below ``k``, forwarding is
        mandatory.
        """
        remaining = self.qos.m - self._position
        return self._forwarded + (remaining - 1) < self.qos.k

    def offer(self, drop_requested: bool = False) -> bool:
        """Process one packet; returns True when it was forwarded."""
        self.stats.offered += 1
        if drop_requested and not self.must_forward():
            forwarded = False
            self.stats.dropped += 1
        else:
            forwarded = True
            self.stats.forwarded += 1
            if drop_requested:
                self.stats.forced_forwards += 1
            self._forwarded += 1
        self._position += 1
        if self._position == self.qos.m:
            self.stats.windows_completed += 1
            self.stats.window_history.append(self._forwarded)
            self._position = 0
            self._forwarded = 0
        return forwarded

    def drop_budget(self) -> int:
        """Packets that may still be dropped in the current window."""
        remaining = self.qos.m - self._position
        return max(0, self._forwarded + remaining - self.qos.k)

    def verify_guarantee(self) -> None:
        """Assert every completed window met its floor.

        Raises:
            QoSSpecError: if any completed window forwarded fewer than
                ``k`` packets (would indicate a regulator bug).
        """
        for index, count in enumerate(self.stats.window_history):
            if count < self.qos.k:
                raise QoSSpecError(
                    f"window {index} forwarded {count} < k={self.qos.k}"
                )


class SkipOverRegulator:
    """Skip-over regulation: one skippable packet every ``s`` packets.

    The skips model of [12] (cited in §2.2): packets are "red" (must
    forward) except that after ``s - 1`` consecutively forwarded
    packets the next packet is "blue" and may be skipped.  ``s = 1``
    would allow skipping everything and is rejected.
    """

    def __init__(self, skip_factor: int) -> None:
        if skip_factor < 2:
            raise QoSSpecError(f"skip factor must be >= 2, got {skip_factor}")
        self.skip_factor = skip_factor
        self.stats = RegulatorStats()
        self._since_skip = 0  # forwarded packets since the last skip

    def can_skip(self) -> bool:
        """Whether the next packet is currently skippable ("blue")."""
        return self._since_skip >= self.skip_factor - 1

    def offer(self, drop_requested: bool = False) -> bool:
        """Process one packet; returns True when it was forwarded."""
        self.stats.offered += 1
        if drop_requested and self.can_skip():
            self.stats.dropped += 1
            self._since_skip = 0
            return False
        self.stats.forwarded += 1
        if drop_requested:
            self.stats.forced_forwards += 1
        self._since_skip += 1
        return True

    def equivalent_interval_qos(self) -> IntervalQoS:
        """The (k, M) contract skip-over guarantees: (s-1)-out-of-s."""
        return IntervalQoS(k=self.skip_factor - 1, m=self.skip_factor)
