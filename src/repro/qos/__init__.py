"""QoS contracts: traffic specs, elastic performance QoS, dependability QoS."""

from __future__ import annotations

from repro.qos.interval import (
    IntervalQoS,
    IntervalRegulator,
    RegulatorStats,
    SkipOverRegulator,
)
from repro.qos.spec import (
    ConnectionQoS,
    DependabilityQoS,
    ElasticQoS,
    TrafficSpec,
    levels_between,
    single_value_qos,
)

__all__ = [
    "IntervalQoS",
    "IntervalRegulator",
    "RegulatorStats",
    "SkipOverRegulator",
    "ConnectionQoS",
    "DependabilityQoS",
    "ElasticQoS",
    "TrafficSpec",
    "levels_between",
    "single_value_qos",
]
