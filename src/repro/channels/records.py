"""Connection records and event-impact reports.

A :class:`DRConnection` bundles everything the network knows about one
dependable real-time connection: its QoS contract, its primary and
backup routes, its current elastic level and its lifecycle state.
:class:`EventImpact` captures what one network event (arrival,
termination, failure) did to the *other* channels — the raw material
for estimating the Markov model's ``Pf, Ps, A, B, T`` parameters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.qos.spec import ConnectionQoS, ElasticQoS
from repro.topology.graph import LinkId


class ConnectionState(enum.Enum):
    """Lifecycle of a DR-connection."""

    #: Primary carrying traffic, backup (if any) in reserve.
    ACTIVE = "active"
    #: Primary lost to a failure; traffic now on the activated backup.
    FAILED_OVER = "failed-over"
    #: Lost to a failure that could not be recovered (no/unusable backup).
    DROPPED = "dropped"
    #: Ended normally by the client.
    TERMINATED = "terminated"


@dataclass
class DRConnection:
    """One dependable real-time connection.

    Attributes:
        conn_id: Unique identifier assigned by the manager.
        source: Client's node.
        destination: Receiver's node.
        qos: The full QoS contract (elastic performance + dependability).
        primary_path: Node route of the primary channel.
        primary_links: Canonical link ids of the primary route.
        backup_path: Node route of the backup channel (``None`` when the
            connection is currently unprotected).
        backup_links: Link ids of the backup route.
        backup_overlap: Links the backup shares with the primary (0 when
            fully disjoint; >0 only for maximally-disjoint backups).
        level: Current elastic level of the live channel (0 = minimum).
        state: Lifecycle state.
        on_backup: True once traffic moved to the activated backup; an
            activated backup runs at its minimum bandwidth and does not
            participate in elastic raises ("only minimum required ...
            remain unchanged for backups").
        established_at: Simulation time of establishment (stats only).
    """

    conn_id: int
    source: int
    destination: int
    qos: ConnectionQoS
    primary_path: List[int]
    primary_links: List[LinkId]
    backup_path: Optional[List[int]] = None
    backup_links: Optional[List[LinkId]] = None
    backup_overlap: int = 0
    level: int = 0
    state: ConnectionState = ConnectionState.ACTIVE
    on_backup: bool = False
    established_at: float = 0.0
    #: Performance memo owned by the redistribution engine: the resolved
    #: per-link reservation states of ``primary_links`` plus the QoS
    #: level scalars, stored as ``(primary_links reference,
    #: [LinkState, ...], max_level, increment, increment - EPSILON)``
    #: and validated by identity against the current ``primary_links``
    #: (the route list is replaced wholesale on any reroute, never
    #: mutated in place; the QoS contract is frozen).  The memo dies
    #: with the record, so it cannot leak or outlive the connection.
    link_state_memo: Optional[Tuple] = field(default=None, repr=False, compare=False)

    @property
    def elastic_qos(self) -> ElasticQoS:
        """The performance part of the contract (engine protocol hook)."""
        return self.qos.performance

    @property
    def is_live(self) -> bool:
        """Whether the connection is currently carrying traffic."""
        return self.state in (ConnectionState.ACTIVE, ConnectionState.FAILED_OVER)

    @property
    def is_elastic_participant(self) -> bool:
        """Whether the connection competes for elastic extras."""
        return (
            self.state is ConnectionState.ACTIVE
            and not self.on_backup
            and self.qos.performance.is_elastic()
        )

    @property
    def has_backup(self) -> bool:
        """Whether an (inactive) backup is currently reserved."""
        return self.backup_links is not None and not self.on_backup

    @property
    def bandwidth(self) -> float:
        """Bandwidth currently reserved for the live channel.

        Computed inline rather than via ``level_bandwidth``: ``level`` is
        maintained by the manager and always valid, and this property is
        read for every live connection at every measurement sample, so
        the range check there is pure overhead here.
        """
        perf = self.qos.performance
        if self.on_backup:
            return perf.b_min
        return perf.b_min + self.level * perf.increment

    @property
    def live_links(self) -> List[LinkId]:
        """Links of whichever route currently carries traffic."""
        if self.on_backup:
            assert self.backup_links is not None
            return self.backup_links
        return self.primary_links


class EventKind(enum.Enum):
    """Network events that perturb existing channels."""

    ARRIVAL = "arrival"
    TERMINATION = "termination"
    FAILURE = "failure"
    REPAIR = "repair"


@dataclass
class EventImpact:
    """What one network event did to pre-existing primary channels.

    ``direct`` holds the level transition ``(before, after)`` of every
    *directly-chained* channel — one sharing at least a link with the
    event's channel (for failures: with any activated backup, per the
    paper's retreat rule).  ``indirect_changed`` holds transitions of
    channels that rose without being directly chained; the full indirect
    set is only known on sampled events (see the estimator), so
    unchanged indirect channels are not listed here.
    """

    kind: EventKind
    time: float = 0.0
    conn_id: Optional[int] = None
    accepted: bool = True
    direct: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    indirect_changed: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: Failure-specific outcome lists (connection ids).
    failed_link: Optional[LinkId] = None
    activated: List[int] = field(default_factory=list)
    dropped: List[int] = field(default_factory=list)
    lost_backup: List[int] = field(default_factory=list)
    #: Every link failed by this event.  Single-link failures keep
    #: ``failed_link`` set as before; node failures and correlated
    #: bursts fail several links atomically and list them all here.
    failed_links: List[LinkId] = field(default_factory=list)
    #: Node whose failure caused this event (node-failure injector).
    failed_node: Optional[int] = None
    #: Connections whose backup activation itself failed (injected
    #: backup-activation fault); each is also listed in ``dropped``.
    activation_faults: List[int] = field(default_factory=list)

    def merge_change(self, conn_id: int, before: int, after: int, direct: bool) -> None:
        """Record one channel's net level change for this event."""
        table = self.direct if direct else self.indirect_changed
        if conn_id in table:
            first_before, _ = table[conn_id]
            table[conn_id] = (first_before, after)
        else:
            table[conn_id] = (before, after)


@dataclass
class ManagerStats:
    """Lifetime counters of a :class:`~repro.channels.manager.NetworkManager`."""

    requests: int = 0
    accepted: int = 0
    rejected_no_primary: int = 0
    rejected_no_backup: int = 0
    terminated: int = 0
    link_failures: int = 0
    link_repairs: int = 0
    backups_activated: int = 0
    connections_dropped: int = 0
    backups_lost: int = 0
    backups_reestablished: int = 0
    #: Whole-node failures applied via ``fail_node`` (each also counts
    #: its incident links in ``link_failures``).
    node_failures: int = 0
    #: Connections that *had* a backup and were dropped by a failure
    #: anyway: the backup path was concurrently dead, no longer fit, or
    #: its activation was hit by an injected activation fault — the
    #: double-failure regime outside the paper's single-failure model.
    double_failure_drops: int = 0
    #: Backup activations that failed due to an injected activation
    #: fault (subset of ``double_failure_drops``).
    activation_faults: int = 0

    @property
    def rejected(self) -> int:
        """Total rejected requests."""
        return self.rejected_no_primary + self.rejected_no_backup

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of requests accepted (1.0 when none seen)."""
        return self.accepted / self.requests if self.requests else 1.0
