"""Struct-of-arrays connection records with integer handles.

:class:`ConnectionTable` is the array-backed twin of the per-object
:class:`~repro.channels.records.DRConnection` dictionary: every scalar a
record carries (level, ``B_min``, increment, lifecycle state, …) becomes
one preallocated NumPy column indexed by an integer **handle**, and the
variable-length routes become CSR-style flat index arrays (one shared
arena per path kind plus per-handle ``start``/``len`` columns).  Handles
are recycled through a free list, so a steady-state churn campaign
touches a bounded region of memory no matter how many connections pass
through; the arena is append-only and compacted wholesale once the
garbage left behind by freed handles outweighs the live payload.

Path links are stored as **dense link indices** (positions in the
owning :class:`~repro.network.link_table.LinkTable`), not ``LinkId``
tuples: the hot sweeps (reclaim, water-fill, failure victim processing)
gather straight into the link columns with integer fancy indexing.  The
``LinkId`` views tests and the estimator want are derived on demand.

The aggregate queries the manager answers per measurement sample —
``live_connection_ids``, ``average_live_bandwidth``,
``level_histogram`` — are masked array reductions over these columns
instead of per-record attribute walks.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.channels.records import ConnectionState
from repro.qos.spec import ConnectionQoS
from repro.topology.graph import LinkId

__all__ = ["ConnectionTable", "STATE_CODE", "CODE_STATE"]

#: Lifecycle states as int8 codes (column ``state``).
STATE_CODE = {
    ConnectionState.ACTIVE: 0,
    ConnectionState.FAILED_OVER: 1,
    ConnectionState.DROPPED: 2,
    ConnectionState.TERMINATED: 3,
}
CODE_STATE = {code: state for state, code in STATE_CODE.items()}

_F8 = np.float64
_I8 = np.int64


class _Arena:
    """One append-only CSR arena of int64 payload with bulk compaction."""

    __slots__ = ("data", "used", "garbage")

    def __init__(self, capacity: int) -> None:
        self.data = np.zeros(capacity, dtype=_I8)
        self.used = 0
        self.garbage = 0

    def append(self, values: np.ndarray) -> int:
        """Append ``values``; returns their start offset."""
        n = len(values)
        if self.used + n > len(self.data):
            new_cap = max(len(self.data) * 2, self.used + n)
            grown = np.zeros(new_cap, dtype=_I8)
            grown[: self.used] = self.data[: self.used]
            self.data = grown
        start = self.used
        self.data[start : start + n] = values
        self.used += n
        return start


class ConnectionTable:
    """Dense array-backed registry of DR-connection records."""

    #: Handles the table starts with; doubles on exhaustion.
    INITIAL_CAPACITY = 256
    #: Arena slots per initial handle (typical paths are a few hops).
    ARENA_FACTOR = 8

    def __init__(self, capacity: int = INITIAL_CAPACITY) -> None:
        n = max(capacity, 16)
        self.capacity = n
        # -- scalar columns, one row per handle -------------------------
        self.conn_id = np.full(n, -1, dtype=_I8)
        self.level = np.zeros(n, dtype=_I8)
        self.b_min = np.zeros(n, dtype=_F8)
        self.b_max = np.zeros(n, dtype=_F8)
        self.increment = np.zeros(n, dtype=_F8)
        #: ``increment - EPSILON``: the water-fill's spare threshold.
        self.threshold = np.zeros(n, dtype=_F8)
        self.max_level = np.zeros(n, dtype=_I8)
        self.state = np.full(n, STATE_CODE[ConnectionState.TERMINATED], dtype=np.int8)
        self.on_backup = np.zeros(n, dtype=np.bool_)
        self.elastic = np.zeros(n, dtype=np.bool_)
        self.alloc = np.zeros(n, dtype=np.bool_)
        self.established_at = np.zeros(n, dtype=_F8)
        self.backup_overlap = np.zeros(n, dtype=_I8)
        self.source = np.zeros(n, dtype=_I8)
        self.destination = np.zeros(n, dtype=_I8)
        #: Accumulated elastic extra per *path link* (uniform along the
        #: path by construction); tracks the exact float trajectory of
        #: the object core's per-link ``primary_extra[cid]`` entries.
        self.conn_extra = np.zeros(n, dtype=_F8)
        # -- CSR paths (dense link indices / node ids) ------------------
        self.prim_start = np.zeros(n, dtype=_I8)
        self.prim_len = np.zeros(n, dtype=_I8)
        self.bk_start = np.zeros(n, dtype=_I8)
        self.bk_len = np.zeros(n, dtype=_I8)  # 0 = no backup route
        self.pnode_start = np.zeros(n, dtype=_I8)
        self.pnode_len = np.zeros(n, dtype=_I8)
        self.bnode_start = np.zeros(n, dtype=_I8)
        self.bnode_len = np.zeros(n, dtype=_I8)
        self.links_arena = _Arena(n * self.ARENA_FACTOR)
        self.nodes_arena = _Arena(n * self.ARENA_FACTOR)
        # -- per-handle Python payload ----------------------------------
        #: QoS contract objects (shared, frozen dataclasses).
        self.qos: List[Optional[ConnectionQoS]] = [None] * n
        # Python-native mirrors of the per-handle facts the water-fill
        # probes in its inner loop.  All five are immutable for the
        # lifetime of an allocation (written in ``allocate``, cleared in
        # ``free``), so they carry no sync protocol — they simply let
        # the fill read plain ints/floats/lists instead of paying a
        # NumPy scalar access per probe.
        self.cid_py: List[int] = [-1] * n
        self.thr_py: List[float] = [0.0] * n
        self.delta_py: List[float] = [0.0] * n
        self.maxl_py: List[int] = [0] * n
        #: Primary path as a plain list of dense link indices (mirror of
        #: the CSR ``prim_*`` view; same order).
        self.path_py: List[List[int]] = [[] for _ in range(n)]
        self._free: List[int] = list(range(n - 1, -1, -1))
        self.num_allocated = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in (
            "conn_id", "level", "b_min", "b_max", "increment", "threshold",
            "max_level", "state", "on_backup", "elastic", "alloc",
            "established_at", "backup_overlap", "source", "destination",
            "conn_extra", "prim_start", "prim_len", "bk_start", "bk_len",
            "pnode_start", "pnode_len", "bnode_start", "bnode_len",
        ):
            col = getattr(self, name)
            grown = np.zeros(new, dtype=col.dtype)
            grown[:old] = col
            setattr(self, name, grown)
        self.conn_id[old:] = -1
        self.state[old:] = STATE_CODE[ConnectionState.TERMINATED]
        self.qos.extend([None] * old)
        self.cid_py.extend([-1] * old)
        self.thr_py.extend([0.0] * old)
        self.delta_py.extend([0.0] * old)
        self.maxl_py.extend([0] * old)
        self.path_py.extend([] for _ in range(old))
        self._free.extend(range(new - 1, old - 1, -1))
        self.capacity = new

    def allocate(
        self,
        conn_id: int,
        source: int,
        destination: int,
        qos: ConnectionQoS,
        prim_idx: np.ndarray,
        prim_nodes: np.ndarray,
        established_at: float,
    ) -> int:
        """Claim a handle for a new ACTIVE connection; returns the handle."""
        if not self._free:
            self._grow()
        h = self._free.pop()
        perf = qos.performance
        threshold = perf.increment - 1e-6  # EPSILON, see link_state
        self.conn_id[h] = conn_id
        self.level[h] = 0
        self.b_min[h] = perf.b_min
        self.b_max[h] = perf.b_max
        self.increment[h] = perf.increment
        self.threshold[h] = threshold
        self.max_level[h] = perf.max_level
        self.state[h] = STATE_CODE[ConnectionState.ACTIVE]
        self.on_backup[h] = False
        self.elastic[h] = perf.is_elastic()
        self.alloc[h] = True
        self.established_at[h] = established_at
        self.backup_overlap[h] = 0
        self.source[h] = source
        self.destination[h] = destination
        self.conn_extra[h] = 0.0
        self.prim_start[h] = self.links_arena.append(prim_idx)
        self.prim_len[h] = len(prim_idx)
        self.pnode_start[h] = self.nodes_arena.append(prim_nodes)
        self.pnode_len[h] = len(prim_nodes)
        self.bk_len[h] = 0
        self.bnode_len[h] = 0
        self.qos[h] = qos
        self.cid_py[h] = conn_id
        self.thr_py[h] = threshold
        self.delta_py[h] = perf.increment
        self.maxl_py[h] = perf.max_level
        self.path_py[h] = prim_idx.tolist()
        self.num_allocated += 1
        return h

    def set_backup(self, h: int, bk_idx: np.ndarray, bk_nodes: np.ndarray, overlap: int) -> None:
        """Attach (or replace) the backup route of handle ``h``."""
        if self.bk_len[h]:
            self.links_arena.garbage += int(self.bk_len[h])
            self.nodes_arena.garbage += int(self.bnode_len[h])
        self.bk_start[h] = self.links_arena.append(bk_idx)
        self.bk_len[h] = len(bk_idx)
        self.bnode_start[h] = self.nodes_arena.append(bk_nodes)
        self.bnode_len[h] = len(bk_nodes)
        self.backup_overlap[h] = overlap

    def clear_backup(self, h: int) -> None:
        """Detach the backup route of handle ``h`` (lost to a failure)."""
        self.links_arena.garbage += int(self.bk_len[h])
        self.nodes_arena.garbage += int(self.bnode_len[h])
        self.bk_len[h] = 0
        self.bnode_len[h] = 0

    def free(self, h: int, final_state: ConnectionState) -> None:
        """Release handle ``h`` back to the free list."""
        self.state[h] = STATE_CODE[final_state]
        self.alloc[h] = False
        self.conn_id[h] = -1
        self.qos[h] = None
        self.cid_py[h] = -1
        self.path_py[h] = []
        self.links_arena.garbage += int(self.prim_len[h] + self.bk_len[h])
        self.nodes_arena.garbage += int(self.pnode_len[h] + self.bnode_len[h])
        self.prim_len[h] = 0
        self.bk_len[h] = 0
        self.pnode_len[h] = 0
        self.bnode_len[h] = 0
        self._free.append(h)
        self.num_allocated -= 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    # CSR access
    # ------------------------------------------------------------------
    def prim_slice(self, h: int) -> np.ndarray:
        """Dense link indices of ``h``'s primary route (arena view)."""
        s = self.prim_start[h]
        return self.links_arena.data[s : s + self.prim_len[h]]

    def bk_slice(self, h: int) -> np.ndarray:
        """Dense link indices of ``h``'s backup route (empty when none)."""
        s = self.bk_start[h]
        return self.links_arena.data[s : s + self.bk_len[h]]

    def pnode_slice(self, h: int) -> np.ndarray:
        """Node ids of ``h``'s primary route."""
        s = self.pnode_start[h]
        return self.nodes_arena.data[s : s + self.pnode_len[h]]

    def bnode_slice(self, h: int) -> np.ndarray:
        """Node ids of ``h``'s backup route (empty when none)."""
        s = self.bnode_start[h]
        return self.nodes_arena.data[s : s + self.bnode_len[h]]

    def _maybe_compact(self) -> None:
        """Compact the arenas once freed garbage outweighs live payload."""
        for arena, starts_lens in (
            (self.links_arena, ((self.prim_start, self.prim_len), (self.bk_start, self.bk_len))),
            (self.nodes_arena, ((self.pnode_start, self.pnode_len), (self.bnode_start, self.bnode_len))),
        ):
            live = arena.used - arena.garbage
            if arena.garbage <= 4096 or arena.garbage <= live:
                continue
            packed = np.zeros(len(arena.data), dtype=_I8)
            cursor = 0
            handles = np.flatnonzero(self.alloc)
            for starts, lens in starts_lens:
                for h in handles:
                    n = int(lens[h])
                    if not n:
                        continue
                    s = int(starts[h])
                    packed[cursor : cursor + n] = arena.data[s : s + n]
                    starts[h] = cursor
                    cursor += n
            arena.data = packed
            arena.used = cursor
            arena.garbage = 0

    # ------------------------------------------------------------------
    # masked reductions
    # ------------------------------------------------------------------
    def live_mask(self) -> np.ndarray:
        """Handles currently carrying traffic (ACTIVE or FAILED_OVER)."""
        return self.alloc & (self.state <= STATE_CODE[ConnectionState.FAILED_OVER])

    def live_connection_ids(self) -> List[int]:
        """Sorted ids of all live connections (masked reduction)."""
        ids = self.conn_id[self.live_mask()]
        ids.sort()
        return ids.tolist()

    def average_live_bandwidth(self) -> float:
        """Mean reserved bandwidth per live connection.

        Exact-equality contract with the object core: NumPy's pairwise
        summation and the object's sequential ``sum()`` agree bitwise
        whenever all bandwidths lie on the paper's dyadic grid
        (multiples of 50 Kb/s) — every sum is then exact in float64.
        """
        mask = self.live_mask()
        count = int(np.count_nonzero(mask))
        if not count:
            return 0.0
        bw = self.b_min[mask] + self.level[mask] * self.increment[mask]
        np.copyto(bw, self.b_min[mask], where=self.on_backup[mask])
        return float(np.sum(bw)) / count

    def level_histogram(self, num_levels: int) -> List[int]:
        """Count of ACTIVE elastic primaries at each level (state S_i)."""
        mask = (
            self.alloc
            & (self.state == STATE_CODE[ConnectionState.ACTIVE])
            & ~self.on_backup
        )
        clipped = np.minimum(self.level[mask], num_levels - 1)
        return np.bincount(clipped, minlength=num_levels).tolist()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def primary_links_of(self, h: int, link_ids: List[LinkId]) -> List[LinkId]:
        """``LinkId`` view of a primary route (derived from CSR)."""
        return [link_ids[i] for i in self.prim_slice(h)]

    def backup_links_of(self, h: int, link_ids: List[LinkId]) -> Optional[List[LinkId]]:
        """``LinkId`` view of a backup route, ``None`` when detached."""
        if not self.bk_len[h]:
            return None
        return [link_ids[i] for i in self.bk_slice(h)]

    def conflict_set_of(self, h: int, link_ids: List[LinkId]) -> FrozenSet[LinkId]:
        """The primary-route failure-conflict set of handle ``h``."""
        return frozenset(link_ids[i] for i in self.prim_slice(h))

    def nbytes(self) -> Tuple[int, int]:
        """(column bytes, arena bytes) — memory benchmark hook."""
        cols = 0
        for name in (
            "conn_id", "level", "b_min", "b_max", "increment", "threshold",
            "max_level", "state", "on_backup", "elastic", "alloc",
            "established_at", "backup_overlap", "source", "destination",
            "conn_extra", "prim_start", "prim_len", "bk_start", "bk_len",
            "pnode_start", "pnode_len", "bnode_start", "bnode_len",
        ):
            cols += getattr(self, name).nbytes
        arenas = self.links_arena.data.nbytes + self.nodes_arena.data.nbytes
        return cols, arenas
