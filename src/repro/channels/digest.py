"""Bitwise state digest shared by both manager cores.

The crash-recovery story of :mod:`repro.service` needs a compact,
core-agnostic answer to "are these two managers in *exactly* the same
state?" — comparable across processes (a recovered service vs. a fresh
replay) without pickling either manager.  :func:`manager_state_summary`
renders the complete observable state — every live connection's level,
routes and bandwidth, every link's four reservation floats and failure
flag, and the lifetime stats — with floats as ``float.hex()`` strings
so the rendering is exact (no decimal rounding, no ``repr`` drift), and
:func:`manager_state_digest` hashes that canonical JSON with SHA-256.

Two managers produce equal digests iff the twin-equivalence snapshot
(`tests/channels/test_twin_managers.py`) would find them identical;
this module deliberately mirrors that snapshot's field list.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Union

from repro.channels.array_manager import ArrayNetworkManager
from repro.channels.manager import NetworkManager

AnyManager = Union[NetworkManager, ArrayNetworkManager]


def _hexfloat(value: float) -> str:
    return float(value).hex()


def manager_state_summary(manager: AnyManager) -> Dict[str, Any]:
    """JSON-able, bitwise-exact rendering of a manager's full state."""
    conns: Dict[str, Any] = {}
    for cid in sorted(manager.connections.keys()):
        c = manager.connections[cid]
        conns[str(cid)] = {
            "level": c.level,
            "state": c.state.name,
            "on_backup": c.on_backup,
            "primary_path": list(c.primary_path),
            "primary_links": [list(lid) for lid in c.primary_links],
            "backup_links": (
                None if not c.backup_links else [list(lid) for lid in c.backup_links]
            ),
            "bandwidth": _hexfloat(c.bandwidth),
            "backup_overlap": c.backup_overlap,
        }
    links: Dict[str, Any] = {}
    if isinstance(manager, ArrayNetworkManager):
        t = manager.links
        for lid, li in sorted(t.index.items()):
            links[str(list(lid))] = [
                _hexfloat(float(t.primary_min[li])),
                _hexfloat(float(t.primary_extra[li])),
                _hexfloat(float(t.activated[li])),
                _hexfloat(float(t.backup_reserved[li])),
                bool(t.failed[li]),
            ]
    else:
        assert isinstance(manager, NetworkManager)
        for lid in sorted(manager.state.topology.link_ids()):
            ls = manager.state.link(lid)
            links[str(list(lid))] = [
                _hexfloat(ls.primary_min_total),
                _hexfloat(ls.primary_extra_total),
                _hexfloat(ls.activated_total),
                _hexfloat(ls.backup_reserved),
                ls.failed,
            ]
    return {
        "connections": conns,
        "links": links,
        "stats": vars(manager.stats).copy(),
        "average_live_bandwidth": _hexfloat(manager.average_live_bandwidth()),
        "level_histogram": manager.level_histogram(8),
    }


def summary_digest(summary: Dict[str, Any]) -> str:
    """SHA-256 hex digest of a :func:`manager_state_summary` rendering.

    Split out from :func:`manager_state_digest` so chaos/recovery
    tooling can hash a summary captured earlier (or dump the summary
    alongside the digest to diff two mismatching states field by
    field) without holding a live manager.
    """
    canonical = json.dumps(summary, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def manager_state_digest(manager: AnyManager) -> str:
    """SHA-256 hex digest of :func:`manager_state_summary`.

    Equal digests certify bitwise-identical observable state across
    cores and across processes.
    """
    return summary_digest(manager_state_summary(manager))
