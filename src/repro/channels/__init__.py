"""DR-connection records and the central network manager."""

from __future__ import annotations

from repro.channels.manager import ROUTING_ENGINES, NetworkManager
from repro.channels.records import (
    ConnectionState,
    DRConnection,
    EventImpact,
    EventKind,
    ManagerStats,
)

__all__ = [
    "ROUTING_ENGINES",
    "NetworkManager",
    "ConnectionState",
    "DRConnection",
    "EventImpact",
    "EventKind",
    "ManagerStats",
]
