"""DR-connection records and the central network manager.

Two interchangeable manager cores exist:

* :class:`NetworkManager` — the original per-object core (``LinkState``
  dataclasses, ``DRConnection`` records).  The reference oracle.
* :class:`ArrayNetworkManager` — the struct-of-arrays core (NumPy
  columns, integer handles).  Bitwise-equivalent and faster; the
  simulation default.

Use :func:`make_manager` to pick one by name.
"""

from __future__ import annotations

from typing import Any, Union

from repro.channels.array_manager import ArrayNetworkManager
from repro.channels.digest import manager_state_digest, manager_state_summary
from repro.channels.manager import ROUTING_ENGINES, NetworkManager
from repro.channels.records import (
    ConnectionState,
    DRConnection,
    EventImpact,
    EventKind,
    ManagerStats,
)
from repro.errors import SimulationError
from repro.topology.graph import Network

#: The selectable manager cores.
MANAGER_CORES = ("array", "object")

AnyManager = Union[NetworkManager, ArrayNetworkManager]


def make_manager(topology: Network, core: str = "array", **kwargs: Any) -> AnyManager:
    """Build a network manager with the chosen storage core.

    Args:
        topology: The network to manage.
        core: ``"array"`` for the struct-of-arrays core (default),
            ``"object"`` for the per-object reference core.
        **kwargs: Forwarded to the manager constructor (``policy``,
            ``routing``, ``flood_hop_bound``, ``multiplex_backups``,
            ``reestablish_backups``, ``route_cache_probe``).

    Both cores expose the same public surface and are driven through
    identical event sequences by the twin-manager equivalence tests.
    """
    if core == "array":
        return ArrayNetworkManager(topology, **kwargs)
    if core == "object":
        return NetworkManager(topology, **kwargs)
    raise SimulationError(f"unknown manager core {core!r}; choose from {MANAGER_CORES}")


__all__ = [
    "MANAGER_CORES",
    "ROUTING_ENGINES",
    "AnyManager",
    "ArrayNetworkManager",
    "NetworkManager",
    "make_manager",
    "manager_state_digest",
    "manager_state_summary",
    "ConnectionState",
    "DRConnection",
    "EventImpact",
    "EventKind",
    "ManagerStats",
]
