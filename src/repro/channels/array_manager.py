"""Array-backed network manager over struct-of-arrays state.

:class:`ArrayNetworkManager` is the SoA twin of
:class:`~repro.channels.manager.NetworkManager`: the same operational
rules (§3.1 of the paper), the same public surface, the same event
semantics — but every reservation lives in the NumPy columns of a
:class:`~repro.network.link_table.LinkTable` and every connection in a
:class:`~repro.channels.conn_table.ConnectionTable` row addressed by an
integer handle.  The hot per-event sweeps (extras reclamation, the
elastic water-fill, candidate collection, measurement reductions) are
vectorized; cold control flow (backup multiplexing, failover decisions)
stays scalar and mirrors the object core statement for statement.

Equivalence contract: driven through an identical event sequence, this
manager and the object manager produce **bitwise-identical** routes,
grants, drops, statistics and per-link float state (twin-manager tests
pin this, with fault injection on and off).  The contract is exact on
the paper's dyadic bandwidth grid; see :mod:`repro.elastic.array_fill`
for the one caveat on off-grid bandwidths.

The object manager remains the reference oracle; this class is the
default simulation core (see ``repro.channels.make_manager``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.channels.conn_table import CODE_STATE, STATE_CODE, ConnectionTable
from repro.channels.manager import _UNIVERSAL_CONFLICT, ROUTING_ENGINES
from repro.channels.records import (
    ConnectionState,
    EventImpact,
    EventKind,
    ManagerStats,
)
from repro.elastic.array_fill import (
    _gather,
    drop_to_minimum_soa,
    redistribute_soa,
)
from repro.elastic.policies import AdaptationPolicy, EqualShare
from repro.errors import (
    AdmissionError,
    FaultInjectionError,
    ReservationError,
    SimulationError,
)
from repro.network.link_state import EPSILON
from repro.network.link_table import LinkTable
from repro.qos.spec import ConnectionQoS, ElasticQoS
from repro.routing.cache import (
    NO_ROUTE,
    ArrayAdjacencyRows,
    ArrayRouteCache,
    BackupPlan,
    RoutePlan,
)
from repro.routing.disjoint import disjoint_path, maximally_disjoint_path
from repro.routing.flooding import flooding_route_pair
from repro.routing.shortest import _check_endpoints, bfs_path_rows
from repro.topology.graph import Link, LinkId, Network

_ACTIVE = STATE_CODE[ConnectionState.ACTIVE]
_FAILED_OVER = STATE_CODE[ConnectionState.FAILED_OVER]


class ArrayLinkView:
    """Read-only per-link view over the :class:`LinkTable` columns.

    Duck-type compatible with the aggregate properties of
    :class:`~repro.network.link_state.LinkState` (diagnostics, tests);
    the per-connection dicts of the object core have no SoA equivalent.
    """

    __slots__ = ("_t", "_i", "link")

    def __init__(self, table: LinkTable, index: int) -> None:
        self._t = table
        self._i = index
        self.link = table.link_ids[index]

    @property
    def capacity(self) -> float:
        return float(self._t.capacity[self._i])

    @property
    def failed(self) -> bool:
        return self._t.failed_py[self._i]

    @property
    def primary_min_total(self) -> float:
        return float(self._t.primary_min[self._i])

    @property
    def primary_extra_total(self) -> float:
        return float(self._t.primary_extra[self._i])

    @property
    def activated_total(self) -> float:
        return float(self._t.activated[self._i])

    @property
    def backup_reserved(self) -> float:
        return float(self._t.backup_reserved[self._i])

    @property
    def used(self) -> float:
        return self.primary_min_total + self.primary_extra_total + self.activated_total

    @property
    def spare_for_extras(self) -> float:
        return self._t.spare_at(self._i)

    @property
    def admission_headroom(self) -> float:
        return self._t.headroom_at(self._i)

    def can_admit_primary(self, b_min: float) -> bool:
        return not self.failed and b_min <= self.admission_headroom + EPSILON


class ArrayNetworkState:
    """Failure bookkeeping + compat facade over a :class:`LinkTable`.

    Mirrors the parts of :class:`~repro.network.state.NetworkState` the
    simulator, the fault injectors and the route layer consume:
    generation counter, sorted alive/failed link lists (incrementally
    maintained, bitwise-deterministic victim picks), adjacency rows —
    here carrying the **dense link index** as the row payload.
    """

    def __init__(self, topology: Network, table: LinkTable) -> None:
        self.topology = topology
        self.table = table
        self._failed: Set[LinkId] = set()
        self._alive_list: List[LinkId] = sorted(table.index)
        self._failed_list: List[LinkId] = []
        self.generation: int = 0
        self._rows: ArrayAdjacencyRows = {
            node: [(nbr, lid, table.index[lid]) for nbr, lid, _link in row]
            for node, row in topology.adjacency_rows().items()
        }

    # -- link access ----------------------------------------------------
    def link(self, lid: LinkId) -> ArrayLinkView:
        """Per-link diagnostic view (compat with ``NetworkState.link``)."""
        return ArrayLinkView(self.table, self.table.index_of(lid))

    def adjacency_rows(self) -> ArrayAdjacencyRows:
        """node -> ``[(neighbor, link_id, dense_index)]`` rows."""
        return self._rows

    @property
    def failed_links(self) -> FrozenSet[LinkId]:
        return frozenset(self._failed)

    def is_failed(self, lid: LinkId) -> bool:
        return lid in self._failed

    def alive_link_list(self) -> List[LinkId]:
        return self._alive_list

    def failed_link_list(self) -> List[LinkId]:
        return self._failed_list

    @property
    def num_alive(self) -> int:
        return len(self._alive_list)

    @property
    def num_failed(self) -> int:
        return len(self._failed_list)

    # -- failures -------------------------------------------------------
    # The column toggles are inlined (rather than calling
    # ``LinkTable.fail``/``repair``) because a fail/repair pair on an
    # otherwise idle manager is the hot constant-overhead path of the
    # failure benchmarks; the extra call layers measurably lose to the
    # object core's attribute flip.
    def fail_link(self, lid: LinkId) -> None:
        table = self.table
        try:
            li = table.index[lid]
        except KeyError:
            li = table.index_of(lid)  # raises TopologyError, unknown link
        if table.failed_py[li]:
            raise ReservationError(f"link {lid} is already failed")
        table.failed[li] = True
        table.failed_py[li] = True
        self._failed.add(lid)
        self._alive_list.pop(bisect_left(self._alive_list, lid))
        insort(self._failed_list, lid)
        self.generation += 1

    def repair_link(self, lid: LinkId) -> None:
        table = self.table
        try:
            li = table.index[lid]
        except KeyError:
            li = table.index_of(lid)  # raises TopologyError, unknown link
        if not table.failed_py[li]:
            raise ReservationError(f"link {lid} is not failed")
        table.failed[li] = False
        table.failed_py[li] = False
        self._failed.discard(lid)
        self._failed_list.pop(bisect_left(self._failed_list, lid))
        insort(self._alive_list, lid)
        self.generation += 1

    # -- diagnostics ----------------------------------------------------
    def total_used(self) -> float:
        return float(np.sum(self.table.used()))

    def total_capacity(self) -> float:
        return float(np.sum(self.table.capacity))

    def utilization(self) -> float:
        cap = self.total_capacity()
        return self.total_used() / cap if cap > 0 else 0.0


class ArrayConnView:
    """DRConnection-shaped read view of one connection table row.

    Valid while the connection is live; once the handle is freed (drop
    or termination) the view goes stale and must not be dereferenced.
    """

    __slots__ = ("_m", "_h", "conn_id")

    def __init__(self, manager: "ArrayNetworkManager", handle: int) -> None:
        self._m = manager
        self._h = handle
        self.conn_id = int(manager.conns.conn_id[handle])

    @property
    def source(self) -> int:
        return int(self._m.conns.source[self._h])

    @property
    def destination(self) -> int:
        return int(self._m.conns.destination[self._h])

    @property
    def qos(self) -> ConnectionQoS:
        qos = self._m.conns.qos[self._h]
        assert qos is not None
        return qos

    @property
    def elastic_qos(self) -> ElasticQoS:
        return self.qos.performance

    @property
    def level(self) -> int:
        return int(self._m.conns.level[self._h])

    @property
    def state(self) -> ConnectionState:
        return CODE_STATE[int(self._m.conns.state[self._h])]

    @property
    def on_backup(self) -> bool:
        return bool(self._m.conns.on_backup[self._h])

    @property
    def established_at(self) -> float:
        return float(self._m.conns.established_at[self._h])

    @property
    def backup_overlap(self) -> int:
        return int(self._m.conns.backup_overlap[self._h])

    @property
    def primary_path(self) -> List[int]:
        return self._m.conns.pnode_slice(self._h).tolist()

    @property
    def primary_links(self) -> List[LinkId]:
        return self._m.conns.primary_links_of(self._h, self._m.links.link_ids)

    @property
    def backup_path(self) -> Optional[List[int]]:
        if not self._m.conns.bk_len[self._h]:
            return None
        return self._m.conns.bnode_slice(self._h).tolist()

    @property
    def backup_links(self) -> Optional[List[LinkId]]:
        return self._m.conns.backup_links_of(self._h, self._m.links.link_ids)

    @property
    def is_live(self) -> bool:
        return int(self._m.conns.state[self._h]) <= _FAILED_OVER

    @property
    def has_backup(self) -> bool:
        return bool(self._m.conns.bk_len[self._h]) and not self.on_backup

    @property
    def is_elastic_participant(self) -> bool:
        c = self._m.conns
        return (
            int(c.state[self._h]) == _ACTIVE
            and not c.on_backup[self._h]
            and bool(c.elastic[self._h])
        )

    @property
    def bandwidth(self) -> float:
        c = self._m.conns
        if c.on_backup[self._h]:
            return float(c.b_min[self._h])
        return float(c.b_min[self._h] + c.level[self._h] * c.increment[self._h])

    @property
    def live_links(self) -> List[LinkId]:
        if self.on_backup:
            links = self.backup_links
            assert links is not None
            return links
        return self.primary_links


class _ConnMapView:
    """``manager.connections``-shaped mapping of conn id -> view."""

    __slots__ = ("_m",)

    def __init__(self, manager: "ArrayNetworkManager") -> None:
        self._m = manager

    def __len__(self) -> int:
        return len(self._m._h_of)

    def __contains__(self, cid: object) -> bool:
        return cid in self._m._h_of

    def __iter__(self) -> Iterator[int]:
        return iter(self._m._h_of)

    def __getitem__(self, cid: int) -> ArrayConnView:
        return ArrayConnView(self._m, self._m._h_of[cid])

    def get(self, cid: int, default: Optional[ArrayConnView] = None) -> Optional[ArrayConnView]:
        h = self._m._h_of.get(cid)
        if h is None:
            return default
        return ArrayConnView(self._m, h)

    def keys(self) -> List[int]:
        return list(self._m._h_of)

    def values(self) -> List[ArrayConnView]:
        return [ArrayConnView(self._m, h) for h in self._m._h_of.values()]

    def items(self) -> List[Tuple[int, ArrayConnView]]:
        return [(cid, ArrayConnView(self._m, h)) for cid, h in self._m._h_of.items()]


class _LinkSetsView:
    """``channels_on_link``-shaped read view: LinkId -> set of conn ids.

    Internally the manager indexes by dense link index and stores
    *handles*; this view translates both on access (estimator/test
    compatibility — only touched on sampled events).
    """

    __slots__ = ("_m", "_sets")

    def __init__(self, manager: "ArrayNetworkManager", sets: List[Set[int]]) -> None:
        self._m = manager
        self._sets = sets

    def _cids(self, li: int) -> Set[int]:
        conn_id = self._m.conns.conn_id
        return {int(conn_id[h]) for h in self._sets[li]}

    def get(self, lid: LinkId, default: FrozenSet[int] = frozenset()) -> Set[int] | FrozenSet[int]:
        li = self._m.links.index.get(lid)
        if li is None or not self._sets[li]:
            return default
        return self._cids(li)

    def __getitem__(self, lid: LinkId) -> Set[int]:
        return self._cids(self._m.links.index_of(lid))

    def __contains__(self, lid: object) -> bool:
        return lid in self._m.links.index

    def items(self) -> Iterator[Tuple[LinkId, Set[int]]]:
        for li, handles in enumerate(self._sets):
            if handles:
                yield self._m.links.link_ids[li], self._cids(li)


class ArrayNetworkManager:
    """Central DR-connection manager over struct-of-arrays state."""

    def __init__(
        self,
        topology: Network,
        policy: Optional[AdaptationPolicy] = None,
        routing: str = "dijkstra",
        flood_hop_bound: int = 16,
        multiplex_backups: bool = True,
        reestablish_backups: bool = False,
        route_cache_probe: int = 4,
    ) -> None:
        if routing not in ROUTING_ENGINES:
            raise SimulationError(
                f"unknown routing engine {routing!r}; choose from {ROUTING_ENGINES}"
            )
        self.topology = topology
        self.links = LinkTable(topology)
        self.conns = ConnectionTable()
        self.state = ArrayNetworkState(topology, self.links)
        self.policy = policy if policy is not None else EqualShare()
        self.routing = routing
        self.flood_hop_bound = flood_hop_bound
        self.multiplex_backups = multiplex_backups
        self.reestablish_backups = reestablish_backups
        self.route_cache: Optional[ArrayRouteCache] = (
            ArrayRouteCache(
                topology,
                self.links,
                self.state.adjacency_rows(),
                probe_limit=route_cache_probe,
            )
            if route_cache_probe > 0
            else None
        )
        n = len(self.links)
        #: Dense link index -> handles of ACTIVE primaries / inactive
        #: backups / activated backups traversing it.
        self._prims_on: List[Set[int]] = [set() for _ in range(n)]
        self._backups_on: List[Set[int]] = [set() for _ in range(n)]
        self._active_on: List[Set[int]] = [set() for _ in range(n)]
        #: conn id -> live handle.
        self._h_of: Dict[int, int] = {}
        #: handle -> conn id, as a plain Python list (hot-path mirror of
        #: ``conns.conn_id``: cid-sorting handle sets with a C-level list
        #: key beats a NumPy gather + argsort at event sizes).  Entries
        #: of freed handles are stale until the handle is reused; only
        #: live handles are ever looked up.  (The conn-id mirror itself
        #: lives on :class:`ConnectionTable` as ``cid_py``.)
        #: handle -> the primary's link-id frozenset.  A connection's
        #: primary route is immutable for its lifetime, so the conflict
        #: set backups are keyed on never needs rebuilding from the
        #: arena.
        self._conflict_py: List[FrozenSet[LinkId]] = []
        self.stats = ManagerStats()
        self.now = 0.0
        self._next_id = 0
        self.activation_fault_prob: float = 0.0
        self._fault_rng = None
        self.auto_redistribute = True
        #: Micro-epoch batching state (see :meth:`begin_micro_epoch`):
        #: while an epoch is open, ``_epoch_links`` holds the union of
        #: the deferred events' conflict keys and ``_epoch_affected``
        #: the links whose water-fill is postponed until the next flush.
        self._epoch_active = False
        self._epoch_links: Set[int] = set()
        self._epoch_affected: Set[int] = set()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def connections(self) -> _ConnMapView:
        """Live connections by id (read view over the table)."""
        return _ConnMapView(self)

    @property
    def channels_on_link(self) -> _LinkSetsView:
        """link -> ids of ACTIVE primaries traversing it (read view)."""
        return _LinkSetsView(self, self._prims_on)

    @property
    def backups_on_link(self) -> _LinkSetsView:
        """link -> ids of inactive backups traversing it (read view)."""
        return _LinkSetsView(self, self._backups_on)

    @property
    def active_backups_on_link(self) -> _LinkSetsView:
        """link -> ids of activated backups traversing it (read view)."""
        return _LinkSetsView(self, self._active_on)

    def connection(self, conn_id: int) -> ArrayConnView:
        """The live connection ``conn_id`` (raises when not live)."""
        try:
            return ArrayConnView(self, self._h_of[conn_id])
        except KeyError:
            raise ReservationError(f"connection {conn_id} is not live") from None

    def live_connection_ids(self) -> List[int]:
        """Ids of all live connections, sorted (masked reduction)."""
        return self.conns.live_connection_ids()

    @property
    def num_live(self) -> int:
        return len(self._h_of)

    def average_live_bandwidth(self) -> float:
        """Mean bandwidth per live connection (masked reduction)."""
        return self.conns.average_live_bandwidth()

    def level_histogram(self, num_levels: int) -> List[int]:
        """Count of ACTIVE elastic primaries at each level (bincount)."""
        return self.conns.level_histogram(num_levels)

    # ------------------------------------------------------------------
    # establishment
    # ------------------------------------------------------------------
    def request_connection(
        self, source: int, destination: int, qos: ConnectionQoS
    ) -> Tuple[Optional[ArrayConnView], EventImpact]:
        """Try to establish a DR-connection; returns (connection, impact)."""
        impact = EventImpact(kind=EventKind.ARRIVAL, time=self.now)
        if qos.dependability.num_backups > 1:
            raise SimulationError(
                "this manager implements the paper's scheme of one backup "
                f"channel per DR-connection; got num_backups="
                f"{qos.dependability.num_backups}"
            )
        self.stats.requests += 1
        b_min = qos.performance.b_min

        plan, backup_path, backup_plan = self._select_routes(source, destination, qos)
        if plan is None:
            self.stats.rejected_no_primary += 1
            impact.accepted = False
            return None, impact
        if qos.dependability.wants_backup and backup_path is None:
            self.stats.rejected_no_backup += 1
            impact.accepted = False
            return None, impact

        if self._epoch_active:
            # Before the first mutation: flush the pending fill unless
            # this arrival's conflict key is disjoint from the epoch's.
            self._epoch_guard(plan.idx_list)

        primary_set = self._conflict_set(plan.link_set)
        conn_id = self._next_id
        self._next_id += 1
        impact.conn_id = conn_id

        prim_idx = plan.idx
        affected: Set[int] = set(plan.idx_set)
        direct_ids = self._reclaim_direct(prim_idx, affected, impact)

        self._reserve_primary_checked(prim_idx, b_min)

        bk_idx: Optional[np.ndarray] = None
        bk_nodes: Optional[np.ndarray] = None
        overlap = 0
        if backup_path is not None:
            if backup_plan is not None:
                # Precompiled fully-disjoint candidate: indices and node
                # array are ready, and overlap is zero by construction.
                bk_idx = backup_plan.idx
                bk_nodes = backup_plan.nodes
            else:
                backup_links = self.topology.path_links(backup_path)
                overlap = sum(1 for lid in backup_links if lid in plan.link_set)
                bk_idx = self.links.indices_of(backup_links)
                bk_nodes = np.asarray(backup_path, dtype=np.int64)
            if not self.links.can_admit_backup_bulk(bk_idx, b_min, primary_set):
                # The primary's own reservation consumed the headroom the
                # backup needed (only possible with overlapping routes).
                self.links.sub_primary_min(prim_idx, b_min)
                self._redistribute(affected, impact, direct_ids)
                self.stats.rejected_no_backup += 1
                impact.accepted = False
                return None, impact
            for li in bk_idx.tolist():
                self.links.add_backup(li, b_min, primary_set)

        h = self.conns.allocate(
            conn_id,
            source,
            destination,
            qos,
            prim_idx,
            plan.nodes,
            self.now,
        )
        conflict_py = self._conflict_py
        if h >= len(conflict_py):
            conflict_py.extend(
                [_UNIVERSAL_CONFLICT] * (h + 1 - len(conflict_py))
            )
        conflict_py[h] = plan.link_set
        if bk_idx is not None:
            assert bk_nodes is not None
            self.conns.set_backup(h, bk_idx, bk_nodes, overlap)
            for li in bk_idx.tolist():
                self._backups_on[li].add(h)
        self._h_of[conn_id] = h
        for li in prim_idx.tolist():
            self._prims_on[li].add(h)

        self._redistribute(affected, impact, direct_ids)
        self.stats.accepted += 1
        return ArrayConnView(self, h), impact

    def _reserve_primary_checked(self, prim_idx: np.ndarray, b_min: float) -> None:
        """Reserve a primary's minimum with the object core's guards."""
        t = self.links
        t.refresh_aggregates()
        headroom = t.headroom[prim_idx]
        if bool((b_min > headroom + EPSILON).any()):
            raise AdmissionError(
                f"primary reservation of {b_min} Kb/s overcommits a link "
                f"(headroom {float(headroom.min()):.3f})"
            )
        used = t.primary_min[prim_idx] + t.primary_extra[prim_idx] + t.activated[prim_idx]
        if bool((used + b_min > t.capacity[prim_idx] + EPSILON).any()):
            raise AdmissionError("primary reservation would exceed usage capacity")
        t.add_primary_min(prim_idx, b_min)

    def _reclaim_direct(
        self, prim_idx: np.ndarray, affected: Set[int], impact: EventImpact
    ) -> Set[int]:
        """Drop every directly-chained channel to its minimum (vectorized).

        The per-link extras columns accumulate the reclamations in
        ascending conn-id order (``np.add.at`` is sequential in array
        order), matching the object core's sorted per-channel loop.
        """
        sets = self._prims_on
        groups = [sets[li] for li in prim_idx.tolist() if sets[li]]
        if not groups:
            return set()
        hset: Set[int] = set().union(*groups)
        conns = self.conns
        cid_py = conns.cid_py
        hs_list = sorted(hset, key=cid_py.__getitem__)
        hs = np.fromiter(hs_list, np.int64, len(hs_list))
        before = conns.level[hs]
        extras = conns.conn_extra[hs]
        dropping = extras != 0.0
        if bool(dropping.any()):
            sub = hs[dropping]
            sub_extras = extras[dropping]
            flat, _starts = _gather(conns, sub)
            rep = np.repeat(sub_extras, conns.prim_len[sub])
            self.links.reclaim_extras(flat, rep)
            conns.conn_extra[sub] = 0.0
            if float(sub_extras.min()) > EPSILON:
                affected.update(flat.tolist())
            else:
                affected.update(flat[rep > EPSILON].tolist())
        conns.level[hs] = 0
        direct = impact.direct
        for h, lvl in zip(hs_list, before.tolist()):
            direct[cid_py[h]] = (lvl, 0)
        return {cid_py[h] for h in hs_list}

    # ------------------------------------------------------------------
    # route selection
    # ------------------------------------------------------------------
    def _select_routes(
        self, source: int, destination: int, qos: ConnectionQoS
    ) -> Tuple[Optional[RoutePlan], Optional[List[int]], Optional[BackupPlan]]:
        """Pick routes with the configured engine (see the object core).

        Returns ``(primary plan, backup node path, backup plan)``.  The
        primary plan is the cache's shared precompiled candidate on a
        hit, or a transient plan built from the search answer otherwise.
        The backup plan is only set when the precompiled fully-disjoint
        candidate passed admission; search fallbacks return just the
        node path (the caller derives links/indices/overlap as before).
        """
        _check_endpoints(self.topology, source, destination)
        b_min = qos.performance.b_min
        t = self.links

        if self.routing == "flooding":
            index = t.index

            def allowance(link: Link) -> float:
                li = index[link.id]
                if t.failed_py[li]:
                    return 0.0
                return max(0.0, t.headroom_at(li))

            primary, backup = flooding_route_pair(
                self.topology,
                source,
                destination,
                b_min,
                allowance,
                backup_allowance=allowance,
                hop_bound=self.flood_hop_bound,
            )
            if primary is None:
                return None, None, None
            primary_links = self.topology.path_links(primary)
            plan = RoutePlan(primary, primary_links, t.indices_of(primary_links))
            if qos.dependability.wants_backup and backup is None:
                backup, bplan = self._centralized_backup(plan, b_min, qos)
                return plan, backup, bplan
            return plan, backup, None

        plan: Optional[RoutePlan] = None
        if self.route_cache is not None:
            found = self.route_cache.primary_plan(
                source, destination, b_min, self.state.generation
            )
            if found is NO_ROUTE:
                return None, None, None
            if found is not None and not isinstance(found, RoutePlan):
                raise SimulationError("unexpected route-cache answer")  # pragma: no cover
            plan = found
        if plan is None:
            # The BFS probes the mask once per examined edge; a plain
            # list lookup beats a NumPy scalar read at that call rate.
            # (Built only here — the cache-hit path above probes the
            # headroom column directly and skips mask construction.)
            admit_list = t.primary_admission_mask(b_min).tolist()
            primary = bfs_path_rows(
                self.state.adjacency_rows(),
                source,
                destination,
                lambda lid, li: admit_list[li],
            )
            if primary is None:
                return None, None, None
            primary_links = self.topology.path_links(primary)
            plan = RoutePlan(primary, primary_links, t.indices_of(primary_links))
        if not qos.dependability.wants_backup:
            return plan, None, None
        backup, bplan = self._centralized_backup(plan, b_min, qos)
        return plan, backup, bplan

    def _conflict_set(self, primary_set: FrozenSet[LinkId]) -> FrozenSet[LinkId]:
        """The failure-conflict set a backup reservation is keyed on."""
        return primary_set if self.multiplex_backups else _UNIVERSAL_CONFLICT

    def _conflict_of(self, h: int) -> FrozenSet[LinkId]:
        """The conflict set handle ``h``'s backup was reserved under."""
        if not self.multiplex_backups:
            return _UNIVERSAL_CONFLICT
        return self._conflict_py[h]

    def _centralized_backup(
        self,
        plan: RoutePlan,
        b_min: float,
        qos: ConnectionQoS,
    ) -> Tuple[Optional[List[int]], Optional[BackupPlan]]:
        """Backup route for ``plan``'s primary.

        Returns ``(node path, backup plan)``; the plan half is only set
        when the cache's precompiled fully-disjoint candidate passed
        the load-dependent admission re-check.
        """
        primary = plan.path
        primary_set = plan.link_set
        conflict_set = self._conflict_set(primary_set)
        allow_partial = not qos.dependability.require_link_disjoint
        t = self.links
        index = t.index

        def backup_ok(link: Link) -> bool:
            return t.can_admit_backup(index[link.id], b_min, conflict_set)

        if self.route_cache is not None:
            raw = self.route_cache.raw_disjoint_backup(
                primary[0],
                primary[-1],
                tuple(primary),
                primary_set,
                self.state.generation,
            )
            if raw is None:
                if not allow_partial:
                    return None, None
                found = maximally_disjoint_path(
                    self.topology, primary[0], primary[-1], primary_set, backup_ok
                )
                return (found[0] if found is not None else None), None
            if t.can_admit_backup_bulk(raw.idx, b_min, conflict_set):
                return raw.path, raw

        found2 = disjoint_path(
            self.topology,
            primary[0],
            primary[-1],
            avoid=primary_set,
            link_filter=backup_ok,
            allow_partial=allow_partial,
        )
        if found2 is None:
            return None, None
        path2, _overlap = found2
        return path2, None

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def terminate_connection(self, conn_id: int) -> EventImpact:
        """Release one live connection and redistribute the freed capacity."""
        impact = EventImpact(kind=EventKind.TERMINATION, time=self.now, conn_id=conn_id)
        h = self._h_of.pop(conn_id, None)
        if h is None:
            raise ReservationError(f"connection {conn_id} is not live")
        conns = self.conns
        t = self.links
        affected: Set[int] = set()
        scode = int(conns.state[h])
        b_min = float(conns.b_min[h])

        if scode == _ACTIVE:
            prim_idx = conns.prim_slice(h).copy()
            if self._epoch_active:
                self._epoch_guard(prim_idx.tolist())
            direct_ids = self._record_direct_levels(prim_idx, impact, skip=h)
            for li in prim_idx.tolist():
                self._prims_on[li].discard(h)
            t.release_primary_bulk(prim_idx, b_min, float(conns.conn_extra[h]))
            affected.update(prim_idx[~t.failed[prim_idx]].tolist())
            if conns.bk_len[h]:
                conflict = self._conflict_of(h)
                for li in conns.bk_slice(h).tolist():
                    t.remove_backup(li, b_min, conflict)
                    self._backups_on[li].discard(h)
        elif scode == _FAILED_OVER:
            bk_idx = conns.bk_slice(h).copy()
            if self._epoch_active:
                self._epoch_guard(bk_idx.tolist())
            direct_ids = self._record_direct_levels(bk_idx, impact, skip=h)
            t.sub_activated(bk_idx, b_min)
            for li in bk_idx.tolist():
                self._active_on[li].discard(h)
            affected.update(bk_idx[~t.failed[bk_idx]].tolist())
        else:  # pragma: no cover - defensive
            raise ReservationError(f"connection {conn_id} is not live")

        conns.free(h, ConnectionState.TERMINATED)
        self._redistribute(affected, impact, direct_ids)
        self.stats.terminated += 1
        return impact

    def _record_direct_levels(
        self, path_idx: np.ndarray, impact: EventImpact, skip: int
    ) -> Set[int]:
        """Record the pre-event level of every directly-chained channel."""
        sets = self._prims_on
        groups = [sets[li] for li in path_idx.tolist() if sets[li]]
        if not groups:
            return set()
        hset: Set[int] = set().union(*groups)
        hset.discard(skip)
        if not hset:
            return set()
        conns = self.conns
        cid_py = conns.cid_py
        hs_list = sorted(hset, key=cid_py.__getitem__)
        hs = np.fromiter(hs_list, np.int64, len(hs_list))
        levels = conns.level[hs].tolist()
        direct = impact.direct
        for h, lvl in zip(hs_list, levels):
            direct[cid_py[h]] = (lvl, lvl)
        return {cid_py[h] for h in hs_list}

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def set_activation_faults(self, probability: float, rng) -> None:
        """Enable injected backup-activation faults (see the object core)."""
        if not 0.0 <= probability <= 1.0:
            raise FaultInjectionError(
                f"activation fault probability must be in [0, 1], got {probability}"
            )
        if probability > 0.0 and rng is None:
            raise FaultInjectionError("activation faults need an RNG")
        self.activation_fault_prob = probability
        self._fault_rng = rng

    def fail_link(self, lid: LinkId) -> EventImpact:
        """Fail one link: activate backups, drop unrecoverable connections."""
        impact = EventImpact(kind=EventKind.FAILURE, time=self.now, failed_link=lid)
        return self._apply_failure([lid], impact)

    def fail_links(self, lids) -> EventImpact:
        """Fail several links as one atomic failure event (burst)."""
        unique = sorted(set(lids))
        if not unique:
            raise FaultInjectionError("fail_links needs at least one link")
        for lid in unique:
            if self.state.is_failed(lid):
                raise FaultInjectionError(f"link {lid} is already failed")
        impact = EventImpact(
            kind=EventKind.FAILURE,
            time=self.now,
            failed_link=unique[0] if len(unique) == 1 else None,
        )
        return self._apply_failure(unique, impact)

    def fail_node(self, node: int) -> EventImpact:
        """Atomically fail every alive link incident to ``node``."""
        alive = [
            link.id
            for link in self.topology.incident_links(node)
            if not self.state.is_failed(link.id)
        ]
        if not alive:
            raise FaultInjectionError(
                f"node {node} has no alive incident links to fail"
            )
        impact = EventImpact(
            kind=EventKind.FAILURE,
            time=self.now,
            failed_link=alive[0] if len(alive) == 1 else None,
            failed_node=node,
        )
        self.stats.node_failures += 1
        return self._apply_failure(alive, impact)

    def _sorted_by_cid(self, handles: Set[int]) -> List[int]:
        if not handles:
            return []
        return sorted(handles, key=self.conns.cid_py.__getitem__)

    def _apply_failure(self, lids: List[LinkId], impact: EventImpact) -> EventImpact:
        """Apply an atomic failure; an open micro-epoch is a barrier.

        Failures reshape the candidate sets themselves (drops,
        fail-overs, backup releases), so they are never deferred: the
        pending fill is flushed first, the failure runs with immediate
        sequential fills (its impact is therefore complete even while
        an epoch is open), and batching resumes afterwards.
        """
        if not self._epoch_active:
            return self._apply_failure_seq(lids, impact)
        self.flush_micro_epoch()
        self._epoch_active = False
        try:
            return self._apply_failure_seq(lids, impact)
        finally:
            self._epoch_active = True

    def _apply_failure_seq(self, lids: List[LinkId], impact: EventImpact) -> EventImpact:
        """Shared failure machinery over an atomic set of failed links."""
        t = self.links
        conns = self.conns
        for lid in lids:
            self.state.fail_link(lid)
            self.stats.link_failures += 1
        impact.failed_links = list(lids)
        affected: Set[int] = set()
        li_list = [t.index[lid] for lid in lids]

        primary_victim_set: Set[int] = set()
        inactive_victim_set: Set[int] = set()
        live_victim_set: Set[int] = set()
        for li in li_list:
            primary_victim_set |= self._prims_on[li]
            inactive_victim_set |= self._backups_on[li]
            live_victim_set |= self._active_on[li]
        primary_victims = self._sorted_by_cid(primary_victim_set)
        inactive_backup_victims = self._sorted_by_cid(
            inactive_victim_set - primary_victim_set
        )
        live_backup_victims = self._sorted_by_cid(live_victim_set)

        # Connections that only lost their (inactive) backup stay up,
        # unprotected, at their current bandwidth.
        for h in inactive_backup_victims:
            cid = int(conns.conn_id[h])
            b_min = float(conns.b_min[h])
            conflict = self._conflict_of(h)
            for li in conns.bk_slice(h).tolist():
                t.remove_backup(li, b_min, conflict)
                self._backups_on[li].discard(h)
            conns.clear_backup(h)
            impact.lost_backup.append(cid)
            self.stats.backups_lost += 1
            if self.reestablish_backups:
                self._try_reestablish_backup(h)

        # Connections already running on a backup have no further
        # protection: losing the backup path drops them.
        for h in live_backup_victims:
            cid = int(conns.conn_id[h])
            b_min = float(conns.b_min[h])
            bk_idx = conns.bk_slice(h).copy()
            t.sub_activated(bk_idx, b_min)
            for li in bk_idx.tolist():
                self._active_on[li].discard(h)
            del self._h_of[cid]
            conns.free(h, ConnectionState.DROPPED)
            impact.dropped.append(cid)
            self.stats.connections_dropped += 1
            self.stats.double_failure_drops += 1
            affected.update(bk_idx[~t.failed[bk_idx]].tolist())

        # Primaries through the failed link: release, then try failover.
        for h in primary_victims:
            cid = int(conns.conn_id[h])
            b_min = float(conns.b_min[h])
            before_level = int(conns.level[h])
            prim_idx = conns.prim_slice(h).copy()
            for li in prim_idx.tolist():
                self._prims_on[li].discard(h)
            t.release_primary_bulk(prim_idx, b_min, float(conns.conn_extra[h]))
            conns.conn_extra[h] = 0.0
            conns.level[h] = 0
            affected.update(prim_idx[~t.failed[prim_idx]].tolist())
            impact.direct[cid] = (before_level, 0)

            had_backup = bool(conns.bk_len[h])
            bk_idx = conns.bk_slice(h).copy() if had_backup else None
            usable_backup = (
                had_backup
                and bk_idx is not None
                and not bool(t.failed[bk_idx].any())
                and all(t.can_activate_backup(int(li), b_min) for li in bk_idx)
            )
            if (
                usable_backup
                and self.activation_fault_prob > 0.0
                and self._fault_rng is not None
                and float(self._fault_rng.random()) < self.activation_fault_prob
            ):
                usable_backup = False
                impact.activation_faults.append(cid)
                self.stats.activation_faults += 1
            if usable_backup:
                assert bk_idx is not None
                # Retreat rule: primaries sharing the backup's links give
                # up their extras before the backup goes live.
                for bli in bk_idx.tolist():
                    for other in self._sorted_by_cid(self._prims_on[bli]):
                        other_cid = int(conns.conn_id[other])
                        prev, freed = drop_to_minimum_soa(t, conns, other)
                        affected.update(freed.tolist())
                        if other_cid not in impact.direct:
                            impact.direct[other_cid] = (prev, 0)
                conflict = self._conflict_of(h)
                for li in bk_idx.tolist():
                    t.activate_backup(li, b_min, conflict)
                    self._backups_on[li].discard(h)
                    self._active_on[li].add(h)
                conns.on_backup[h] = True
                conns.state[h] = _FAILED_OVER
                impact.activated.append(cid)
                self.stats.backups_activated += 1
            else:
                if had_backup and bk_idx is not None:
                    conflict = self._conflict_of(h)
                    for li in bk_idx.tolist():
                        t.remove_backup(li, b_min, conflict)
                        self._backups_on[li].discard(h)
                del self._h_of[cid]
                conns.free(h, ConnectionState.DROPPED)
                impact.dropped.append(cid)
                self.stats.connections_dropped += 1
                if had_backup:
                    self.stats.double_failure_drops += 1

        direct_ids = set(impact.direct)
        self._redistribute(affected, impact, direct_ids)
        return impact

    def repair_link(self, lid: LinkId) -> EventImpact:
        """Return a failed link to service (no fail-back, as the paper)."""
        impact = EventImpact(kind=EventKind.REPAIR, time=self.now, failed_link=lid)
        self.state.repair_link(lid)
        self.stats.link_repairs += 1
        return impact

    def _try_reestablish_backup(self, h: int) -> bool:
        """Route and reserve a replacement backup for ``h`` (extension)."""
        conns = self.conns
        t = self.links
        qos = conns.qos[h]
        assert qos is not None
        b_min = float(conns.b_min[h])
        primary_links = conns.primary_links_of(h, t.link_ids)
        prim_plan = RoutePlan(
            conns.pnode_slice(h).tolist(), primary_links, conns.prim_slice(h).copy()
        )
        path, bplan = self._centralized_backup(prim_plan, b_min, qos)
        if path is None:
            return False
        primary_set = self._conflict_set(prim_plan.link_set)
        if bplan is not None:
            bk_idx = bplan.idx
            bk_nodes = bplan.nodes
            overlap = 0
        else:
            links_b = self.topology.path_links(path)
            bk_idx = t.indices_of(links_b)
            bk_nodes = np.asarray(path, dtype=np.int64)
            overlap = sum(1 for lid in links_b if lid in prim_plan.link_set)
        if not t.can_admit_backup_bulk(bk_idx, b_min, primary_set):
            return False
        for li in bk_idx.tolist():
            t.add_backup(li, b_min, primary_set)
            self._backups_on[li].add(h)
        self.conns.set_backup(h, bk_idx, bk_nodes, overlap)
        self.stats.backups_reestablished += 1
        return True

    # ------------------------------------------------------------------
    # micro-epoch batching
    # ------------------------------------------------------------------
    def begin_micro_epoch(self) -> None:
        """Open a micro-epoch: defer the fills of link-disjoint events.

        While an epoch is open, churn events apply their reservations,
        reclamations and releases immediately but postpone the
        redistribution water-fill.  Consecutive events whose conflict
        keys (see :meth:`_epoch_guard`) are pairwise link-disjoint
        share one batched fill at the next flush point; an event whose
        key overlaps the epoch's flushes the pending fill *before*
        mutating anything, so the sequential trajectory is reproduced
        bit for bit (DESIGN.md gives the commutation argument).
        Admission and routing are unaffected by an open epoch: they
        read only extras-free columns (``headroom``), which deferred
        fills never touch, so accept/reject decisions and routes are
        exact.  Failures and repairs are epoch barriers and always run
        with immediate fills.

        Caveat: while an epoch is open, the level trajectories folded
        into each churn event's :class:`EventImpact` (``direct`` /
        ``indirect_changed``) reflect the *pre-fill* state, and
        level-dependent queries (``average_live_bandwidth``,
        ``level_histogram``) lag the sequential trajectory until the
        next flush.  Callers that consume those must flush first — the
        simulator batches only during warm-up with tracing and
        auditing off.
        """
        if self._epoch_active:
            raise SimulationError("micro-epoch already open")
        self._epoch_active = True
        self._epoch_links = set()
        self._epoch_affected = set()

    def flush_micro_epoch(self) -> Dict[int, int]:
        """Run the deferred water-fill now; the epoch stays open.

        Returns ``conn_id -> levels granted`` like
        :meth:`redistribute_all`.  A no-op (empty dict) when no epoch
        is open or nothing is pending.
        """
        if not self._epoch_active or not self._epoch_affected:
            self._epoch_links = set()
            self._epoch_affected = set()
            return {}
        affected = self._epoch_affected
        self._epoch_links = set()
        self._epoch_affected = set()
        sets = self._prims_on
        groups = [sets[li] for li in affected if sets[li]]
        if not groups:
            return {}
        hset: Set[int] = set().union(*groups)
        conns = self.conns
        hs_list = sorted(hset, key=conns.cid_py.__getitem__)
        return redistribute_soa(self.links, conns, hs_list, self.policy)

    def end_micro_epoch(self) -> Dict[int, int]:
        """Flush the deferred fill and close the epoch."""
        granted = self.flush_micro_epoch()
        self._epoch_active = False
        return granted

    def _epoch_guard(self, core: List[int]) -> None:
        """Flush the pending fill unless this event's key is disjoint.

        The conflict key is the two-step link closure of the event's
        own (dense) link indices: the paths of every ACTIVE primary
        touching them, plus the paths of every primary touching *those*
        links.  That covers everything the event's fill may read or
        write — reclamation spreads the affected set to the direct
        channels' full paths, whose fill candidates' paths are one
        neighbourhood further out.  Two events with disjoint keys
        therefore have disjoint fill candidate sets and disjoint
        per-link float sequences: their fills commute bitwise with each
        other and with the other event's reservations.
        """
        sets = self._prims_on
        path_py = self.conns.path_py
        key = set(core)
        chan: Set[int] = set()
        frontier = key
        for _ in range(2):
            groups = [sets[li] for li in frontier if sets[li]]
            if not groups:
                break
            fresh = set().union(*groups) - chan
            if not fresh:
                break
            chan |= fresh
            frontier = set()
            for h in fresh:
                frontier.update(path_py[h])
            frontier -= key
            key |= frontier
        if self._epoch_links and not self._epoch_links.isdisjoint(key):
            self.flush_micro_epoch()
        self._epoch_links.update(key)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def redistribute_all(self) -> Dict[int, int]:
        """Global water-fill over every ACTIVE elastic primary."""
        conns = self.conns
        mask = (
            conns.alloc
            & (conns.state == _ACTIVE)
            & ~conns.on_backup
            & conns.elastic
        )
        hs = np.flatnonzero(mask)
        if not len(hs):
            return {}
        hs = hs[np.argsort(conns.conn_id[hs])]
        return redistribute_soa(self.links, conns, hs, self.policy)

    def _redistribute(
        self, affected: Set[int], impact: EventImpact, direct_ids: Set[int]
    ) -> None:
        """Water-fill the affected links and fold the result into ``impact``."""
        if not affected or not self.auto_redistribute:
            return
        if self._epoch_active:
            # Deferred: the fill runs at the next flush point.  The
            # guard already proved this event's conflict key disjoint
            # from every other deferred event's, so the batched fill
            # reproduces the sequential fills bit for bit.  The
            # impact's level trajectory stays pre-fill (documented in
            # :meth:`begin_micro_epoch`).
            self._epoch_affected |= affected
            return
        sets = self._prims_on
        groups = [sets[li] for li in affected if sets[li]]
        if not groups:
            return
        hset: Set[int] = set().union(*groups)
        conns = self.conns
        hs_list = sorted(hset, key=conns.cid_py.__getitem__)
        afters: Dict[int, int] = {}
        granted = redistribute_soa(self.links, conns, hs_list, self.policy, afters)
        if not granted:
            return
        indirect = impact.indirect_changed
        for cid, inc in granted.items():
            if cid not in direct_ids:
                after = afters[cid]
                indirect[cid] = (after - inc, after)
        self._finalize_direct(impact, direct_ids, granted)

    def _finalize_direct(
        self, impact: EventImpact, direct_ids: Set[int], granted: Dict[int, int]
    ) -> None:
        """Set the post-redistribution level of every direct observation.

        Every ``impact.direct`` writer stores ``(before, level at fill
        start)``, and only the fill moves a direct channel's level after
        that — so the post-fill level is the stored second element plus
        whatever the fill granted.  Dropped-during-failure ids are never
        fill candidates, so their censored ``(before, 0)`` entry is
        reproduced unchanged.
        """
        if not direct_ids:
            return
        get = granted.get
        direct = impact.direct
        for cid in direct_ids:
            inc = get(cid, 0)
            if inc:
                before, at_fill = direct[cid]
                direct[cid] = (before, at_fill + inc)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Recompute link columns from the raw connection rows and
        cross-check, then audit the index structures.

        The link-level pass hands :meth:`LinkTable.check_invariants` the
        raw per-connection contributions — it never trusts a maintained
        column, mirroring the object core's cache-vs-recount discipline
        at whole-array granularity.
        """
        conns = self.conns
        t = self.links
        strict = not self.state.failed_links and self.stats.link_failures == 0
        live = np.flatnonzero(conns.alloc)
        primaries = []
        backups = []
        activated = []
        for h in live.tolist():
            b_min = float(conns.b_min[h])
            if int(conns.state[h]) == _ACTIVE:
                primaries.append((conns.prim_slice(h), b_min, float(conns.conn_extra[h])))
                if conns.bk_len[h]:
                    backups.append(
                        (conns.bk_slice(h), b_min, self._conflict_of(h))
                    )
            elif conns.on_backup[h]:
                activated.append((conns.bk_slice(h), b_min))
        t.check_invariants(primaries, backups, activated, strict_reservation=strict)

        for name, sets, member in (
            ("primary", self._prims_on, "prim"),
            ("backup", self._backups_on, "bk"),
            ("activated backup", self._active_on, "bk"),
        ):
            starts = conns.prim_start if member == "prim" else conns.bk_start
            lens = conns.prim_len if member == "prim" else conns.bk_len
            arena = conns.links_arena.data
            for li, handles in enumerate(sets):
                for h in handles:
                    s = int(starts[h])
                    if li not in arena[s : s + int(lens[h])]:
                        raise ReservationError(
                            f"index says handle {h} has a {name} on link "
                            f"{t.link_ids[li]} but its route disagrees"
                        )
        for cid, h in self._h_of.items():
            if int(conns.conn_id[h]) != cid or not conns.alloc[h]:
                raise ReservationError(f"handle map out of sync for connection {cid}")
            if int(conns.state[h]) == _ACTIVE:
                qos = conns.qos[h]
                assert qos is not None
                expected = qos.performance.level_bandwidth(int(conns.level[h]))
                actual = float(conns.b_min[h] + conns.conn_extra[h])
                if abs(actual - expected) > 1e-6:
                    raise ReservationError(
                        f"connection {cid}: reserved {actual} but level "
                        f"{int(conns.level[h])} implies {expected}"
                    )
