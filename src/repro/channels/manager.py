"""The network manager: DR-connection establishment, teardown, recovery.

This is the centralized network manager of §2.1.1: it selects routes,
performs admission tests, reserves resources for primary and backup
channels, reclaims and redistributes elastic extras, and reacts to link
failures by activating backup channels.  Every public operation returns
an :class:`~repro.channels.records.EventImpact` describing the level
transitions it caused in pre-existing channels — the raw observations
behind the Markov model's parameters.

The operational rules implemented here are exactly those of §3.1:

* arrivals reserve the *minimum* bandwidth, reclaiming the extras of
  every directly-chained channel first, then redistribute;
* backups are reserved link-disjointly (maximally disjoint as fallback)
  and multiplexed against single link failures;
* terminations free min + extras (and the backup reservation) and let
  sharing channels rise;
* a link failure activates the backups of the primaries it broke; all
  primaries sharing links with an activated backup retreat to their
  minimum before the remaining extras are redistributed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.channels.records import (
    ConnectionState,
    DRConnection,
    EventImpact,
    EventKind,
    ManagerStats,
)
from repro.elastic.policies import AdaptationPolicy, EqualShare
from repro.elastic.redistribute import candidate_ids, drop_to_minimum, redistribute
from repro.errors import FaultInjectionError, ReservationError, SimulationError
from repro.network.state import NetworkState
from repro.qos.spec import ConnectionQoS
from repro.routing.cache import NO_ROUTE, RouteCache
from repro.routing.disjoint import disjoint_path, maximally_disjoint_path
from repro.routing.flooding import flooding_route_pair
from repro.routing.shortest import _check_endpoints, bfs_path_rows
from repro.topology.graph import Link, LinkId, Network

#: Route-selection engines the manager supports.
ROUTING_ENGINES = ("dijkstra", "flooding")

#: Sentinel conflict set used when backup multiplexing is disabled: all
#: backups "conflict" on this pseudo failure link, so their reservations
#: add up instead of sharing (see NetworkManager.multiplex_backups).
_UNIVERSAL_CONFLICT: FrozenSet[LinkId] = frozenset({(-1, -1)})


class NetworkManager:
    """Central manager of DR-connections with elastic QoS over one topology."""

    def __init__(
        self,
        topology: Network,
        policy: Optional[AdaptationPolicy] = None,
        routing: str = "dijkstra",
        flood_hop_bound: int = 16,
        multiplex_backups: bool = True,
        reestablish_backups: bool = False,
        route_cache_probe: int = 4,
    ) -> None:
        if routing not in ROUTING_ENGINES:
            raise SimulationError(
                f"unknown routing engine {routing!r}; choose from {ROUTING_ENGINES}"
            )
        self.topology = topology
        self.state = NetworkState(topology)
        self.policy = policy if policy is not None else EqualShare()
        self.routing = routing
        self.flood_hop_bound = flood_hop_bound
        #: With multiplexing off (ablation A2), every backup is treated
        #: as conflicting with every other, so reservations add up
        #: instead of sharing — the pre-Han-&-Shin worst case.
        self.multiplex_backups = multiplex_backups
        #: Extension: when a failure destroys a connection's *inactive*
        #: backup, immediately try to route and reserve a replacement
        #: (the paper leaves connections unprotected; off by default).
        self.reestablish_backups = reestablish_backups
        #: Candidate-route cache over the live topology: repeat arrivals
        #: between the same endpoints reuse raw candidate routes and
        #: only pay the load-dependent admission re-check.  Invalidated
        #: by generation whenever a link fails or is repaired; answers
        #: are always identical to a from-scratch filtered search (see
        #: repro.routing.cache).  ``route_cache_probe`` is the number of
        #: raw candidates checked per arrival before falling back to the
        #: filtered search; 0 disables caching entirely.
        self.route_cache: Optional[RouteCache] = (
            RouteCache(topology, self.state, probe_limit=route_cache_probe)
            if route_cache_probe > 0
            else None
        )
        #: Live connections (ACTIVE or FAILED_OVER) by id.
        self.connections: Dict[int, DRConnection] = {}
        #: link -> ids of ACTIVE primaries traversing it.
        self.channels_on_link: Dict[LinkId, Set[int]] = defaultdict(set)
        #: link -> ids of connections whose *inactive* backup traverses it.
        self.backups_on_link: Dict[LinkId, Set[int]] = defaultdict(set)
        #: link -> ids of connections whose *activated* backup traverses it.
        self.active_backups_on_link: Dict[LinkId, Set[int]] = defaultdict(set)
        self.stats = ManagerStats()
        self.now = 0.0
        self._next_id = 0
        #: Injected backup-activation fault probability: with p > 0 each
        #: otherwise-usable backup activation fails with probability p
        #: (the backup link is concurrently dead from the manager's
        #: point of view) and the connection is dropped.  0.0 keeps the
        #: paper's behaviour and performs *no* RNG draws, so disabled
        #: runs stay bitwise identical.  Set via
        #: :meth:`set_activation_faults`.
        self.activation_fault_prob: float = 0.0
        self._fault_rng = None
        #: When False, events skip the water-fill (bulk setup runs one
        #: global redistribution at the end instead — see the simulator).
        self.auto_redistribute = True
        #: Parity flag for the array core's micro-epoch API (no-op here).
        self._epoch_active = False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def connection(self, conn_id: int) -> DRConnection:
        """The live connection ``conn_id``.

        Raises:
            ReservationError: if it is not live.
        """
        try:
            return self.connections[conn_id]
        except KeyError:
            raise ReservationError(f"connection {conn_id} is not live") from None

    def live_connection_ids(self) -> List[int]:
        """Ids of all live connections, sorted."""
        return sorted(self.connections)

    @property
    def num_live(self) -> int:
        """Number of live connections."""
        return len(self.connections)

    def average_live_bandwidth(self) -> float:
        """Mean bandwidth currently reserved per live connection.

        This is the paper's performance metric ("the average bandwidth
        reserved for each primary channel").  Returns 0.0 with no live
        connections.
        """
        if not self.connections:
            return 0.0
        return sum(c.bandwidth for c in self.connections.values()) / len(self.connections)

    def level_histogram(self, num_levels: int) -> List[int]:
        """Count of ACTIVE elastic primaries at each level (state S_i).

        Heterogeneous workloads may contain contracts with more levels
        than ``num_levels``; such channels are clipped into the top
        bucket (the occupancy distribution is only exact for the
        homogeneous workloads the paper analyses).
        """
        hist = [0] * num_levels
        for conn in self.connections.values():
            if conn.state is ConnectionState.ACTIVE and not conn.on_backup:
                hist[min(conn.level, num_levels - 1)] += 1
        return hist

    # ------------------------------------------------------------------
    # micro-epoch batching (parity API; sequential core never defers)
    # ------------------------------------------------------------------
    def begin_micro_epoch(self) -> None:
        """Accept the array core's micro-epoch protocol as a no-op.

        Micro-epoch batching is an internal execution strategy of the
        array core whose observable trajectory is bitwise identical to
        sequential per-event fills (twin-manager suite), so the
        reference core implements the same API without deferring
        anything — callers can drive either core through one code path.
        """
        if self._epoch_active:
            raise SimulationError("micro-epoch already open")
        self._epoch_active = True

    def flush_micro_epoch(self) -> Dict[int, int]:
        """Parity no-op: nothing is ever deferred on this core."""
        return {}

    def end_micro_epoch(self) -> Dict[int, int]:
        """Close the (no-op) epoch opened by :meth:`begin_micro_epoch`."""
        self._epoch_active = False
        return {}

    # ------------------------------------------------------------------
    # establishment
    # ------------------------------------------------------------------
    def request_connection(
        self, source: int, destination: int, qos: ConnectionQoS
    ) -> Tuple[Optional[DRConnection], EventImpact]:
        """Try to establish a DR-connection; returns (connection, impact).

        The connection is ``None`` when the request was rejected (no
        admissible primary route, or no backup route while the
        dependability QoS demands one).
        """
        impact = EventImpact(kind=EventKind.ARRIVAL, time=self.now)
        if qos.dependability.num_backups > 1:
            raise SimulationError(
                "this manager implements the paper's scheme of one backup "
                f"channel per DR-connection; got num_backups="
                f"{qos.dependability.num_backups}"
            )
        self.stats.requests += 1
        perf = qos.performance
        b_min = perf.b_min

        primary_path, backup_path, primary_links, primary_link_set = self._select_routes(
            source, destination, qos
        )
        if primary_path is None or primary_links is None or primary_link_set is None:
            self.stats.rejected_no_primary += 1
            impact.accepted = False
            return None, impact
        if qos.dependability.wants_backup and backup_path is None:
            self.stats.rejected_no_backup += 1
            impact.accepted = False
            return None, impact

        primary_set = self._conflict_set(primary_link_set)
        conn_id = self._next_id
        self._next_id += 1
        impact.conn_id = conn_id

        # Reclaim: every directly-chained channel drops to its minimum.
        affected: Set[LinkId] = set(primary_links)
        direct_ids = candidate_ids(self.channels_on_link, primary_links)
        for cid in sorted(direct_ids):
            chan = self.connections[cid]
            before, freed = drop_to_minimum(self.state, chan)
            affected.update(freed)
            impact.direct[cid] = (before, 0)

        self.state.reserve_primary_path(conn_id, primary_links, b_min)

        backup_links: Optional[List[LinkId]] = None
        overlap = 0
        if backup_path is not None:
            backup_links = self.topology.path_links(backup_path)
            overlap = sum(1 for lid in backup_links if lid in primary_link_set)
            if not self.state.can_admit_backup_path(backup_links, b_min, primary_set):
                # The primary's own reservation consumed the headroom the
                # backup needed (only possible with overlapping routes).
                self.state.release_primary_path(conn_id, primary_links)
                self._redistribute(affected, impact, direct_ids)
                self.stats.rejected_no_backup += 1
                impact.accepted = False
                return None, impact
            self.state.reserve_backup_path(conn_id, backup_links, b_min, primary_set)

        conn = DRConnection(
            conn_id=conn_id,
            source=source,
            destination=destination,
            qos=qos,
            primary_path=list(primary_path),
            primary_links=primary_links,
            backup_path=list(backup_path) if backup_path else None,
            backup_links=backup_links,
            backup_overlap=overlap,
            established_at=self.now,
        )
        self.connections[conn_id] = conn
        for lid in primary_links:
            self.channels_on_link[lid].add(conn_id)
        if backup_links:
            for lid in backup_links:
                self.backups_on_link[lid].add(conn_id)

        self._redistribute(affected, impact, direct_ids)
        self.stats.accepted += 1
        return conn, impact

    def _select_routes(
        self, source: int, destination: int, qos: ConnectionQoS
    ) -> Tuple[
        Optional[List[int]],
        Optional[List[int]],
        Optional[List[LinkId]],
        Optional[FrozenSet[LinkId]],
    ]:
        """Pick routes with the configured engine.

        Returns ``(primary, backup, primary_links, primary_link_set)``.
        The primary's link list and link set are derived here, exactly
        once per arrival, and handed to both the backup search and the
        caller — ``path_links`` over a 10+-hop route is too expensive to
        recompute three times per request.
        """
        _check_endpoints(self.topology, source, destination)
        perf = qos.performance
        b_min = perf.b_min

        if self.routing == "flooding":
            def allowance(link: Link) -> float:
                ls = self.state.link(link.id)
                return 0.0 if ls.failed else max(0.0, ls.admission_headroom)

            primary, backup = flooding_route_pair(
                self.topology,
                source,
                destination,
                b_min,
                allowance,
                backup_allowance=allowance,
                hop_bound=self.flood_hop_bound,
            )
            if primary is None:
                return None, None, None, None
            primary_links = self.topology.path_links(primary)
            primary_link_set = frozenset(primary_links)
            if qos.dependability.wants_backup and backup is None:
                # Flooding found no disjoint copy; fall back to the
                # centralized disjoint search so maximal disjointness is
                # still honoured (footnote 1 of the paper).
                backup = self._centralized_backup(primary, b_min, qos, primary_link_set)
            return primary, backup, primary_links, primary_link_set

        primary = primary_links = None
        if self.route_cache is not None:
            found = self.route_cache.primary_route(
                source, destination, lambda ls: ls.can_admit_primary(b_min)
            )
            if found is NO_ROUTE:
                return None, None, None, None
            if found is not None:
                primary, primary_links = found
        if primary is None:
            # Cache disabled, or no probed candidate admitted: run the
            # authoritative admission-filtered search over live rows.
            primary = bfs_path_rows(
                self.state.adjacency_rows(),
                source,
                destination,
                lambda lid, ls: ls.can_admit_primary(b_min),
            )
            if primary is None:
                return None, None, None, None
            primary_links = self.topology.path_links(primary)
        primary_link_set = frozenset(primary_links)
        backup = None
        if qos.dependability.wants_backup:
            backup = self._centralized_backup(primary, b_min, qos, primary_link_set)
        return primary, backup, primary_links, primary_link_set

    def _conflict_set(self, primary_set: FrozenSet[LinkId]) -> FrozenSet[LinkId]:
        """The failure-conflict set a backup reservation is keyed on."""
        return primary_set if self.multiplex_backups else _UNIVERSAL_CONFLICT

    def _centralized_backup(
        self,
        primary: List[int],
        b_min: float,
        qos: ConnectionQoS,
        primary_set: FrozenSet[LinkId],
    ) -> Optional[List[int]]:
        conflict_set = self._conflict_set(primary_set)
        allow_partial = not qos.dependability.require_link_disjoint

        def backup_ok(link: Link) -> bool:
            return self.state.link(link.id).can_admit_backup(b_min, conflict_set)

        if self.route_cache is not None:
            raw = self.route_cache.raw_disjoint_backup(
                primary[0], primary[-1], tuple(primary), primary_set
            )
            if raw is None:
                # No fully disjoint live path exists, admissible or not:
                # the filtered disjoint search cannot succeed, so go
                # straight to the maximally-disjoint stage (or give up).
                if not allow_partial:
                    return None
                found = maximally_disjoint_path(
                    self.topology, primary[0], primary[-1], primary_set, backup_ok
                )
                return found[0] if found is not None else None
            path, _links, states = raw
            if all(ls.can_admit_backup(b_min, conflict_set) for ls in states):
                # The raw shortest disjoint path admits as-is; it is the
                # exact path the filtered disjoint search would return.
                return list(path)
            # Raw candidate blocked by load: fall through to the full
            # filtered search below, which remains authoritative.

        found = disjoint_path(
            self.topology,
            primary[0],
            primary[-1],
            avoid=primary_set,
            link_filter=backup_ok,
            allow_partial=allow_partial,
        )
        if found is None:
            return None
        path, _overlap = found
        return path

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def terminate_connection(self, conn_id: int) -> EventImpact:
        """Release one live connection and redistribute the freed capacity."""
        impact = EventImpact(kind=EventKind.TERMINATION, time=self.now, conn_id=conn_id)
        conn = self.connection(conn_id)
        del self.connections[conn_id]
        affected: Set[LinkId] = set()

        if conn.state is ConnectionState.ACTIVE:
            direct_ids = candidate_ids(self.channels_on_link, conn.primary_links)
            direct_ids.discard(conn_id)
            for cid in sorted(direct_ids):
                level = self.connections[cid].level
                impact.direct[cid] = (level, level)
            for lid in conn.primary_links:
                self.channels_on_link[lid].discard(conn_id)
            self.state.release_primary_path(conn_id, conn.primary_links)
            affected.update(lid for lid in conn.primary_links if not self.state.is_failed(lid))
            if conn.has_backup:
                assert conn.backup_links is not None
                self.state.release_backup_path(conn_id, conn.backup_links)
                for lid in conn.backup_links:
                    self.backups_on_link[lid].discard(conn_id)
        elif conn.state is ConnectionState.FAILED_OVER:
            assert conn.backup_links is not None
            direct_ids = candidate_ids(self.channels_on_link, conn.backup_links)
            for cid in sorted(direct_ids):
                level = self.connections[cid].level
                impact.direct[cid] = (level, level)
            self.state.release_activated_path(conn_id, conn.backup_links)
            for lid in conn.backup_links:
                self.active_backups_on_link[lid].discard(conn_id)
            affected.update(lid for lid in conn.backup_links if not self.state.is_failed(lid))
        else:  # pragma: no cover - defensive
            raise ReservationError(f"connection {conn_id} is not live ({conn.state})")

        conn.state = ConnectionState.TERMINATED
        self._redistribute(affected, impact, direct_ids)
        self.stats.terminated += 1
        return impact

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def set_activation_faults(self, probability: float, rng) -> None:
        """Enable injected backup-activation faults.

        Args:
            probability: Per-activation failure probability in [0, 1].
            rng: ``numpy.random.Generator`` the fault draws come from
                (the simulator passes its own stream so campaigns stay
                seed-deterministic).
        """
        if not 0.0 <= probability <= 1.0:
            raise FaultInjectionError(
                f"activation fault probability must be in [0, 1], got {probability}"
            )
        if probability > 0.0 and rng is None:
            raise FaultInjectionError("activation faults need an RNG")
        self.activation_fault_prob = probability
        self._fault_rng = rng

    def fail_link(self, lid: LinkId) -> EventImpact:
        """Fail one link: activate backups, drop unrecoverable connections.

        Follows §3.1: "all backup channels whose primaries traverse the
        failed component must be activated.  At this time, all of the
        existing primary channels that share links with the activated
        backup channels should release their extra resources ...  After
        the activation of backup channels, the extra resources that
        still remain available are distributed to the existing primary
        channels."
        """
        impact = EventImpact(kind=EventKind.FAILURE, time=self.now, failed_link=lid)
        return self._apply_failure([lid], impact)

    def fail_links(self, lids) -> EventImpact:
        """Fail several links as one atomic failure event (burst).

        All links are marked failed *before* any recovery runs, so a
        burst that hits both a primary and its backup drops the
        connection (a double failure) instead of activating onto a link
        that is about to die — exactly the correlated-failure regime the
        paper's single-failure model excludes.
        """
        unique = sorted(set(lids))
        if not unique:
            raise FaultInjectionError("fail_links needs at least one link")
        for lid in unique:
            if self.state.is_failed(lid):
                raise FaultInjectionError(f"link {lid} is already failed")
        impact = EventImpact(
            kind=EventKind.FAILURE,
            time=self.now,
            failed_link=unique[0] if len(unique) == 1 else None,
        )
        return self._apply_failure(unique, impact)

    def fail_node(self, node: int) -> EventImpact:
        """Atomically fail every alive link incident to ``node``.

        Models a router/switch crash: all its links die in one event.
        Raises :class:`FaultInjectionError` when the node has no alive
        incident links left to fail.
        """
        alive = [
            link.id
            for link in self.topology.incident_links(node)
            if not self.state.is_failed(link.id)
        ]
        if not alive:
            raise FaultInjectionError(
                f"node {node} has no alive incident links to fail"
            )
        impact = EventImpact(
            kind=EventKind.FAILURE,
            time=self.now,
            failed_link=alive[0] if len(alive) == 1 else None,
            failed_node=node,
        )
        self.stats.node_failures += 1
        return self._apply_failure(alive, impact)

    def _apply_failure(self, lids: List[LinkId], impact: EventImpact) -> EventImpact:
        """Shared failure machinery over an atomic set of failed links."""
        for lid in lids:
            self.state.fail_link(lid)
            self.stats.link_failures += 1
        impact.failed_links = list(lids)
        affected: Set[LinkId] = set()

        primary_victim_set: Set[int] = set()
        inactive_victim_set: Set[int] = set()
        live_victim_set: Set[int] = set()
        for lid in lids:
            primary_victim_set |= self.channels_on_link.get(lid, set())
            inactive_victim_set |= self.backups_on_link.get(lid, set())
            live_victim_set |= self.active_backups_on_link.get(lid, set())
        primary_victims = sorted(primary_victim_set)
        inactive_backup_victims = sorted(inactive_victim_set - primary_victim_set)
        live_backup_victims = sorted(live_victim_set)

        # Connections that only lost their (inactive) backup stay up,
        # unprotected, at their current bandwidth.
        for cid in inactive_backup_victims:
            conn = self.connections[cid]
            assert conn.backup_links is not None
            self.state.release_backup_path(cid, conn.backup_links)
            for blid in conn.backup_links:
                self.backups_on_link[blid].discard(cid)
            conn.backup_path = None
            conn.backup_links = None
            impact.lost_backup.append(cid)
            self.stats.backups_lost += 1
            if self.reestablish_backups:
                self._try_reestablish_backup(conn)

        # Connections already running on a backup have no further
        # protection: losing the backup path drops them.
        for cid in live_backup_victims:
            conn = self.connections.pop(cid)
            assert conn.backup_links is not None
            self.state.release_activated_path(cid, conn.backup_links)
            for blid in conn.backup_links:
                self.active_backups_on_link[blid].discard(cid)
            conn.state = ConnectionState.DROPPED
            impact.dropped.append(cid)
            self.stats.connections_dropped += 1
            # A failed-over connection losing its activated backup is a
            # second failure on the same connection.
            self.stats.double_failure_drops += 1
            affected.update(blid for blid in conn.backup_links if not self.state.is_failed(blid))

        # Primaries through the failed link: release, then try failover.
        for cid in primary_victims:
            conn = self.connections[cid]
            before_level = conn.level
            for plid in conn.primary_links:
                self.channels_on_link[plid].discard(cid)
            self.state.release_primary_path(cid, conn.primary_links)
            conn.level = 0
            affected.update(
                plid for plid in conn.primary_links if not self.state.is_failed(plid)
            )
            impact.direct[cid] = (before_level, 0)

            had_backup = conn.backup_links is not None
            usable_backup = (
                conn.has_backup
                and conn.backup_links is not None
                and self.state.path_is_alive(conn.backup_links)
                and self.state.can_activate_backup_path(cid, conn.backup_links)
            )
            if (
                usable_backup
                and self.activation_fault_prob > 0.0
                and self._fault_rng is not None
                and float(self._fault_rng.random()) < self.activation_fault_prob
            ):
                # Injected backup-activation fault: the activation
                # signalling fails even though the path looked usable.
                usable_backup = False
                impact.activation_faults.append(cid)
                self.stats.activation_faults += 1
            if usable_backup:
                assert conn.backup_links is not None
                # Retreat rule: primaries sharing the backup's links give
                # up their extras before the backup goes live.
                for blid in conn.backup_links:
                    for other in sorted(self.channels_on_link.get(blid, ())):
                        chan = self.connections[other]
                        prev, freed = drop_to_minimum(self.state, chan)
                        affected.update(freed)
                        if other not in impact.direct:
                            impact.direct[other] = (prev, 0)
                self.state.activate_backup_path(cid, conn.backup_links)
                for blid in conn.backup_links:
                    self.backups_on_link[blid].discard(cid)
                    self.active_backups_on_link[blid].add(cid)
                conn.on_backup = True
                conn.state = ConnectionState.FAILED_OVER
                impact.activated.append(cid)
                self.stats.backups_activated += 1
            else:
                if conn.backup_links is not None:
                    self.state.release_backup_path(cid, conn.backup_links)
                    for blid in conn.backup_links:
                        self.backups_on_link[blid].discard(cid)
                del self.connections[cid]
                conn.state = ConnectionState.DROPPED
                impact.dropped.append(cid)
                self.stats.connections_dropped += 1
                if had_backup:
                    # The connection was protected and still died: its
                    # backup was concurrently dead, no longer fit, or
                    # hit by an activation fault.
                    self.stats.double_failure_drops += 1

        direct_ids = set(impact.direct)
        self._redistribute(affected, impact, direct_ids)
        return impact

    def repair_link(self, lid: LinkId) -> EventImpact:
        """Return a failed link to service.

        Existing connections are not re-routed (the paper models no
        fail-back); the repaired link simply becomes available to future
        requests and backups.
        """
        impact = EventImpact(kind=EventKind.REPAIR, time=self.now, failed_link=lid)
        self.state.repair_link(lid)
        self.stats.link_repairs += 1
        return impact

    def _try_reestablish_backup(self, conn: DRConnection) -> bool:
        """Route and reserve a replacement backup for ``conn`` (extension).

        Returns True on success; on failure the connection simply stays
        unprotected, as in the paper's base scheme.
        """
        b_min = conn.qos.performance.b_min
        primary_link_set = frozenset(conn.primary_links)
        path = self._centralized_backup(conn.primary_path, b_min, conn.qos, primary_link_set)
        if path is None:
            return False
        links = self.topology.path_links(path)
        primary_set = self._conflict_set(primary_link_set)
        if not self.state.can_admit_backup_path(links, b_min, primary_set):
            return False
        self.state.reserve_backup_path(conn.conn_id, links, b_min, primary_set)
        conn.backup_path = list(path)
        conn.backup_links = links
        conn.backup_overlap = sum(1 for lid in links if lid in primary_link_set)
        for lid in links:
            self.backups_on_link[lid].add(conn.conn_id)
        self.stats.backups_reestablished += 1
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def redistribute_all(self) -> Dict[int, int]:
        """Global water-fill over every ACTIVE elastic primary.

        Used after bulk setup (simulator) and by tests; during normal
        operation the localized per-event redistribution suffices.
        Returns ``conn_id -> increments granted``.
        """
        candidates = {
            cid for cid, conn in self.connections.items() if conn.is_elastic_participant
        }
        return redistribute(self.state, self.connections, candidates, self.policy)

    def _redistribute(
        self, affected: Set[LinkId], impact: EventImpact, direct_ids: Set[int]
    ) -> None:
        """Water-fill the affected links and fold the result into ``impact``."""
        if not affected or not self.auto_redistribute:
            self._finalize_direct(impact, direct_ids)
            return
        cands = candidate_ids(self.channels_on_link, affected)
        granted = redistribute(self.state, self.connections, cands, self.policy)
        for cid, inc in granted.items():
            if cid not in direct_ids and cid in self.connections:
                after = self.connections[cid].level
                impact.indirect_changed[cid] = (after - inc, after)
        self._finalize_direct(impact, direct_ids)

    def _finalize_direct(self, impact: EventImpact, direct_ids: Set[int]) -> None:
        """Set the post-redistribution level of every direct observation."""
        for cid in direct_ids:
            conn = self.connections.get(cid)
            if conn is None:
                continue  # dropped during a failure event: censored
            before, _ = impact.direct[cid]
            impact.direct[cid] = (before, conn.level)

    def check_invariants(self) -> None:
        """Cross-check reservations against the index structures.

        Used by integration and property tests after every event; cheap
        enough to leave on in anger when debugging.
        """
        strict = not self.state.failed_links and self.stats.link_failures == 0
        self.state.check_invariants(strict_reservation=strict)
        for lid, ids in self.channels_on_link.items():
            for cid in ids:
                if not self.state.link(lid).has_primary(cid):
                    raise ReservationError(
                        f"index says connection {cid} is on {lid} but link state disagrees"
                    )
        for lid, ids in self.backups_on_link.items():
            for cid in ids:
                if not self.state.link(lid).has_backup(cid):
                    raise ReservationError(
                        f"index says backup of {cid} is on {lid} but link state disagrees"
                    )
        for lid, ids in self.active_backups_on_link.items():
            for cid in ids:
                if cid not in self.state.link(lid).activated:
                    raise ReservationError(
                        f"index says activated backup of {cid} is on {lid} "
                        f"but link state disagrees"
                    )
        for conn in self.connections.values():
            if conn.state is ConnectionState.ACTIVE:
                bw = self.state.primary_level_bandwidth(conn.conn_id, conn.primary_links)
                expected = conn.qos.performance.level_bandwidth(conn.level)
                if abs(bw - expected) > 1e-6:
                    raise ReservationError(
                        f"connection {conn.conn_id}: reserved {bw} but level "
                        f"{conn.level} implies {expected}"
                    )
