"""The crash-resilient process-pool experiment runner and its seeding.

:func:`run_sim_jobs` executes a batch of :class:`~repro.parallel.jobs.SimJob`
specs — in-process when ``jobs=1``, over a
:class:`~concurrent.futures.ProcessPoolExecutor` otherwise — and returns
:class:`~repro.parallel.jobs.SimJobResult` objects *in submission
order*.  Because every job is self-contained (own topology seed, own
simulation seed, no shared random stream), the results are bitwise
identical regardless of worker count or completion order; the
determinism tests under ``tests/parallel/`` assert exactly that.

Campaign resilience is layered on top of that determinism:

* a :class:`~repro.parallel.checkpoint.RetryPolicy` re-runs failing or
  overdue jobs with the *same* spec and seed (a retry reproduces, never
  re-rolls), with exponential backoff and an optional per-job wall-clock
  timeout enforced in pool mode;
* a broken pool (worker killed by the OS, crashed interpreter) is
  rebuilt and the unfinished jobs resubmitted, counting one attempt for
  the jobs that were in flight;
* a :class:`~repro.parallel.checkpoint.CampaignCheckpoint` persists
  every finished result, so an interrupted campaign resumed later skips
  straight to the missing jobs and still aggregates bitwise identically.

Worker counts resolve in priority order: explicit ``jobs`` argument →
``REPRO_JOBS`` environment variable → 1 (sequential).  When a pool
cannot be created or a job cannot be pickled, the runner degrades to
sequential execution — loudly: a ``RuntimeWarning`` naming the original
exception is emitted alongside the log record, because a silently
serial "parallel" campaign is a misconfiguration someone should see.

:func:`derive_seeds` is the one sanctioned way to produce per-job
seeds: ``np.random.SeedSequence(root).spawn(n)`` children are
statistically independent, deterministic for a given root, and
*prefix-stable* (the first ``k`` of ``n`` derived seeds do not depend
on ``n``), so growing a campaign never reshuffles existing points.
"""

from __future__ import annotations

import logging
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Set, TypeVar

import numpy as np

from repro.errors import SimulationError
from repro.parallel.checkpoint import CampaignCheckpoint, RetryPolicy
from repro.parallel.jobs import SimJob, SimJobResult, execute_sim_job

logger = logging.getLogger("repro.parallel")

#: Environment variable overriding the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Exceptions that mean "the pool itself is unusable" (sandboxed
#: platform, unpicklable payload) rather than "a job failed".
_POOL_SETUP_ERRORS = (OSError, ValueError, TypeError, AttributeError, ImportError)

T = TypeVar("T")
R = TypeVar("R")


def _sleep(seconds: float) -> None:
    """Backoff sleep, separated out so tests can stub it."""
    if seconds > 0:
        time.sleep(seconds)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` env > 1.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "all cores".  Anything
    negative is rejected.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise SimulationError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        raise SimulationError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """``count`` independent integer seeds spawned from ``root_seed``.

    Uses ``np.random.SeedSequence.spawn``: each child sequence is
    collapsed to one 64-bit integer, which fully determines the child's
    stream when fed back into ``np.random.default_rng``.  Deterministic,
    prefix-stable, and collision-free for all practical campaign sizes.
    """
    if count < 0:
        raise SimulationError(f"seed count must be non-negative, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


def _warn_sequential_fallback(context: str, exc: BaseException) -> None:
    """Make a degraded-to-sequential campaign impossible to miss."""
    message = (
        f"process pool unavailable while {context} "
        f"({type(exc).__name__}: {exc}); running sequentially"
    )
    logger.warning(message)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _execute_with_retry(
    job: SimJob,
    retry: RetryPolicy,
    checkpoint: Optional[CampaignCheckpoint] = None,
    index: int = -1,
) -> SimJobResult:
    """Run one job in-process, honouring the retry policy.

    Sequential execution cannot pre-empt a running job, so
    ``retry.timeout`` is not enforced here — only bounded retries with
    backoff against transient in-process failures.  Every charged
    attempt is classed ``exception`` in the checkpoint manifest (the
    other classes need a pool to occur).
    """
    attempt = 0
    while True:
        try:
            return execute_sim_job(job)
        except Exception as exc:
            reason = f"{type(exc).__name__}: {exc}"
            if attempt >= retry.max_retries:
                if checkpoint is not None and index >= 0:
                    checkpoint.note_exhausted(index, job)
                raise
            if checkpoint is not None and index >= 0:
                checkpoint.note_attempt(index, job, "exception", reason)
            delay = retry.backoff(attempt)
            logger.warning(
                "job %s failed (%s); retry %d/%d with the same seed in %.2fs",
                job.key, reason, attempt + 1, retry.max_retries, delay,
            )
            _sleep(delay)
            attempt += 1


def _finish(
    index: int,
    result: SimJobResult,
    results: List[Optional[SimJobResult]],
    checkpoint: Optional[CampaignCheckpoint],
    progress: Optional[Callable[[SimJobResult], None]],
) -> None:
    """Record one freshly computed result everywhere it needs to go."""
    results[index] = result
    if checkpoint is not None:
        checkpoint.record(index, result.job, result)
    if progress is not None:
        progress(result)


def _run_sequential(
    jobs_list: Sequence[SimJob],
    indices: Sequence[int],
    results: List[Optional[SimJobResult]],
    retry: RetryPolicy,
    checkpoint: Optional[CampaignCheckpoint],
    progress: Optional[Callable[[SimJobResult], None]],
) -> None:
    for position, index in enumerate(indices):
        job = jobs_list[index]
        result = _execute_with_retry(job, retry, checkpoint, index)
        logger.info(
            "job %d/%d %s done in %.2fs (sequential)",
            position + 1, len(indices), job.key, result.wall_time,
        )
        _finish(index, result, results, checkpoint, progress)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - platform-specific teardown
            pass


def _run_pool(
    jobs_list: Sequence[SimJob],
    indices: Sequence[int],
    results: List[Optional[SimJobResult]],
    workers: int,
    retry: RetryPolicy,
    checkpoint: Optional[CampaignCheckpoint],
    progress: Optional[Callable[[SimJobResult], None]],
) -> None:
    """Pool execution with retries, per-job timeouts and pool recovery."""
    total = len(indices)
    unfinished: Set[int] = set(indices)
    attempts: Dict[int, int] = {}
    done_count = 0

    def budget_attempt(index: int, failure_class: str, reason: str) -> None:
        """Count one classed failed attempt; raise when the budget is spent."""
        used = attempts.get(index, 0)
        if used >= retry.max_retries:
            if checkpoint is not None:
                checkpoint.note_exhausted(index, jobs_list[index])
            raise SimulationError(
                f"job {jobs_list[index].key} exhausted "
                f"{retry.max_retries + 1} attempts: {reason}"
            )
        attempts[index] = used + 1
        if checkpoint is not None:
            checkpoint.note_attempt(index, jobs_list[index], failure_class, reason)
        logger.warning(
            "job %s %s; retry %d/%d with the same seed",
            jobs_list[index].key, reason, used + 1, retry.max_retries,
        )

    while unfinished:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(unfinished)))
        restart = False
        try:
            futures = {
                pool.submit(execute_sim_job, jobs_list[index]): index
                for index in sorted(unfinished)
            }
            deadlines: Dict[object, float] = {}
            if retry.timeout is not None:
                now = time.monotonic()
                deadlines = {future: now + retry.timeout for future in futures}
            pending = set(futures)
            while pending:
                wait_timeout = None
                if deadlines:
                    wait_timeout = max(
                        0.0,
                        min(deadlines[f] for f in pending) - time.monotonic(),
                    )
                done, pending = wait(
                    pending, timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index = futures.pop(future)
                    deadlines.pop(future, None)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:
                        budget_attempt(
                            index, "exception",
                            f"failed ({type(exc).__name__}: {exc})",
                        )
                        _sleep(retry.backoff(attempts[index] - 1))
                        replacement = pool.submit(execute_sim_job, jobs_list[index])
                        futures[replacement] = index
                        pending.add(replacement)
                        if retry.timeout is not None:
                            deadlines[replacement] = time.monotonic() + retry.timeout
                        continue
                    unfinished.discard(index)
                    done_count += 1
                    logger.info(
                        "job %d/%d %s done in %.2fs (pid %d)",
                        done_count, total, result.job.key,
                        result.wall_time, result.worker_pid,
                    )
                    _finish(index, result, results, checkpoint, progress)
                if not deadlines:
                    continue
                now = time.monotonic()
                overdue = [f for f in pending if deadlines.get(f, now + 1) <= now]
                for future in overdue:
                    index = futures[future]
                    budget_attempt(
                        index, "timeout", f"timed out after {retry.timeout:.1f}s"
                    )
                    if future.cancel():
                        # Still queued: retire it here and resubmit.
                        pending.discard(future)
                        futures.pop(future)
                        deadlines.pop(future)
                        replacement = pool.submit(execute_sim_job, jobs_list[index])
                        futures[replacement] = index
                        pending.add(replacement)
                        deadlines[replacement] = time.monotonic() + retry.timeout
                    else:
                        # Already running: the executor API cannot stop a
                        # live task, so replace the whole pool.
                        restart = True
                if restart:
                    break
        except BrokenProcessPool as exc:
            # The executor cannot say which unfinished jobs were mid-run
            # when it broke, so every one of them is charged an attempt;
            # with the budget spent this propagates instead of looping
            # on a pool a poisoned job keeps killing.
            logger.warning(
                "process pool broke (%s); restarting with %d unfinished jobs",
                exc, len(unfinished),
            )
            for index in sorted(unfinished):
                budget_attempt(
                    index, "pool-crash", f"was in a pool that broke ({exc})"
                )
            restart = True
        finally:
            if restart:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)


def run_sim_jobs(
    jobs_list: Sequence[SimJob],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[SimJobResult], None]] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
) -> List[SimJobResult]:
    """Execute a batch of simulation jobs; results in submission order.

    Args:
        jobs_list: The campaign's job specs.
        jobs: Worker processes (``None``: ``REPRO_JOBS`` env or 1;
            ``0``: all cores).  ``jobs=1`` runs in-process.
        progress: Optional callback invoked with each *freshly computed*
            :class:`SimJobResult` as it completes (completion order
            under parallel execution; call order is *not* deterministic,
            the returned list is).  Results restored from a checkpoint
            do not re-trigger it.
        retry: Bounded-retry/timeout policy; ``None`` means fail fast
            (``RetryPolicy(max_retries=0)``), the legacy behaviour.
        checkpoint: Optional campaign checkpoint; completed jobs found
            in it are reused, fresh completions are persisted to it.

    Returns:
        One :class:`SimJobResult` per job, in the order submitted,
        independent of the worker count and of any resume.
    """
    jobs_list = list(jobs_list)
    retry = retry if retry is not None else RetryPolicy(max_retries=0)
    results: List[Optional[SimJobResult]] = [None] * len(jobs_list)

    if checkpoint is not None:
        for index, stored in checkpoint.load_completed(jobs_list).items():
            results[index] = stored
        restored = sum(1 for r in results if r is not None)
        if restored:
            logger.info(
                "resumed %d/%d jobs from checkpoint %s",
                restored, len(jobs_list), checkpoint.directory,
            )
        history = checkpoint.retry_report()
        if history:
            by_class: Dict[str, int] = {}
            for entry in history.values():
                for cls in entry.get("classes", ()):  # type: ignore[union-attr]
                    by_class[cls] = by_class.get(cls, 0) + 1
            logger.info(
                "checkpoint retry history: %d job(s) needed retries "
                "(attempts by class: %s; exhausted: %d)",
                len(history),
                ", ".join(f"{k}={v}" for k, v in sorted(by_class.items())) or "none",
                sum(1 for e in history.values() if e.get("final") == "exhausted"),
            )

    remaining = [index for index, r in enumerate(results) if r is None]
    if remaining:
        workers = min(resolve_jobs(jobs), max(1, len(remaining)))
        if workers <= 1 or len(remaining) <= 1:
            _run_sequential(jobs_list, remaining, results, retry, checkpoint, progress)
        else:
            start = time.perf_counter()
            try:
                _run_pool(
                    jobs_list, remaining, results, workers, retry, checkpoint, progress
                )
            except _POOL_SETUP_ERRORS as exc:
                _warn_sequential_fallback("running the campaign", exc)
                still_missing = [i for i, r in enumerate(results) if r is None]
                _run_sequential(
                    jobs_list, still_missing, results, retry, checkpoint, progress
                )
            else:
                logger.info(
                    "campaign of %d jobs finished in %.2fs on %d workers",
                    len(remaining), time.perf_counter() - start, workers,
                )
    return [r for r in results if r is not None]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Order-preserving map over a process pool (ablation drivers).

    ``fn`` must be a module-level callable and every item picklable.
    Falls back to an in-process map when ``jobs`` resolves to 1, the
    batch is trivial, or the pool cannot be used — the latter loudly,
    with a ``RuntimeWarning`` naming the original exception.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), max(1, len(items)))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    except _POOL_SETUP_ERRORS as exc:
        _warn_sequential_fallback("mapping items", exc)
        return [fn(item) for item in items]
