"""The process-pool experiment runner and its seeding scheme.

:func:`run_sim_jobs` executes a batch of :class:`~repro.parallel.jobs.SimJob`
specs — in-process when ``jobs=1``, over a
:class:`~concurrent.futures.ProcessPoolExecutor` otherwise — and returns
:class:`~repro.parallel.jobs.SimJobResult` objects *in submission
order*.  Because every job is self-contained (own topology seed, own
simulation seed, no shared random stream), the results are bitwise
identical regardless of worker count or completion order; the
determinism tests under ``tests/parallel/`` assert exactly that.

Worker counts resolve in priority order: explicit ``jobs`` argument →
``REPRO_JOBS`` environment variable → 1 (sequential).  When a pool
cannot be created or a job cannot be pickled, the runner logs a warning
and falls back to sequential execution rather than failing the
campaign.

:func:`derive_seeds` is the one sanctioned way to produce per-job
seeds: ``np.random.SeedSequence(root).spawn(n)`` children are
statistically independent, deterministic for a given root, and
*prefix-stable* (the first ``k`` of ``n`` derived seeds do not depend
on ``n``), so growing a campaign never reshuffles existing points.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import SimulationError
from repro.parallel.jobs import SimJob, SimJobResult, execute_sim_job

logger = logging.getLogger("repro.parallel")

#: Environment variable overriding the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` env > 1.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "all cores".  Anything
    negative is rejected.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise SimulationError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        raise SimulationError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """``count`` independent integer seeds spawned from ``root_seed``.

    Uses ``np.random.SeedSequence.spawn``: each child sequence is
    collapsed to one 64-bit integer, which fully determines the child's
    stream when fed back into ``np.random.default_rng``.  Deterministic,
    prefix-stable, and collision-free for all practical campaign sizes.
    """
    if count < 0:
        raise SimulationError(f"seed count must be non-negative, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


def _run_sequential(
    jobs_list: Sequence[SimJob],
    progress: Optional[Callable[[SimJobResult], None]],
) -> List[SimJobResult]:
    out: List[SimJobResult] = []
    for index, job in enumerate(jobs_list):
        result = execute_sim_job(job)
        logger.info(
            "job %d/%d %s done in %.2fs (sequential)",
            index + 1, len(jobs_list), job.key, result.wall_time,
        )
        if progress is not None:
            progress(result)
        out.append(result)
    return out


def run_sim_jobs(
    jobs_list: Sequence[SimJob],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[SimJobResult], None]] = None,
) -> List[SimJobResult]:
    """Execute a batch of simulation jobs; results in submission order.

    Args:
        jobs_list: The campaign's job specs.
        jobs: Worker processes (``None``: ``REPRO_JOBS`` env or 1;
            ``0``: all cores).  ``jobs=1`` runs in-process.
        progress: Optional callback invoked with each
            :class:`SimJobResult` as it completes (completion order
            under parallel execution; call order is *not* deterministic,
            the returned list is).

    Returns:
        One :class:`SimJobResult` per job, in the order submitted,
        independent of the worker count.
    """
    jobs_list = list(jobs_list)
    workers = min(resolve_jobs(jobs), max(1, len(jobs_list)))
    if workers <= 1 or len(jobs_list) <= 1:
        return _run_sequential(jobs_list, progress)

    start = time.perf_counter()
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_sim_job, job): index
                for index, job in enumerate(jobs_list)
            }
            results: List[Optional[SimJobResult]] = [None] * len(jobs_list)
            pending = set(futures)
            done_count = 0
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    result = future.result()
                    results[index] = result
                    done_count += 1
                    logger.info(
                        "job %d/%d %s done in %.2fs (pid %d)",
                        done_count, len(jobs_list), result.job.key,
                        result.wall_time, result.worker_pid,
                    )
                    if progress is not None:
                        progress(result)
    except (OSError, ValueError, TypeError, AttributeError, ImportError) as exc:
        # Pool creation or job pickling failed (sandboxed platform,
        # unpicklable payload): degrade gracefully to one process.
        logger.warning("process pool unavailable (%s); running sequentially", exc)
        return _run_sequential(jobs_list, progress)
    logger.info(
        "campaign of %d jobs finished in %.2fs on %d workers",
        len(jobs_list), time.perf_counter() - start, workers,
    )
    return [r for r in results if r is not None]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Order-preserving map over a process pool (ablation drivers).

    ``fn`` must be a module-level callable and every item picklable.
    Falls back to an in-process map when ``jobs`` resolves to 1, the
    batch is trivial, or the pool cannot be used.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), max(1, len(items)))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    except (OSError, ValueError, TypeError, AttributeError, ImportError) as exc:
        logger.warning("process pool unavailable (%s); mapping sequentially", exc)
        return [fn(item) for item in items]
