"""Campaign checkpointing, atomic artifact writes and retry policy.

Long campaigns die for boring reasons — OOM killers, pre-empted
machines, ctrl-C — and the expensive part is the completed jobs, not
the bookkeeping.  :class:`CampaignCheckpoint` persists every finished
:class:`~repro.parallel.jobs.SimJobResult` as it completes (atomic
tmp-then-rename writes, a JSON manifest of completed job ids), so a
re-run with ``resume=True`` replays the finished jobs from disk and
only executes the rest.  Because each job is bitwise deterministic
given its spec and seed, a resumed campaign's aggregates are identical
to an uninterrupted one at any worker count.

:class:`RetryPolicy` bounds how stubbornly the runner re-executes a
failing or hung job: same job spec, same seed (determinism is sacred —
a retry must reproduce, not re-roll), exponential backoff between
attempts, optional per-job wall-clock timeout.

:func:`atomic_write_text` / :func:`atomic_write_bytes` are the shared
write primitives; every benchmark/figure artifact writer uses them so a
crash mid-write can never leave a truncated file behind.
"""

from __future__ import annotations

import json
import logging
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.errors import SimulationError
from repro.parallel.jobs import SimJob, SimJobResult

logger = logging.getLogger("repro.parallel")

#: Manifest schema version; bump on incompatible layout changes.
#: (The ``retries`` key added alongside ``jobs`` is additive — old
#: readers ignore it — so it does not bump the version.)
MANIFEST_VERSION = 1

#: Failure classes the runner distinguishes when charging an attempt.
FAILURE_CLASSES = ("exception", "timeout", "pool-crash")

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp sibling + rename).

    The temporary file lives next to the target so the rename stays on
    one filesystem; a crash mid-write leaves the old content (or
    nothing) in place, never a truncated file.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    # The one raw write the codebase is allowed: it IS the primitive.
    tmp.write_bytes(data)  # repro-lint: disable=ART001 — the atomic primitive itself
    tmp.replace(path)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Text flavour of :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))


@dataclass(frozen=True)
class RetryPolicy:
    """How the campaign runner handles failing or hung jobs.

    Attributes:
        max_retries: Additional attempts after the first failure
            (0 = fail fast, the legacy behaviour).
        timeout: Per-job wall-clock budget in seconds (``None`` = no
            limit).  Enforced in pool mode, where an overdue worker can
            be replaced; sequential execution cannot pre-empt a running
            job and only honours retries.
        backoff_base: Sleep before the first retry, in seconds.
        backoff_factor: Multiplier applied per further retry.

    A retried job runs with its original spec and seed — bitwise
    determinism means a retry reproduces the same result, so retries
    only help against *transient* faults (killed workers, timeouts,
    resource exhaustion), never against deterministic bugs.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SimulationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise SimulationError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise SimulationError(
                "need backoff_base >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base}/{self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt + 1``."""
        return self.backoff_base * self.backoff_factor**attempt


def _slug(value: object) -> str:
    """Filesystem-safe rendering of a job-key component."""
    return _SLUG_RE.sub("-", str(value)).strip("-") or "x"


class CampaignCheckpoint:
    """Persistent record of a campaign's completed jobs.

    Layout: ``<directory>/manifest.json`` maps job ids to result
    filenames; each result is one pickle next to it.  Every write is
    atomic, and the manifest is only updated *after* its result file
    landed, so the manifest never references a missing or partial file.

    The manifest's ``retries`` section records, per retried job, how
    many extra attempts it needed, the failure *class* of each charged
    attempt (``exception``: the job raised; ``timeout``: it blew its
    wall-clock budget; ``pool-crash``: it sat in a worker pool that
    broke under it) and the final disposition (``completed`` /
    ``exhausted``) — so ``--resume`` reporting can say *why* a shard
    was retried instead of lumping OOM-killed workers together with
    deterministic bugs.

    A job's id is derived from its position, campaign key and seed, so
    a resumed campaign only reuses results whose spec actually matches
    (a changed spec under an unchanged id is caught by comparing the
    unpickled job against the requested one).
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: Union[str, Path], resume: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / self.MANIFEST
        self._jobs: Dict[str, str] = {}
        self._retries: Dict[str, Dict[str, object]] = {}
        if resume and self._manifest_path.exists():
            try:
                data = json.loads(self._manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                logger.warning(
                    "checkpoint manifest %s unreadable (%s); starting fresh",
                    self._manifest_path, exc,
                )
                data = {}
            if data.get("version") == MANIFEST_VERSION:
                jobs = data.get("jobs", {})
                if isinstance(jobs, dict):
                    self._jobs = {str(k): str(v) for k, v in jobs.items()}
                retries = data.get("retries", {})
                if isinstance(retries, dict):
                    self._retries = {
                        str(k): dict(v) for k, v in retries.items()
                        if isinstance(v, dict)
                    }
            elif data:
                logger.warning(
                    "checkpoint manifest %s has unsupported version %r; "
                    "starting fresh", self._manifest_path, data.get("version"),
                )
        if not self._jobs:
            self._write_manifest()

    # ------------------------------------------------------------------
    @staticmethod
    def job_id(index: int, job: SimJob) -> str:
        """Stable identifier of one campaign slot."""
        key_part = "_".join(_slug(part) for part in job.key) or "job"
        return f"{index:04d}_{key_part}_s{job.seed}"

    @property
    def completed_ids(self) -> Sequence[str]:
        """Ids of all jobs the checkpoint currently holds."""
        return sorted(self._jobs)

    def load_completed(self, jobs_list: Sequence[SimJob]) -> Dict[int, SimJobResult]:
        """Results already on disk, keyed by position in ``jobs_list``.

        A stored result is only reused when its unpickled job spec
        equals the requested one; mismatches (edited campaign) and
        unreadable files are skipped with a warning and re-run.
        """
        restored: Dict[int, SimJobResult] = {}
        for index, job in enumerate(jobs_list):
            filename = self._jobs.get(self.job_id(index, job))
            if filename is None:
                continue
            path = self.directory / filename
            try:
                stored = pickle.loads(path.read_bytes())
            except Exception as exc:  # corrupt/missing file: just re-run
                logger.warning(
                    "checkpointed result %s unreadable (%s); re-running job %s",
                    path, exc, job.key,
                )
                continue
            if not isinstance(stored, SimJobResult) or stored.job != job:
                logger.warning(
                    "checkpointed result %s does not match the requested spec; "
                    "re-running job %s", path, job.key,
                )
                continue
            restored[index] = stored
        return restored

    def record(self, index: int, job: SimJob, result: SimJobResult) -> None:
        """Persist one finished job (result file first, then manifest)."""
        job_id = self.job_id(index, job)
        filename = f"{job_id}.pkl"
        atomic_write_bytes(
            self.directory / filename,
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._jobs[job_id] = filename
        entry = self._retries.get(job_id)
        if entry is not None:
            entry["final"] = "completed"
        self._write_manifest()

    # ------------------------------------------------------------------
    # retry bookkeeping
    # ------------------------------------------------------------------
    def note_attempt(
        self, index: int, job: SimJob, failure_class: str, reason: str
    ) -> None:
        """Charge one failed attempt against a job, with its class."""
        if failure_class not in FAILURE_CLASSES:
            raise SimulationError(
                f"unknown failure class {failure_class!r}; "
                f"choose from {FAILURE_CLASSES}"
            )
        job_id = self.job_id(index, job)
        entry = self._retries.setdefault(
            job_id, {"attempts": 0, "classes": [], "final": None}
        )
        entry["attempts"] = int(entry.get("attempts", 0)) + 1
        classes = entry.setdefault("classes", [])
        assert isinstance(classes, list)
        classes.append(failure_class)
        entry["last_reason"] = reason
        self._write_manifest()

    def note_exhausted(self, index: int, job: SimJob) -> None:
        """Mark a job that spent its whole retry budget and failed."""
        job_id = self.job_id(index, job)
        entry = self._retries.setdefault(
            job_id, {"attempts": 0, "classes": [], "final": None}
        )
        entry["final"] = "exhausted"
        self._write_manifest()

    def retry_report(self) -> Dict[str, Dict[str, object]]:
        """Per-job retry history (job id -> attempts/classes/final)."""
        return {k: dict(v) for k, v in sorted(self._retries.items())}

    def _write_manifest(self) -> None:
        payload: Dict[str, object] = {
            "version": MANIFEST_VERSION,
            "jobs": dict(sorted(self._jobs.items())),
        }
        if self._retries:
            payload["retries"] = {
                k: v for k, v in sorted(self._retries.items())
            }
        atomic_write_text(
            self._manifest_path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
