"""Declarative, picklable simulation job specifications.

A :class:`SimJob` captures everything one simulation point needs —
topology recipe, offered load, QoS contract, run settings, workload
failure knobs and an explicit integer seed — as plain (frozen)
dataclasses, so a job can be pickled into a worker process and executed
there without touching any parent state.  The worker builds its own
network from the job's :class:`TopologySpec` (same spec + same seed =
the same network everywhere, so ``jobs=1`` and ``jobs=N`` agree
bitwise).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.faults.audit import AuditPolicy
from repro.faults.injectors import FaultConfig
from repro.qos.spec import ConnectionQoS
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig, SimulationResult
from repro.sim.workload import WorkloadConfig
from repro.topology.graph import Network
from repro.topology.random_flat import pure_random_with_edge_target
from repro.topology.regular import grid_network
from repro.topology.transit_stub import TransitStubParams, transit_stub_network
from repro.topology.waxman import paper_random_network

#: Topology families a job may request.
TOPOLOGY_KINDS = ("waxman", "transit-stub", "random-flat", "grid")


@dataclass(frozen=True)
class TopologySpec:
    """Recipe for building one network inside a worker process.

    Attributes:
        kind: ``waxman`` (the paper's Random network), ``transit-stub``
            (the paper's Tier network), ``random-flat`` (GT-ITM's
            non-geometric pure-random graph, ablation A7) or ``grid``
            (the deterministic 4-neighbour mesh used by twin tests and
            the admission service's replay campaigns).
        capacity: Per-link capacity (Kb/s).
        seed: Seed of the fresh generator the topology is built from;
            the build is deterministic given (kind, parameters, seed).
            Ignored by ``grid``, which is seed-free.
        nodes: Node count (waxman / random-flat) or row count (grid).
        edges: Target edge count (``None``: the generator's default
            density rule).
        tier: Transit-stub shape parameters (transit-stub only).
        cols: Column count (grid only; ``None`` = square, ``nodes``
            columns).
    """

    kind: str
    capacity: float
    seed: int
    nodes: int = 0
    edges: Optional[int] = None
    tier: Optional[TransitStubParams] = None
    cols: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise SimulationError(
                f"unknown topology kind {self.kind!r}; choose from {TOPOLOGY_KINDS}"
            )

    def build(self) -> Network:
        """Construct the network from a fresh, seed-determined generator."""
        if self.kind == "grid":
            return grid_network(self.nodes, self.cols or self.nodes, self.capacity)
        rng = np.random.default_rng(self.seed)
        if self.kind == "waxman":
            return paper_random_network(
                self.capacity, rng, n=self.nodes, target_edges=self.edges
            )
        if self.kind == "transit-stub":
            return transit_stub_network(
                self.tier or TransitStubParams(), self.capacity, rng
            )
        if self.edges is None:
            raise SimulationError("random-flat topologies need an explicit edge count")
        return pure_random_with_edge_target(self.nodes, self.edges, self.capacity, rng)


@dataclass(frozen=True)
class SimJob:
    """One self-contained simulation point of an experiment campaign.

    Attributes:
        key: Caller-chosen label identifying the point in the campaign
            (e.g. ``("figure2", 3000)``); echoed back on the result.
        topology: Network recipe, built inside the executing worker.
        offered: Initial DR-connection population parameter.
        qos: QoS contract template for every request.
        seed: Simulation seed (derive via
            :func:`repro.parallel.runner.derive_seeds` for campaigns).
        arrival_rate: λ of the churn workload (= μ, the paper's choice).
        warmup_events / measure_events / sample_interval: Measurement
            knobs, mirroring :class:`~repro.sim.simulator.SimulationConfig`.
        routing: ``dijkstra`` or ``flooding``.
        link_failure_rate / repair_rate: Per-link failure injection.
        policy_name: Adaptation policy short name (``None``: equal share).
        faults: Optional fault-injection setup (failure process, burst
            shape, activation faults); ``None`` keeps the paper's model.
        audit: Optional run-time invariant audit policy.
    """

    key: Tuple
    topology: TopologySpec
    offered: int
    qos: ConnectionQoS
    seed: int
    arrival_rate: float = 0.001
    warmup_events: int = 300
    measure_events: int = 1500
    sample_interval: int = 10
    routing: str = "dijkstra"
    link_failure_rate: float = 0.0
    repair_rate: float = 0.0
    policy_name: Optional[str] = None
    faults: Optional[FaultConfig] = None
    audit: Optional[AuditPolicy] = None

    @classmethod
    def from_settings(
        cls,
        key: Tuple,
        topology: TopologySpec,
        offered: int,
        qos: ConnectionQoS,
        settings,
        seed: int,
        link_failure_rate: float = 0.0,
        repair_rate: float = 0.0,
        policy_name: Optional[str] = None,
        faults: Optional[FaultConfig] = None,
        audit: Optional[AuditPolicy] = None,
    ) -> "SimJob":
        """Build a job from a :class:`~repro.analysis.experiments.RunSettings`.

        ``settings`` is duck-typed (arrival_rate / warmup_events /
        measure_events / sample_interval / routing) to avoid a circular
        import with the analysis layer.
        """
        return cls(
            key=key,
            topology=topology,
            offered=offered,
            qos=qos,
            seed=seed,
            arrival_rate=settings.arrival_rate,
            warmup_events=settings.warmup_events,
            measure_events=settings.measure_events,
            sample_interval=settings.sample_interval,
            routing=settings.routing,
            link_failure_rate=link_failure_rate,
            repair_rate=repair_rate,
            policy_name=policy_name,
            faults=faults,
            audit=audit,
        )

    def config(self) -> SimulationConfig:
        """The :class:`SimulationConfig` this job describes."""
        policy = None
        if self.policy_name is not None:
            from repro.elastic.policies import policy_by_name

            policy = policy_by_name(self.policy_name)
        return SimulationConfig(
            qos=self.qos,
            offered_connections=self.offered,
            workload=WorkloadConfig(
                arrival_rate=self.arrival_rate,
                termination_rate=self.arrival_rate,
                link_failure_rate=self.link_failure_rate,
                repair_rate=self.repair_rate,
            ),
            warmup_events=self.warmup_events,
            measure_events=self.measure_events,
            sample_interval=self.sample_interval,
            routing=self.routing,
            policy=policy,
            faults=self.faults,
            audit=self.audit,
        )


@dataclass
class SimJobResult:
    """Outcome of one executed :class:`SimJob`.

    Attributes:
        job: The spec that produced this result.
        result: Full simulation output.
        wall_time: Seconds the job took inside its worker.
        worker_pid: PID of the executing process (the parent's own PID
            under sequential execution).
    """

    job: SimJob
    result: SimulationResult
    wall_time: float
    worker_pid: int = 0

    @property
    def key(self) -> Tuple:
        """The job's campaign label."""
        return self.job.key


def execute_sim_job(job: SimJob) -> SimJobResult:
    """Run one job start-to-finish: build topology, simulate, time it.

    Module-level (and with picklable arguments) so it can execute in a
    worker process; also called directly by the sequential fallback.
    """
    start = time.perf_counter()
    net = job.topology.build()
    sim = ElasticQoSSimulator(net, job.config(), seed=job.seed)
    result = sim.run()
    return SimJobResult(
        job=job,
        result=result,
        wall_time=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )
