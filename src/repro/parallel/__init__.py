"""Parallel experiment execution: declarative jobs over a process pool.

Every exhibit and ablation of the reproduction is a campaign of
*independent* simulation points, so the experiment layer describes each
point as a picklable :class:`~repro.parallel.jobs.SimJob` and hands the
whole batch to :func:`~repro.parallel.runner.run_sim_jobs`, which fans
the jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``REPRO_JOBS`` / ``--jobs`` configurable) or runs them in-process when
``jobs=1``.  Results are returned in submission order, so parallel and
sequential execution are bitwise identical.

Determinism rests on two rules (DESIGN.md §12):

* every job carries its own integer seeds, derived up front from the
  experiment's root seed via :func:`derive_seeds`
  (``np.random.SeedSequence.spawn``), so no job reads another job's
  random stream;
* topology construction happens *inside* the job from the job's own
  topology seed, so a worker process never depends on parent state.
"""

from __future__ import annotations

from repro.parallel.checkpoint import (
    FAILURE_CLASSES,
    CampaignCheckpoint,
    RetryPolicy,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.parallel.jobs import SimJob, SimJobResult, TopologySpec, execute_sim_job
from repro.parallel.runner import (
    derive_seeds,
    parallel_map,
    resolve_jobs,
    run_sim_jobs,
)

__all__ = [
    "FAILURE_CLASSES",
    "CampaignCheckpoint",
    "RetryPolicy",
    "SimJob",
    "SimJobResult",
    "TopologySpec",
    "atomic_write_bytes",
    "atomic_write_text",
    "derive_seeds",
    "execute_sim_job",
    "parallel_map",
    "resolve_jobs",
    "run_sim_jobs",
]
