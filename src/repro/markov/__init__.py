"""Markov modelling: generic CTMC solvers + the paper's elastic-QoS model."""

from __future__ import annotations

from repro.markov.ctmc import (
    expected_value,
    is_irreducible,
    mean_holding_times,
    steady_state,
    transient,
    validate_generator,
)
from repro.markov.first_passage import (
    degradation_time,
    expected_time_above,
    mean_first_passage_times,
    reward_rate,
)
from repro.markov.model import ElasticQoSMarkovModel, ModelSolution
from repro.markov.sensitivity import (
    SCALAR_PARAMETERS,
    Sensitivity,
    local_sensitivities,
    sweep_parameter,
)
from repro.markov.parameters import (
    MarkovParameters,
    identity_matrix,
    uniform_downward_matrix,
    uniform_upward_matrix,
)

__all__ = [
    "expected_value",
    "is_irreducible",
    "mean_holding_times",
    "steady_state",
    "transient",
    "validate_generator",
    "degradation_time",
    "expected_time_above",
    "mean_first_passage_times",
    "reward_rate",
    "ElasticQoSMarkovModel",
    "ModelSolution",
    "SCALAR_PARAMETERS",
    "Sensitivity",
    "local_sensitivities",
    "sweep_parameter",
    "MarkovParameters",
    "identity_matrix",
    "uniform_downward_matrix",
    "uniform_upward_matrix",
]
