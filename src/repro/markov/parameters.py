"""Parameter container for the elastic-QoS Markov model.

Section 3.3 of the paper: the rates (λ, μ, γ) come from the application
and network providers, while the chaining probabilities (Pf, Ps) and the
conditional transition matrices (A, B, T) "are obtained through detailed
simulations".  :class:`MarkovParameters` carries all of them, validates
their stochastic structure, and records how many observations each
estimate is based on (so experiments can report confidence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import MarkovModelError

#: Validation tolerance for row-stochasticity.
_TOL: float = 1e-8


def _validate_stochastic(name: str, matrix: np.ndarray, n: int) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (n, n):
        raise MarkovModelError(f"{name} must be {n}x{n}, got {matrix.shape}")
    if (matrix < -_TOL).any():
        raise MarkovModelError(f"{name} has negative entries")
    row_sums = matrix.sum(axis=1)
    if np.abs(row_sums - 1.0).max() > 1e-6:
        raise MarkovModelError(
            f"{name} rows must sum to one (max deviation "
            f"{np.abs(row_sums - 1.0).max():.3e})"
        )
    return matrix


@dataclass
class MarkovParameters:
    """All inputs of the elastic-QoS Markov chain.

    Attributes:
        num_levels: Number of states N (bandwidth levels).
        pf: Probability that an existing channel shares at least one
            link with the event channel ("directly chained").
        ps: Probability that an existing channel is indirectly chained.
        a: Row-stochastic N x N matrix; ``a[i, j]`` is the probability a
            directly-chained channel moves from level i to level j upon
            an *arrival* (mass concentrates at or below the diagonal).
        b: Same for *indirectly*-chained channels upon an arrival
            (mass at or above the diagonal).
        t: Same for directly-chained channels upon a *termination*
            (mass at or above the diagonal).
        f: Optional dedicated matrix for *failure* events; the paper
            reuses ``a`` for failures (rate ``Pf A (λ+γ)``), so ``None``
            means "use ``a``" and a measured matrix is an extension.
        arrival_rate: λ.
        termination_rate: μ (the paper sets μ = λ for steady state).
        failure_rate: γ — the rate at which failures perturb the tagged
            channel's network (network-wide; see DESIGN.md §5).
        observations: Optional per-matrix observation counts
            (e.g. ``{"a": 12345, "b": 678, ...}``) for reporting.
    """

    num_levels: int
    pf: float
    ps: float
    a: np.ndarray
    b: np.ndarray
    t: np.ndarray
    arrival_rate: float
    termination_rate: float
    failure_rate: float = 0.0
    f: Optional[np.ndarray] = None
    observations: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.num_levels
        if n < 1:
            raise MarkovModelError(f"need at least one level, got {n}")
        for prob, name in ((self.pf, "pf"), (self.ps, "ps")):
            if not 0.0 <= prob <= 1.0:
                raise MarkovModelError(f"{name} must be a probability, got {prob}")
        if self.pf + self.ps > 1.0 + _TOL:
            raise MarkovModelError(
                f"pf + ps must not exceed 1, got {self.pf} + {self.ps}"
            )
        for rate, name in (
            (self.arrival_rate, "arrival_rate"),
            (self.termination_rate, "termination_rate"),
            (self.failure_rate, "failure_rate"),
        ):
            if rate < 0:
                raise MarkovModelError(f"{name} must be non-negative, got {rate}")
        self.a = _validate_stochastic("A", self.a, n)
        self.b = _validate_stochastic("B", self.b, n)
        self.t = _validate_stochastic("T", self.t, n)
        if self.f is not None:
            self.f = _validate_stochastic("F", self.f, n)

    @property
    def failure_matrix(self) -> np.ndarray:
        """The matrix governing failure transitions (``a`` per the paper)."""
        return self.a if self.f is None else self.f

    def with_failure_rate(self, gamma: float) -> "MarkovParameters":
        """Copy of these parameters with a different failure rate.

        Figure 4 sweeps γ while everything else is held fixed; this
        helper keeps that sweep cheap (no re-estimation needed since the
        chaining probabilities are topology/load properties).
        """
        return MarkovParameters(
            num_levels=self.num_levels,
            pf=self.pf,
            ps=self.ps,
            a=self.a.copy(),
            b=self.b.copy(),
            t=self.t.copy(),
            arrival_rate=self.arrival_rate,
            termination_rate=self.termination_rate,
            failure_rate=gamma,
            f=None if self.f is None else self.f.copy(),
            observations=dict(self.observations),
        )


def uniform_downward_matrix(n: int) -> np.ndarray:
    """Synthetic A: from level i, drop uniformly to any level j <= i.

    Used by tests and by the quickstart example to build a model without
    running a simulation first.
    """
    a = np.zeros((n, n))
    for i in range(n):
        a[i, : i + 1] = 1.0 / (i + 1)
    return a


def uniform_upward_matrix(n: int) -> np.ndarray:
    """Synthetic B/T: from level i, rise uniformly to any level j >= i."""
    b = np.zeros((n, n))
    for i in range(n):
        b[i, i:] = 1.0 / (n - i)
    return b


def identity_matrix(n: int) -> np.ndarray:
    """The no-change transition matrix."""
    return np.eye(n)
