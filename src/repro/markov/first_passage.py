"""First-passage and reward analysis on the elastic-QoS chain.

Extensions of the paper's steady-state analysis that fall out of the
same generator matrix and answer operator questions the steady state
cannot:

* :func:`mean_first_passage_times` — expected time for a channel to
  first reach a given level set (e.g. "how long until a maximal channel
  is squeezed back to its minimum?");
* :func:`expected_time_above` — stationary fraction of time a channel
  holds at least a given level ("what fraction of the session is at HD
  quality?");
* :func:`reward_rate` — steady-state reward per unit time for an
  arbitrary per-state reward vector (e.g. utility × extra increments,
  the client's revenue model of §1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MarkovModelError
from repro.markov.ctmc import steady_state, validate_generator


def mean_first_passage_times(q: np.ndarray, targets: Sequence[int]) -> np.ndarray:
    """Expected hitting time of the target set from every state.

    Solves the standard linear system: for non-target states ``i``,
    ``sum_j Q[i, j] * h[j] = -1`` with ``h`` fixed to zero on targets.

    Args:
        q: CTMC generator.
        targets: Non-empty set of absorbing-target state indices.

    Returns:
        Vector ``h`` with ``h[i]`` = expected time to first reach any
        target from state ``i`` (0 on targets).  States that cannot
        reach the target set yield ``inf``.
    """
    validate_generator(q)
    q = np.asarray(q, dtype=float)
    n = q.shape[0]
    target_set = set(int(t) for t in targets)
    if not target_set:
        raise MarkovModelError("need at least one target state")
    if any(not 0 <= t < n for t in target_set):
        raise MarkovModelError(f"target state out of range for a {n}-state chain")
    others = [i for i in range(n) if i not in target_set]
    h = np.zeros(n)
    if not others:
        return h
    sub = q[np.ix_(others, others)]
    rhs = -np.ones(len(others))
    try:
        sol = np.linalg.solve(sub, rhs)
    except np.linalg.LinAlgError:
        # Singular: some states cannot reach the target set at all.
        sol, *_ = np.linalg.lstsq(sub, rhs, rcond=None)
        reach = _can_reach(q, target_set)
        for idx, state in enumerate(others):
            if not reach[state]:
                sol[idx] = np.inf
    if (sol < -1e-9).any():
        raise MarkovModelError("negative first-passage time; generator is malformed")
    h[others] = sol
    return h


def _can_reach(q: np.ndarray, targets: set[int]) -> np.ndarray:
    """Boolean reachability of the target set (reverse BFS)."""
    n = q.shape[0]
    reach = np.zeros(n, dtype=bool)
    frontier = list(targets)
    for t in targets:
        reach[t] = True
    while frontier:
        node = frontier.pop()
        for i in range(n):
            if not reach[i] and q[i, node] > 1e-15:
                reach[i] = True
                frontier.append(i)
    return reach


def expected_time_above(q: np.ndarray, threshold_state: int) -> float:
    """Stationary probability of being at or above ``threshold_state``."""
    pi = steady_state(q)
    n = len(pi)
    if not 0 <= threshold_state < n:
        raise MarkovModelError(f"state {threshold_state} out of range for {n} states")
    return float(pi[threshold_state:].sum())


def reward_rate(q: np.ndarray, rewards: Sequence[float]) -> float:
    """Steady-state reward accumulated per unit time, ``sum pi_i r_i``."""
    pi = steady_state(q)
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != pi.shape:
        raise MarkovModelError(
            f"reward vector shape {rewards.shape} does not match chain size {pi.shape}"
        )
    return float(pi @ rewards)


def degradation_time(q: np.ndarray, from_state: int | None = None) -> float:
    """Expected time until a channel first drops to the minimum level.

    Args:
        q: Generator of the elastic-QoS chain (state 0 = minimum).
        from_state: Starting level; defaults to the top level.
    """
    n = q.shape[0]
    start = n - 1 if from_state is None else from_state
    if not 0 <= start < n:
        raise MarkovModelError(f"state {start} out of range for {n} states")
    return float(mean_first_passage_times(q, targets=[0])[start])
