"""The paper's elastic-QoS Markov model (Section 3.2).

A DR-connection's primary channel is modelled as an N-state CTMC whose
state ``S_i`` means "the channel currently reserves ``B_min + i Δ``".
From the viewpoint of one tagged channel, three event streams perturb
its level:

* **arrival** of a new DR-connection (rate λ): with probability ``Pf``
  the tagged channel is directly chained and transitions per ``A``
  (release-then-redistribute, net downward); with probability ``Ps`` it
  is indirectly chained and transitions per ``B`` (upward);
* **termination** of an existing connection (rate μ): with probability
  ``Pf`` it shares a link with the terminating channel and transitions
  per ``T`` (upward);
* **link failure** (rate γ): backup activation behaves like an arrival
  for resource purposes, so the paper applies ``A`` at rate
  ``Pf (λ + γ)`` downward (a dedicated measured failure matrix can be
  supplied as an extension).

The generator is therefore, for ``i != j``::

    Q[i, j] = λ (Pf A[i,j] + Ps B[i,j]) + μ Pf T[i,j] + γ Pf F[i,j]

which reduces exactly to the transition rates printed under the paper's
Figure 1 when ``A`` is lower-triangular and ``B``/``T`` are
upper-triangular.  Self-transitions contribute nothing to a CTMC and
are dropped; the diagonal is set to minus the row sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MarkovModelError
from repro.markov.ctmc import expected_value, steady_state, transient, validate_generator
from repro.markov.parameters import MarkovParameters
from repro.qos.spec import ElasticQoS


@dataclass
class ModelSolution:
    """Solved model: stationary distribution plus derived metrics."""

    pi: np.ndarray
    average_bandwidth: float
    average_level: float
    level_bandwidths: np.ndarray

    def occupancy(self, level: int) -> float:
        """Stationary probability of level ``level``."""
        return float(self.pi[level])


class ElasticQoSMarkovModel:
    """N-state CTMC for the average bandwidth of a primary channel."""

    def __init__(self, qos: ElasticQoS, params: MarkovParameters) -> None:
        if params.num_levels != qos.num_levels:
            raise MarkovModelError(
                f"parameter levels ({params.num_levels}) do not match the "
                f"QoS range ({qos.num_levels} levels)"
            )
        self.qos = qos
        self.params = params

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def generator(self) -> np.ndarray:
        """Build the CTMC generator matrix described in the module docs."""
        p = self.params
        n = p.num_levels
        lam, mu, gamma = p.arrival_rate, p.termination_rate, p.failure_rate
        q = (
            lam * (p.pf * p.a + p.ps * p.b)
            + mu * p.pf * p.t
            + gamma * p.pf * p.failure_matrix
        )
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        validate_generator(q)
        return q

    # ------------------------------------------------------------------
    # solution
    # ------------------------------------------------------------------
    def solve(self, method: str = "direct") -> ModelSolution:
        """Solve for the stationary distribution and derived metrics."""
        q = self.generator()
        pi = steady_state(q, method=method)
        bandwidths = np.array(
            [self.qos.level_bandwidth(i) for i in range(self.qos.num_levels)]
        )
        avg_bw = expected_value(pi, bandwidths)
        avg_level = expected_value(pi, np.arange(self.qos.num_levels, dtype=float))
        return ModelSolution(
            pi=pi,
            average_bandwidth=avg_bw,
            average_level=avg_level,
            level_bandwidths=bandwidths,
        )

    def average_bandwidth(self, method: str = "direct") -> float:
        """The paper's headline metric: E[B_min + level * Δ] at steady state."""
        return self.solve(method=method).average_bandwidth

    def transient_average_bandwidth(
        self, t: float, pi0: Optional[np.ndarray] = None
    ) -> float:
        """Average bandwidth at finite time ``t`` (extension).

        Args:
            t: Time horizon.
            pi0: Initial level distribution; defaults to "freshly
                admitted at the minimum", i.e. all mass on level 0.
        """
        q = self.generator()
        n = self.qos.num_levels
        if pi0 is None:
            pi0 = np.zeros(n)
            pi0[0] = 1.0
        pi_t = transient(q, pi0, t)
        bandwidths = np.array([self.qos.level_bandwidth(i) for i in range(n)])
        return expected_value(pi_t, bandwidths)

    def describe(self) -> str:
        """Multi-line summary used by examples and EXPERIMENTS.md tooling."""
        p = self.params
        sol = self.solve()
        lines = [
            f"Elastic-QoS Markov model: N={p.num_levels} states "
            f"({self.qos.b_min:g}..{self.qos.b_max:g} Kb/s, Δ={self.qos.increment:g})",
            f"  rates: λ={p.arrival_rate:g}  μ={p.termination_rate:g}  γ={p.failure_rate:g}",
            f"  chaining: Pf={p.pf:.4f}  Ps={p.ps:.4f}",
            f"  steady state π: {np.array2string(sol.pi, precision=4)}",
            f"  average bandwidth: {sol.average_bandwidth:.1f} Kb/s "
            f"(average level {sol.average_level:.2f})",
        ]
        return "\n".join(lines)
