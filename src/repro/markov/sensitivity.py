"""Sensitivity analysis of the elastic-QoS Markov model.

The paper's parameters (Pf, Ps, rates) are *measured* quantities with
sampling error; a model is only useful for planning if its output is
well-behaved under parameter perturbation.  This module provides:

* :func:`sweep_parameter` — average bandwidth as one scalar parameter is
  scaled over a range (used by Figure 4-style sweeps and the planning
  example);
* :func:`local_sensitivities` — normalised elasticities
  ``(dBW / BW) / (dθ / θ)`` of the average bandwidth with respect to
  each scalar parameter, by central finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import MarkovModelError
from repro.markov.model import ElasticQoSMarkovModel
from repro.markov.parameters import MarkovParameters
from repro.qos.spec import ElasticQoS

#: Scalar parameters that can be swept / differentiated.
SCALAR_PARAMETERS = ("pf", "ps", "arrival_rate", "termination_rate", "failure_rate")


def _with_scalar(params: MarkovParameters, name: str, value: float) -> MarkovParameters:
    """Copy of ``params`` with one scalar replaced (validated)."""
    if name not in SCALAR_PARAMETERS:
        raise MarkovModelError(
            f"unknown scalar parameter {name!r}; choose from {SCALAR_PARAMETERS}"
        )
    return MarkovParameters(
        num_levels=params.num_levels,
        pf=value if name == "pf" else params.pf,
        ps=value if name == "ps" else params.ps,
        a=params.a.copy(),
        b=params.b.copy(),
        t=params.t.copy(),
        arrival_rate=value if name == "arrival_rate" else params.arrival_rate,
        termination_rate=value if name == "termination_rate" else params.termination_rate,
        failure_rate=value if name == "failure_rate" else params.failure_rate,
        f=None if params.f is None else params.f.copy(),
        observations=dict(params.observations),
    )


def sweep_parameter(
    qos: ElasticQoS,
    params: MarkovParameters,
    name: str,
    values: Sequence[float],
) -> List[Tuple[float, float]]:
    """Average bandwidth for each value of one scalar parameter.

    Returns ``[(value, average_bandwidth), ...]`` in input order.
    Values that make the parameters invalid (e.g. ``pf + ps > 1``)
    raise :class:`MarkovModelError` rather than being skipped, so a
    caller cannot silently plot a truncated sweep.
    """
    out: List[Tuple[float, float]] = []
    for value in values:
        swept = _with_scalar(params, name, float(value))
        model = ElasticQoSMarkovModel(qos, swept)
        out.append((float(value), model.average_bandwidth()))
    return out


@dataclass
class Sensitivity:
    """Local sensitivity of the average bandwidth to one parameter."""

    parameter: str
    base_value: float
    elasticity: float
    #: Raw derivative d(avg bandwidth)/d(parameter) (Kb/s per unit).
    derivative: float


def local_sensitivities(
    qos: ElasticQoS,
    params: MarkovParameters,
    relative_step: float = 0.01,
) -> Dict[str, Sensitivity]:
    """Central-difference elasticities of the average bandwidth.

    Parameters whose base value is zero are differentiated one-sidedly
    with an absolute step (their elasticity is reported as the raw
    derivative times zero, i.e. 0 — but the derivative field still
    carries the slope).
    """
    if not 0 < relative_step < 0.5:
        raise MarkovModelError(f"relative step must be in (0, 0.5), got {relative_step}")
    base_bw = ElasticQoSMarkovModel(qos, params).average_bandwidth()
    out: Dict[str, Sensitivity] = {}
    for name in SCALAR_PARAMETERS:
        base = float(getattr(params, name))
        if base > 0:
            lo, hi = base * (1 - relative_step), base * (1 + relative_step)
            # Keep pf + ps feasible when perturbing either probability.
            if name in ("pf", "ps"):
                other = params.ps if name == "pf" else params.pf
                hi = min(hi, 1.0 - other)
                lo = min(lo, hi)
            bw_lo = ElasticQoSMarkovModel(qos, _with_scalar(params, name, lo)).average_bandwidth()
            bw_hi = ElasticQoSMarkovModel(qos, _with_scalar(params, name, hi)).average_bandwidth()
            denom = hi - lo
            derivative = (bw_hi - bw_lo) / denom if denom > 0 else 0.0
        else:
            step = relative_step  # absolute step from zero
            bw_hi = ElasticQoSMarkovModel(
                qos, _with_scalar(params, name, step)
            ).average_bandwidth()
            derivative = (bw_hi - base_bw) / step
        elasticity = derivative * base / base_bw if base_bw > 0 else 0.0
        out[name] = Sensitivity(
            parameter=name,
            base_value=base,
            elasticity=elasticity,
            derivative=derivative,
        )
    return out
