"""Generic finite continuous-time Markov chain (CTMC) machinery.

The paper solves its Markov model with the closed-source SHARPE package
[15]; this module is the substitution (DESIGN.md substitution 2).  It
offers three independent steady-state solvers that cross-validate each
other in the test suite:

* ``direct``  — replace one balance equation by the normalisation
  condition and solve the dense linear system;
* ``lstsq``   — least-squares on the full overdetermined system
  ``[Q^T; 1] pi = [0; 1]`` (robust to mild degeneracy);
* ``power``   — power iteration on the uniformised DTMC
  ``P = I + Q / Lambda`` (the classic numerically-gentle method).

Transient analysis (needed by the warm-up diagnostics and the transient
extension benchmark) uses uniformisation with a Poisson series.
"""

from __future__ import annotations


import numpy as np

from repro.errors import MarkovModelError

#: Tolerance for generator validation and solver agreement.
TOLERANCE: float = 1e-9


def validate_generator(q: np.ndarray) -> None:
    """Check that ``q`` is a valid CTMC generator matrix.

    A generator is square, has non-negative off-diagonal entries,
    non-positive diagonal entries, and zero row sums.

    Raises:
        MarkovModelError: when any condition fails.
    """
    q = np.asarray(q, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise MarkovModelError(f"generator must be square, got shape {q.shape}")
    n = q.shape[0]
    if n == 0:
        raise MarkovModelError("generator must have at least one state")
    off = q.copy()
    np.fill_diagonal(off, 0.0)
    if (off < -TOLERANCE).any():
        raise MarkovModelError("generator has negative off-diagonal entries")
    if (np.diag(q) > TOLERANCE).any():
        raise MarkovModelError("generator has positive diagonal entries")
    row_sums = q.sum(axis=1)
    if np.abs(row_sums).max() > 1e-6:
        raise MarkovModelError(
            f"generator rows must sum to zero (max |sum| = {np.abs(row_sums).max():.3e})"
        )


def is_irreducible(q: np.ndarray) -> bool:
    """Whether the chain's transition graph is strongly connected.

    Uses repeated squaring of the boolean reachability matrix — fine for
    the small chains this library builds (N <= a few hundred).
    """
    q = np.asarray(q, dtype=float)
    n = q.shape[0]
    if n == 1:
        return True
    reach = (q > TOLERANCE) | np.eye(n, dtype=bool)
    for _ in range(int(np.ceil(np.log2(n))) + 1):
        reach = reach @ reach
    return bool(reach.all())


def steady_state(q: np.ndarray, method: str = "direct") -> np.ndarray:
    """Stationary distribution ``pi`` with ``pi Q = 0`` and ``sum(pi) = 1``.

    Args:
        q: Valid generator matrix.
        method: ``direct``, ``lstsq`` or ``power`` (see module docs).

    Raises:
        MarkovModelError: for invalid generators, unknown methods, or
            when the chain has no unique stationary distribution.
    """
    validate_generator(q)
    q = np.asarray(q, dtype=float)
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    if method == "direct":
        pi = _steady_state_direct(q)
    elif method == "lstsq":
        pi = _steady_state_lstsq(q)
    elif method == "power":
        pi = _steady_state_power(q)
    else:
        raise MarkovModelError(f"unknown steady-state method {method!r}")
    if (pi < -1e-8).any():
        raise MarkovModelError(
            "stationary distribution has negative mass; the chain is "
            "probably reducible"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise MarkovModelError("stationary distribution vanished; chain is degenerate")
    pi = pi / total
    residual = np.abs(pi @ q).max()
    if residual > 1e-6:
        raise MarkovModelError(
            f"steady-state residual {residual:.3e} too large; chain may be reducible"
        )
    return pi


def _steady_state_direct(q: np.ndarray) -> np.ndarray:
    n = q.shape[0]
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        return np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise MarkovModelError(f"direct steady-state solve failed: {exc}") from exc


def _steady_state_lstsq(q: np.ndarray) -> np.ndarray:
    n = q.shape[0]
    a = np.vstack([q.T, np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    return pi


def _steady_state_power(q: np.ndarray, max_iterations: int = 200_000) -> np.ndarray:
    n = q.shape[0]
    rate = float(np.abs(np.diag(q)).max())
    if rate <= 0.0:
        # The zero generator: every distribution is stationary; return uniform.
        return np.full(n, 1.0 / n)
    lam = rate * 1.05
    p = np.eye(n) + q / lam
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        nxt = pi @ p
        if np.abs(nxt - pi).max() < 1e-13:
            return nxt
        pi = nxt
    raise MarkovModelError("power iteration did not converge")


def transient(
    q: np.ndarray,
    pi0: np.ndarray,
    t: float,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Distribution at time ``t`` starting from ``pi0`` (uniformisation).

    Computes ``pi0 expm(Q t)`` via the Poisson-weighted series over the
    uniformised DTMC, truncating once the remaining Poisson mass falls
    below ``tolerance``.
    """
    validate_generator(q)
    pi0 = np.asarray(pi0, dtype=float)
    if pi0.shape != (q.shape[0],):
        raise MarkovModelError(
            f"initial distribution shape {pi0.shape} does not match chain size {q.shape[0]}"
        )
    if abs(pi0.sum() - 1.0) > 1e-9 or (pi0 < -1e-12).any():
        raise MarkovModelError("initial distribution must be a probability vector")
    if t < 0:
        raise MarkovModelError(f"time must be non-negative, got {t}")
    if t == 0:
        return pi0.copy()
    rate = float(np.abs(np.diag(q)).max())
    if rate == 0.0:
        return pi0.copy()
    lam = rate * 1.05
    if lam * t > 500.0:
        # exp(-lam t) underflows past ~700; split the horizon so each
        # segment's Poisson weights stay representable.  Depth is
        # logarithmic in lam * t.
        half = transient(q, pi0, t / 2.0, tolerance)
        return transient(q, half, t / 2.0, tolerance)
    p = np.eye(q.shape[0]) + q / lam
    mean = lam * t
    weight = np.exp(-mean)
    term = pi0.copy()
    out = weight * term
    k = 0
    accumulated = weight
    # Guard: for large mean the first weight underflows; iterate until
    # the Poisson mass accounted for is ~1.
    max_terms = int(mean + 20 * np.sqrt(mean) + 50)
    while accumulated < 1.0 - tolerance and k < max_terms:
        k += 1
        term = term @ p
        weight = weight * mean / k
        out += weight * term
        accumulated += weight
    return out / out.sum()


def mean_holding_times(q: np.ndarray) -> np.ndarray:
    """Expected sojourn time in each state, ``1 / -Q_ii`` (inf for absorbing)."""
    validate_generator(q)
    diag = -np.diag(np.asarray(q, dtype=float))
    with np.errstate(divide="ignore"):
        return np.where(diag > 0, 1.0 / np.where(diag > 0, diag, 1.0), np.inf)


def expected_value(pi: np.ndarray, values: np.ndarray) -> float:
    """Steady-state expectation of a per-state quantity."""
    pi = np.asarray(pi, dtype=float)
    values = np.asarray(values, dtype=float)
    if pi.shape != values.shape:
        raise MarkovModelError(
            f"distribution shape {pi.shape} does not match values shape {values.shape}"
        )
    return float(pi @ values)
