"""Intraprocedural must-facts dataflow over structured Python ASTs.

The DUR rules need "is this site dominated by a durability action on
*every* path?" — classic forward must-analysis.  Python has no goto, so
instead of building a CFG we evaluate statement lists recursively:

* the state is a set of established *facts* (opaque strings);
* a ``gen`` callback contributes facts at each ``ast.Call``;
* a ``cond`` callback contributes branch-local facts when a test is
  known true/false on that branch (e.g. entering the ``else`` of
  ``if self.wal is not None:`` establishes ``wal-absent``);
* ``if``/``try``/``match`` join by *intersection* over the branches
  that fall through (a branch ending in ``return``/``raise``/``break``/
  ``continue`` does not constrain the join);
* loop bodies see the facts accumulated *within the current iteration*
  but contribute nothing to the post-loop state (the body may run zero
  times); cross-iteration domination is deliberately not modelled —
  documented under-approximation, never a false negative for "must";
* nested ``def``/``lambda``/class bodies are opaque: their statements
  neither consume nor produce facts at the definition site.

Clients ask for the fact set holding *just before* specific AST nodes
(the "sites"); :func:`analyze_function` returns ``{id(node): facts}``.
Keying on ``id(node)`` is sound here precisely because the trees live
exactly as long as the analysis: results are consumed in-process against
the same objects and never persisted or compared across runs.
"""

# repro-lint: disable-file=DET002 — site keys are id(ast-node) by design; same-process, same-tree, never persisted

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set

__all__ = ["MustFacts", "analyze_function"]

#: Sentinel state for "this point is not reached by normal fall-through".
_TERMINATED = None

GenFn = Callable[[ast.Call], Set[str]]
CondFn = Callable[[ast.expr, bool], Set[str]]

_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _walk_shallow(node: ast.AST):
    """Walk a subtree, skipping nested function/class/lambda bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _OPAQUE):
                continue
            stack.append(child)


class MustFacts:
    """One analysis configuration: how facts are generated."""

    def __init__(
        self,
        gen: Optional[GenFn] = None,
        cond: Optional[CondFn] = None,
    ) -> None:
        self._gen = gen
        self._cond = cond
        self._sites: Set[int] = set()
        self._results: Dict[int, FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    def analyze(
        self,
        body: Sequence[ast.stmt],
        sites: Sequence[ast.AST],
        entry: Optional[Set[str]] = None,
    ) -> Dict[int, FrozenSet[str]]:
        """Facts holding immediately before each requested site node.

        Sites that are never reached in the structured walk (dead code,
        inside a nested def) are absent from the result; treat absence
        as "no facts proven".
        """
        self._sites = {id(site) for site in sites}
        self._results = {}
        self._eval_body(list(body), set(entry or ()))
        return dict(self._results)

    # ------------------------------------------------------------------
    def _record(self, node: ast.AST, state: Set[str]) -> None:
        if id(node) in self._sites and id(node) not in self._results:
            self._results[id(node)] = frozenset(state)

    def _visit_exprs(self, node: ast.AST, state: Set[str]) -> None:
        """Record sites and apply gen facts within one simple statement
        or one compound-statement header expression."""
        for sub in _walk_shallow(node):
            self._record(sub, state)
        # Two passes: every site in the statement sees the *pre* state
        # first, then calls contribute their facts for later statements.
        for sub in _walk_shallow(node):
            if isinstance(sub, ast.Call) and self._gen is not None:
                state |= self._gen(sub)

    def _branch_facts(self, test: ast.expr, value: bool) -> Set[str]:
        if self._cond is None:
            return set()
        facts = set(self._cond(test, value))
        # `not X` flips; `X and Y` true means both true; `X or Y` false
        # means both false.  Enough boolean structure for guard idioms.
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            facts |= self._branch_facts(test.operand, not value)
        elif isinstance(test, ast.BoolOp):
            if (isinstance(test.op, ast.And) and value) or (
                isinstance(test.op, ast.Or) and not value
            ):
                for operand in test.values:
                    facts |= self._branch_facts(operand, value)
        return facts

    # ------------------------------------------------------------------
    def _eval_body(
        self, body: Sequence[ast.stmt], state: Optional[Set[str]]
    ) -> Optional[Set[str]]:
        for stmt in body:
            if state is _TERMINATED:
                break
            state = self._eval_stmt(stmt, state)
        return state

    def _join(self, states: List[Optional[Set[str]]]) -> Optional[Set[str]]:
        live = [s for s in states if s is not _TERMINATED]
        if not live:
            return _TERMINATED
        result = set(live[0])
        for other in live[1:]:
            result &= other
        return result

    def _eval_stmt(
        self, stmt: ast.stmt, state: Set[str]
    ) -> Optional[Set[str]]:
        self._record(stmt, state)
        if isinstance(stmt, ast.If):
            self._visit_exprs(stmt.test, state)
            then_state = self._eval_body(
                stmt.body, state | self._branch_facts(stmt.test, True)
            )
            else_state = self._eval_body(
                stmt.orelse, state | self._branch_facts(stmt.test, False)
            )
            return self._join([then_state, else_state])
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_exprs(stmt.iter, state)
            self._visit_exprs(stmt.target, state)
            self._eval_body(stmt.body, set(state))  # in-iteration view only
            return self._eval_body(stmt.orelse, set(state))
        if isinstance(stmt, ast.While):
            self._visit_exprs(stmt.test, state)
            body_facts = state | self._branch_facts(stmt.test, True)
            self._eval_body(stmt.body, body_facts)
            return self._eval_body(
                stmt.orelse, state | self._branch_facts(stmt.test, False)
            )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_exprs(item.context_expr, state)
                if item.optional_vars is not None:
                    self._visit_exprs(item.optional_vars, state)
            return self._eval_body(stmt.body, state)
        if isinstance(stmt, ast.Try):
            body_state = self._eval_body(stmt.body, set(state))
            ends: List[Optional[Set[str]]] = []
            if body_state is not _TERMINATED:
                ends.append(self._eval_body(stmt.orelse, body_state))
            else:
                ends.append(_TERMINATED)
            for handler in stmt.handlers:
                # A handler can be entered after any prefix of the body,
                # so only the entry state is trustworthy inside it.
                ends.append(self._eval_body(handler.body, set(state)))
            joined = self._join(ends)
            if stmt.finalbody:
                # finally runs on every path; its facts stack onto the
                # join when control continues past the statement.
                final_state = self._eval_body(
                    stmt.finalbody, set(state)
                )
                if joined is _TERMINATED or final_state is _TERMINATED:
                    return _TERMINATED
                return joined | (final_state - state)
            return joined
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            self._visit_exprs(stmt.subject, state)
            ends = [self._eval_body(case.body, set(state)) for case in stmt.cases]
            # No case may match: fall-through with the entry state.
            ends.append(set(state))
            return self._join(ends)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self._visit_exprs(stmt.value, state)
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._visit_exprs(stmt.exc, state)
            return _TERMINATED
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return _TERMINATED
        if isinstance(stmt, _OPAQUE):
            return state
        self._visit_exprs(stmt, state)
        return state


def analyze_function(
    func_node: ast.AST,
    sites: Sequence[ast.AST],
    gen: Optional[GenFn] = None,
    cond: Optional[CondFn] = None,
    entry: Optional[Set[str]] = None,
) -> Dict[int, FrozenSet[str]]:
    """Run a must-facts analysis over one function body."""
    body = getattr(func_node, "body", [])
    return MustFacts(gen=gen, cond=cond).analyze(body, sites, entry=entry)
