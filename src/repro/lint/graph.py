"""Conservative call graph over the project index.

Edges are derived from ``ast.Call`` nodes inside each known function.
A call produces an edge only when the callee can be *proven* to be a
specific project function:

* direct names resolved through the module's import/def tables
  (``log_events`` / ``wal.log_events`` / ``repro.service.wal.fn``);
* ``self.method()`` resolved through the enclosing class and its known
  bases (nearest-first walk, see :meth:`ProjectIndex.iter_mro`);
* ``obj.method()`` where ``obj``'s class is inferred from annotations,
  constructor assignments, or typed instance attributes;
* ``ClassName(...)`` construction, which edges to the class's
  ``__init__`` when one is defined in-project;
* as a last resort, a bare-attribute call whose receiver type is
  unknown resolves through :meth:`ProjectIndex.unique_by_name` — only
  when exactly one project function carries that name, so a wrong edge
  would require two unrelated things to share an unusual name.

Unresolvable calls produce **no edge**: the graph under-approximates
the dynamic call relation, which is the documented trade-off for rules
that must stay quiet rather than cry wolf (DESIGN.md §16).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from .project import FunctionInfo, ProjectIndex, _dotted_name

__all__ = ["CallSite", "CallGraph", "async_roots", "build_call_graph", "resolve_call"]


@dataclass
class CallSite:
    """One resolved call edge, anchored at its source ``ast.Call``."""

    caller: str
    callee: str
    node: ast.Call

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def col(self) -> int:
        return getattr(self.node, "col_offset", 0)


@dataclass
class CallGraph:
    """Directed call graph with forward and reverse adjacency."""

    index: ProjectIndex
    out_edges: Dict[str, List[CallSite]] = field(default_factory=dict)
    in_edges: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: qualname -> Call nodes that could not be resolved (diagnostics).
    unresolved: Dict[str, int] = field(default_factory=dict)

    def add_edge(self, site: CallSite) -> None:
        self.out_edges.setdefault(site.caller, []).append(site)
        self.in_edges.setdefault(site.callee, []).append(site)

    def callees(self, qual: str) -> List[CallSite]:
        return self.out_edges.get(qual, [])

    def callers(self, qual: str) -> List[CallSite]:
        return self.in_edges.get(qual, [])

    def reachable_from(
        self,
        roots: Iterable[str],
        skip: Optional[Callable[[FunctionInfo], bool]] = None,
    ) -> Dict[str, str]:
        """BFS closure over out-edges.

        Returns ``{reached qualname: root qualname}`` (first root to
        reach it, BFS order, deterministic).  ``skip`` marks *barrier*
        functions: they are reported as reached but their own callees
        are not followed — used for sanctioned blocking layers whose
        internals are exempt by contract.
        """
        origin: Dict[str, str] = {}
        queue: List[str] = []
        for root in roots:
            if root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            info = self.index.functions.get(current)
            if info is not None and skip is not None and skip(info):
                continue
            for site in self.callees(current):
                if site.callee not in origin:
                    origin[site.callee] = origin[current]
                    queue.append(site.callee)
        return origin


def resolve_call(
    index: ProjectIndex,
    func: FunctionInfo,
    call: ast.Call,
    local_types: Dict[str, str],
) -> Optional[str]:
    """Qualified name of the project function this call provably hits,
    or None (no edge) when resolution fails."""
    target = call.func
    dotted = _dotted_name(target)
    if dotted is not None:
        resolved = index.resolve(func.module, dotted)
        if resolved is not None:
            if resolved in index.functions:
                return resolved
            if resolved in index.classes:
                init = index.resolve_method(resolved, "__init__")
                return init  # None when the class has no in-project __init__
    if isinstance(target, ast.Attribute):
        receiver_cls = index.type_of_expr(func, target.value, local_types)
        if receiver_cls is not None:
            return index.resolve_method(receiver_cls, target.attr)
        # Receiver type unknown: unique-name fallback only.
        return index.unique_by_name(target.attr)
    return None


def build_call_graph(index: ProjectIndex) -> CallGraph:
    """Resolve every call in every known function into graph edges."""
    graph = CallGraph(index=index)
    for qual, func in index.functions.items():
        local_types = index.infer_local_types(func)
        for node in ast.walk(func.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func.node:
                # Nested defs are indexed separately only at module/class
                # level; calls inside them still execute in this frame's
                # dynamic extent often enough (closures passed to the
                # loop) that folding them into the enclosing function is
                # the conservative choice for reachability rules.
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = resolve_call(index, func, node, local_types)
            if callee is None:
                graph.unresolved[qual] = graph.unresolved.get(qual, 0) + 1
                continue
            graph.add_edge(CallSite(caller=qual, callee=callee, node=node))
    return graph


def async_roots(index: ProjectIndex, module_prefix: str = "") -> Set[str]:
    """All ``async def`` functions, optionally filtered by module prefix."""
    return {
        qual
        for qual, func in index.functions.items()
        if func.is_async and func.module.startswith(module_prefix)
    }
