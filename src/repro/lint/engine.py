"""Lint engine: file discovery, suppression comments, orchestration.

Suppression contract (mirrors the dynamic suite's "explain every
exemption" policy):

* ``# repro-lint: disable=RULE1,RULE2`` on the offending line silences
  exactly those rules on exactly that line (``all`` silences every
  rule).  Anything after the rule list (``— reason``) is free text; by
  convention every suppression carries one.
* ``# repro-lint: disable-file=RULE1,...`` anywhere in a file (top of
  the module by convention) silences the rules for the whole file —
  reserved for modules whose *job* is the exempted behaviour (e.g. the
  atomic-write primitive performing the underlying raw write).

Suppressions are parsed from real tokenizer comments, never from string
literals, so documentation quoting a directive does not disable it.

Two passes share one parse.  Every file is read, tokenized (for
suppressions) and parsed exactly once per run into a
:class:`LintedFile`; the per-file rules walk that AST, and — under
``--project`` — the same trees feed the whole-program index
(:mod:`repro.lint.project`), call graph and ASYNC/DUR/SOA rules.
``jobs > 1`` fans the per-file stage out over a process pool (workers
return the parsed trees, which pickle fine); the project pass then runs
in the parent over the combined tree set, so parallelism never changes
the analysis result, only the wall time.
"""

from __future__ import annotations

import ast
import io
import time
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.checkers import check_tree
from repro.lint.findings import Finding
from repro.lint.rules import RULES, RULES_BY_ID

#: Pseudo-rule id attached to unparseable files; cannot be suppressed.
PARSE_ERROR_RULE = "LNT000"

_DIRECTIVE = "repro-lint:"

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}
)


def _now() -> float:
    """Monotonic stamp for ``--stats`` phase timing (tooling-plane only,
    never part of any analysis result)."""
    return time.perf_counter()  # repro-lint: disable=DET003 — lint's own --stats timing, not simulator state


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted.

    Deterministic order (the lint pass holds itself to its own rules):
    explicit arguments in argument order, directory walks sorted.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


class _Suppressions:
    """Per-line and per-file suppression directives of one source file."""

    def __init__(self, line_rules: Dict[int, Set[str]], file_rules: Set[str]) -> None:
        self.line_rules = line_rules
        self.file_rules = file_rules

    def allows(self, finding: Finding) -> bool:
        if finding.rule == PARSE_ERROR_RULE:
            return True
        if _covers(self.file_rules, finding.rule):
            return False
        return not _covers(self.line_rules.get(finding.line, set()), finding.rule)


def _covers(rules: Set[str], rule_id: str) -> bool:
    return "all" in rules or rule_id in rules


def _parse_directive(comment: str) -> Optional[Tuple[str, Set[str]]]:
    """Split one comment into (scope, rule ids) if it is a directive.

    Unknown rule ids inside a directive are kept verbatim — a typo'd
    suppression then fails to match, surfacing the finding instead of
    silently widening the exemption.
    """
    text = comment.lstrip("#").strip()
    if not text.startswith(_DIRECTIVE):
        return None
    text = text[len(_DIRECTIVE):].strip()
    for scope in ("disable-file", "disable"):
        if text.startswith(scope):
            remainder = text[len(scope):].lstrip()
            if not remainder.startswith("="):
                return None
            value = remainder[1:]
            # Free-text reason after the rule list: cut at first space run
            # that follows the comma-separated ids.
            value = value.split("—")[0].split(" -- ")[0]
            ids = {token.strip() for token in value.split(",")}
            ids = {t.split()[0] if t else t for t in ids if t}
            normalised = {t if t == "all" else t.upper() for t in ids if t}
            if normalised:
                return scope, normalised
            return None
    return None


def collect_suppressions(source: str) -> _Suppressions:
    """Extract suppression directives from real comment tokens."""
    line_rules: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            parsed = _parse_directive(token.string)
            if parsed is None:
                continue
            scope, ids = parsed
            if scope == "disable-file":
                file_rules.update(ids)
            else:
                line_rules.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # the parse-error finding covers the broken file
    return _Suppressions(line_rules, file_rules)


# ----------------------------------------------------------------------
# parse-once artifacts
# ----------------------------------------------------------------------
@dataclass
class LintedFile:
    """One file, read+tokenized+parsed exactly once per run.

    Both passes (per-file rules, whole-program rules) consume this; the
    tree is ``None`` only when the file does not parse, in which case
    ``parse_finding`` carries the LNT000 finding.
    """

    path: str
    tree: Optional[ast.Module]
    suppressions: _Suppressions
    parse_finding: Optional[Finding] = None


def parse_file_source(source: str, path: str) -> LintedFile:
    """Build the shared parse artifact for one in-memory module."""
    suppressions = collect_suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return LintedFile(
            path=path,
            tree=None,
            suppressions=suppressions,
            parse_finding=Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            ),
        )
    return LintedFile(path=path, tree=tree, suppressions=suppressions)


def load_file(path: Path) -> LintedFile:
    """Read and parse one on-disk file into the shared artifact."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return LintedFile(
            path=str(path),
            tree=None,
            suppressions=_Suppressions({}, set()),
            parse_finding=Finding(
                path=str(path),
                line=1,
                col=0,
                rule=PARSE_ERROR_RULE,
                message=f"file cannot be read: {exc}",
                hint="",
            ),
        )
    return parse_file_source(source, str(path))


def _file_pass(
    linted: LintedFile, select: Optional[Set[str]]
) -> List[Finding]:
    """Per-file rules over one already-parsed file, suppression-filtered."""
    if linted.tree is None:
        return [linted.parse_finding] if linted.parse_finding else []
    posix = linted.path.replace("\\", "/")
    enabled = {
        rule.id
        for rule in RULES
        if not rule.project
        and (select is None or rule.id in select)
        and rule.applies_to(posix)
    }
    findings = check_tree(linted.tree, linted.path, enabled)
    kept = [f for f in findings if linted.suppressions.allows(f)]
    kept.sort()
    return kept


def _lint_worker(
    args: Tuple[str, Optional[Tuple[str, ...]], bool]
) -> Tuple[str, Optional[ast.Module], _Suppressions, List[Finding]]:
    """Process-pool unit: load, file-pass, and (if the project pass will
    run) ship the parsed tree back to the parent."""
    path, select, need_tree = args
    linted = load_file(Path(path))
    select_set = None if select is None else set(select)
    findings = _file_pass(linted, select_set)
    return (path, linted.tree if need_tree else None, linted.suppressions, findings)


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Findings plus the ``--stats`` accounting of one run."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    #: phase -> seconds (discovery / file-pass / project-index /
    #: call-graph / project:<RULE>).
    timings: Dict[str, float] = field(default_factory=dict)
    #: rule id -> finding count (post-suppression).
    rule_counts: Dict[str, int] = field(default_factory=dict)

    def count(self, findings: Iterable[Finding]) -> None:
        for finding in findings:
            self.rule_counts[finding.rule] = self.rule_counts.get(finding.rule, 0) + 1


def _project_pass(
    files: List[Tuple[str, ast.Module]],
    suppressions: Dict[str, _Suppressions],
    select: Optional[Set[str]],
    report: Optional[LintReport] = None,
) -> List[Finding]:
    """Whole-program rules over the already-parsed tree set."""
    # Imported lazily so plain per-file runs never pay for the project
    # machinery (and a defect there cannot break the basic lint).
    from repro.lint.graph import build_call_graph
    from repro.lint.project import build_project_index
    from repro.lint.project_rules import PROJECT_CHECKS

    t0 = _now()
    index = build_project_index(files)
    t1 = _now()
    graph = build_call_graph(index)
    t2 = _now()
    if report is not None:
        report.timings["project-index"] = t1 - t0
        report.timings["call-graph"] = t2 - t1
    findings: List[Finding] = []
    for rule_id, check in PROJECT_CHECKS:
        if select is not None and rule_id not in select:
            continue
        rule = RULES_BY_ID[rule_id]
        t_rule = _now()
        for finding in check(index, graph):
            if not rule.applies_to(finding.path):
                continue
            supp = suppressions.get(finding.path)
            if supp is not None and not supp.allows(finding):
                continue
            findings.append(finding)
        if report is not None:
            report.timings[f"project:{rule_id}"] = _now() - t_rule
    findings.sort()
    return findings


def run_lint(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    project: bool = False,
    jobs: int = 1,
) -> LintReport:
    """Full engine run: discovery, file pass (optionally parallel), and
    — with ``project=True`` — the whole-program pass."""
    report = LintReport()
    select_set = None if select is None else set(select)
    t0 = _now()
    files = [str(p) for p in iter_python_files(paths)]
    report.files = len(files)
    report.timings["discovery"] = _now() - t0

    t1 = _now()
    trees: List[Tuple[str, ast.Module]] = []
    supp_map: Dict[str, _Suppressions] = {}
    findings: List[Finding] = []
    select_tuple = None if select_set is None else tuple(sorted(select_set))
    work = [(path, select_tuple, project) for path in files]
    if jobs > 1 and len(files) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunk = max(1, len(work) // (jobs * 4))
            results = list(pool.map(_lint_worker, work, chunksize=chunk))
    else:
        results = [_lint_worker(item) for item in work]
    for path, tree, suppressions, file_findings in results:
        findings.extend(file_findings)
        supp_map[path] = suppressions
        if tree is not None:
            trees.append((path, tree))
    report.timings["file-pass"] = _now() - t1

    if project:
        findings.extend(_project_pass(trees, supp_map, select_set, report))
    findings.sort()
    report.findings = findings
    report.count(findings)
    report.timings["total"] = _now() - t0
    return report


# ----------------------------------------------------------------------
# stable public helpers (API kept from the per-file-only engine)
# ----------------------------------------------------------------------
def lint_source(
    source: str, path: str, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one in-memory module; ``path`` decides rule applicability."""
    linted = parse_file_source(source, path)
    return _file_pass(linted, None if select is None else set(select))


def lint_file(path: Path, select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one on-disk file."""
    return _file_pass(load_file(path), None if select is None else set(select))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    project: bool = False,
    jobs: int = 1,
) -> List[Finding]:
    """Lint every python file under ``paths`` and return sorted findings."""
    return run_lint(paths, select=select, project=project, jobs=jobs).findings


def lint_project_sources(
    sources: Dict[str, str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Project pass over in-memory modules (fixture/test entry point).

    Runs *only* the whole-program rules — per-file families have their
    own fixture helper (:func:`lint_source`) — but applies the same
    applicability/suppression filtering the CLI run would.
    """
    trees: List[Tuple[str, ast.Module]] = []
    supp_map: Dict[str, _Suppressions] = {}
    findings: List[Finding] = []
    for path, source in sources.items():
        linted = parse_file_source(source, path)
        supp_map[path] = linted.suppressions
        if linted.tree is None:
            if linted.parse_finding is not None:
                findings.append(linted.parse_finding)
            continue
        trees.append((path, linted.tree))
    select_set = None if select is None else set(select)
    findings.extend(_project_pass(trees, supp_map, select_set))
    findings.sort()
    return findings


def unknown_suppressed_rules(source: str) -> Set[str]:
    """Rule ids referenced by directives that do not exist (QA helper)."""
    suppressions = collect_suppressions(source)
    referenced: Set[str] = set(suppressions.file_rules)
    for rules in suppressions.line_rules.values():
        referenced.update(rules)
    referenced.discard("all")
    return {rule for rule in referenced if rule not in RULES_BY_ID}
