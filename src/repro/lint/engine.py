"""Lint engine: file discovery, suppression comments, orchestration.

Suppression contract (mirrors the dynamic suite's "explain every
exemption" policy):

* ``# repro-lint: disable=RULE1,RULE2`` on the offending line silences
  exactly those rules on exactly that line (``all`` silences every
  rule).  Anything after the rule list (``— reason``) is free text; by
  convention every suppression carries one.
* ``# repro-lint: disable-file=RULE1,...`` anywhere in a file (top of
  the module by convention) silences the rules for the whole file —
  reserved for modules whose *job* is the exempted behaviour (e.g. the
  atomic-write primitive performing the underlying raw write).

Suppressions are parsed from real tokenizer comments, never from string
literals, so documentation quoting a directive does not disable it.
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.checkers import check_tree
from repro.lint.findings import Finding
from repro.lint.rules import RULES, RULES_BY_ID

#: Pseudo-rule id attached to unparseable files; cannot be suppressed.
PARSE_ERROR_RULE = "LNT000"

_DIRECTIVE = "repro-lint:"

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted.

    Deterministic order (the lint pass holds itself to its own rules):
    explicit arguments in argument order, directory walks sorted.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


class _Suppressions:
    """Per-line and per-file suppression directives of one source file."""

    def __init__(self, line_rules: Dict[int, Set[str]], file_rules: Set[str]) -> None:
        self.line_rules = line_rules
        self.file_rules = file_rules

    def allows(self, finding: Finding) -> bool:
        if finding.rule == PARSE_ERROR_RULE:
            return True
        if _covers(self.file_rules, finding.rule):
            return False
        return not _covers(self.line_rules.get(finding.line, set()), finding.rule)


def _covers(rules: Set[str], rule_id: str) -> bool:
    return "all" in rules or rule_id in rules


def _parse_directive(comment: str) -> Optional[Tuple[str, Set[str]]]:
    """Split one comment into (scope, rule ids) if it is a directive.

    Unknown rule ids inside a directive are kept verbatim — a typo'd
    suppression then fails to match, surfacing the finding instead of
    silently widening the exemption.
    """
    text = comment.lstrip("#").strip()
    if not text.startswith(_DIRECTIVE):
        return None
    text = text[len(_DIRECTIVE):].strip()
    for scope in ("disable-file", "disable"):
        if text.startswith(scope):
            remainder = text[len(scope):].lstrip()
            if not remainder.startswith("="):
                return None
            value = remainder[1:]
            # Free-text reason after the rule list: cut at first space run
            # that follows the comma-separated ids.
            value = value.split("—")[0].split(" -- ")[0]
            ids = {token.strip() for token in value.split(",")}
            ids = {t.split()[0] if t else t for t in ids if t}
            normalised = {t if t == "all" else t.upper() for t in ids if t}
            if normalised:
                return scope, normalised
            return None
    return None


def collect_suppressions(source: str) -> _Suppressions:
    """Extract suppression directives from real comment tokens."""
    line_rules: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            parsed = _parse_directive(token.string)
            if parsed is None:
                continue
            scope, ids = parsed
            if scope == "disable-file":
                file_rules.update(ids)
            else:
                line_rules.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # the parse-error finding covers the broken file
    return _Suppressions(line_rules, file_rules)


def lint_source(
    source: str, path: str, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one in-memory module; ``path`` decides rule applicability."""
    posix = path.replace("\\", "/")
    enabled = {
        rule.id
        for rule in RULES
        if (select is None or rule.id in set(select)) and rule.applies_to(posix)
    }
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    findings = check_tree(tree, path, enabled)
    suppressions = collect_suppressions(source)
    kept = [finding for finding in findings if suppressions.allows(finding)]
    kept.sort()
    return kept


def lint_file(path: Path, select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one on-disk file."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=str(path),
                line=1,
                col=0,
                rule=PARSE_ERROR_RULE,
                message=f"file cannot be read: {exc}",
                hint="",
            )
        ]
    return lint_source(source, str(path), select=select)


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every python file under ``paths`` and return sorted findings."""
    select_set = None if select is None else set(select)
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, select=select_set))
    findings.sort()
    return findings


def unknown_suppressed_rules(source: str) -> Set[str]:
    """Rule ids referenced by directives that do not exist (QA helper)."""
    suppressions = collect_suppressions(source)
    referenced: Set[str] = set(suppressions.file_rules)
    for rules in suppressions.line_rules.values():
        referenced.update(rules)
    referenced.discard("all")
    return {rule for rule in referenced if rule not in RULES_BY_ID}
