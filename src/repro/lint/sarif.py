"""SARIF 2.1.0 rendering of lint findings.

SARIF is the interchange format GitHub (and most code-scanning UIs)
ingest natively; emitting it lets CI upload lint results as annotations
without a bespoke parser.  Only the small, stable core of the schema is
produced: one ``run`` with the rule catalogue under
``tool.driver.rules`` and one ``result`` per finding, each carrying a
``physicalLocation`` with a 1-based line/column region.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_descriptor(rule_id: str, name: str, summary: str, hint: str) -> Dict[str, Any]:
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": summary},
        "help": {"text": hint},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding) -> Dict[str, Any]:
    message = finding.message
    if finding.hint:
        message = f"{message} (fix: {finding.hint})"
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The SARIF log object for one lint run."""
    rules: List[Dict[str, Any]] = [
        _rule_descriptor(rule.id, rule.name, rule.summary, rule.hint)
        for rule in RULES
    ]
    # LNT000 (parse error) is not in the catalogue but may appear in
    # results; SARIF permits results whose ruleId has no descriptor,
    # still, ship one so viewers render a title.
    rules.append(
        _rule_descriptor(
            "LNT000",
            "parse-error",
            "file does not parse; nothing else was checked",
            "fix the syntax error",
        )
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF log as a JSON string (stable key order, 2-space indent)."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
