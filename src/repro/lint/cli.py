"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 — clean; 1 — findings (or unparseable files); 2 — bad
invocation.  ``--format json`` emits a machine-readable artifact (one
object with the rule catalogue version and the findings list) for CI
annotation; ``--format sarif`` emits a SARIF 2.1.0 log for code-scanning
upload; the default text format is one finding per block with the fix
hint indented beneath it.  ``--project`` additionally runs the
whole-program ASYNC/DUR/SOA families over the combined tree set;
``--jobs N`` parallelizes the per-file stage; ``--stats`` appends a
per-phase/per-rule timing report to stderr so the CI budget assertion
has numbers to check.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import LintReport, run_lint
from repro.lint.findings import Finding
from repro.lint.rules import RULES, expand_rule_selection
from repro.lint.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Determinism-aware static analysis for the repro codebase: RNG "
            "discipline, determinism hazards, atomic-artifact discipline, "
            "float-equality checks, and (with --project) whole-program "
            "async-safety, durability-ordering and SoA-coherence rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or families to run (e.g. RNG,DET002)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "also run the whole-program pass (module resolver, call graph, "
            "ASYNC/DUR/SOA rule families) over the combined tree set"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes for the per-file stage (default: 1)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-phase and per-rule timing/count report to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _render_text(findings: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro.lint: {len(findings)} {noun}")
    return "\n".join(lines)


def _render_json(findings: List[Finding], paths: Sequence[str]) -> str:
    return json.dumps(
        {
            "tool": "repro.lint",
            "paths": list(paths),
            "findings": [finding.to_json() for finding in findings],
            "count": len(findings),
        },
        indent=2,
    )


def _render_rules() -> str:
    lines = ["repro.lint rule catalogue:", ""]
    for rule in RULES:
        scope = " [project]" if rule.project else ""
        lines.append(f"{rule.id}  {rule.name}{scope}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def render_stats(report: LintReport) -> str:
    """The ``--stats`` block: phases, then per-rule finding counts."""
    lines = [f"repro.lint stats: {report.files} files"]
    for phase, seconds in report.timings.items():
        lines.append(f"  {phase:<22s} {seconds * 1000.0:9.1f} ms")
    if report.rule_counts:
        lines.append("  findings by rule:")
        for rule_id in sorted(report.rule_counts):
            lines.append(f"    {rule_id:<10s} {report.rule_counts[rule_id]}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    select = None
    if args.select:
        try:
            select = expand_rule_selection(tuple(args.select.split(",")))
        except ValueError as exc:
            parser.error(str(exc))
    report = run_lint(
        args.paths, select=select, project=args.project, jobs=args.jobs
    )
    findings = report.findings
    if args.format == "json":
        print(_render_json(findings, args.paths))
    elif args.format == "sarif":
        print(render_sarif(findings))
    elif findings:
        print(_render_text(findings))
    else:
        print("repro.lint: clean")
    if args.stats:
        print(render_stats(report), file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
