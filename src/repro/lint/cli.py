"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 — clean; 1 — findings (or unparseable files); 2 — bad
invocation.  ``--format json`` emits a machine-readable artifact (one
object with the rule catalogue version and the findings list) for CI
annotation; the default text format is one finding per block with the
fix hint indented beneath it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import lint_paths
from repro.lint.findings import Finding
from repro.lint.rules import RULES, expand_rule_selection


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Determinism-aware static analysis for the repro codebase: RNG "
            "discipline, determinism hazards, atomic-artifact discipline and "
            "float-equality checks."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or families to run (e.g. RNG,DET002)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _render_text(findings: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro.lint: {len(findings)} {noun}")
    return "\n".join(lines)


def _render_json(findings: List[Finding], paths: Sequence[str]) -> str:
    return json.dumps(
        {
            "tool": "repro.lint",
            "paths": list(paths),
            "findings": [finding.to_json() for finding in findings],
            "count": len(findings),
        },
        indent=2,
    )


def _render_rules() -> str:
    lines = ["repro.lint rule catalogue:", ""]
    for rule in RULES:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    select = None
    if args.select:
        try:
            select = expand_rule_selection(tuple(args.select.split(",")))
        except ValueError as exc:
            parser.error(str(exc))
    findings = lint_paths(args.paths, select=select)
    if args.format == "json":
        print(_render_json(findings, args.paths))
    elif findings:
        print(_render_text(findings))
    else:
        print("repro.lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
