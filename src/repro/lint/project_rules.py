"""Whole-program rule families: ASYNC, DUR, SOA.

These rules check invariants no single file can witness:

* **ASYNC** — the serving shell (:mod:`repro.service.server`) runs on
  one event loop; a blocking call reachable from any ``async def``
  stalls every client at once.  The write-ahead-log layer
  (``repro.service.wal``) *must* block before acks by contract, so it
  and the chaos harness are barrier modules: reachability stops there.
* **DUR** — "fsync before ack": every manager mutation site in the
  service must be dominated, on all call-graph paths, by a WAL append
  (``log_events``), a journal append (degraded mode), or an explicit
  ``wal is None`` check (WAL-less engines are allowed, but only
  deliberately).  Degraded-mode journals must reach a flush.
* **SOA** — PR 7's two-tier aggregate protocol: whoever writes a
  :class:`LinkTable` base column refreshes the materialized aggregates
  in the same function; the ``failed``/``failed_py`` mirror never
  splits.  Receiver types are proven (annotations, constructor
  assignments) before a write is attributed to ``LinkTable`` — the
  object core has *dict* attributes with the same names, and a
  name-only match would drown the rule in false positives.

Soundness: the call graph and type inference under-approximate, so
these rules can miss dynamic violations but do not invent them; see
DESIGN.md §16 for the full policy.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.dataflow import _walk_shallow, analyze_function
from repro.lint.findings import Finding
from repro.lint.graph import CallGraph, async_roots, build_call_graph, resolve_call
from repro.lint.project import FunctionInfo, ProjectIndex, _dotted_name

__all__ = ["PROJECT_CHECKS", "check_project"]

_SERVICE_PREFIX = "repro.service"

#: Modules allowed to block / touch fds directly: the WAL is the
#: sanctioned synchronous durability layer (write-ahead *means* the
#: loop waits for the fsync), and the chaos harness wraps it.
_BARRIER_MODULES = frozenset({"repro.service.wal", "repro.service.chaos"})

_BLOCKING_SUBPROCESS = frozenset({"run", "Popen", "call", "check_call", "check_output"})

#: Manager mutators whose call sites must be durability-dominated.
_MUTATORS = frozenset(
    {"request_connection", "terminate_connection", "fail_link", "repair_link"}
)

#: LinkTable base columns feeding the materialized spare/headroom tiers.
_SOA_BASE_COLUMNS = frozenset(
    {"primary_min", "primary_extra", "activated", "backup_reserved", "capacity"}
)
_SOA_MIRROR_COLUMNS = frozenset({"failed", "failed_py"})
_SOA_ALL_COLUMNS = _SOA_BASE_COLUMNS | _SOA_MIRROR_COLUMNS

_REFRESH_CALLS = frozenset(
    {"_refresh_cell", "refresh_cells", "refresh_aggregates", "mark_aggregates_dirty"}
)

#: Attributes that make up the service's shared serving state; only the
#: batcher/lifecycle path may write them once the loop is running.
_SERVICE_PROTECTED_ATTRS = frozenset(
    {"mode", "engine", "wal", "_journal", "_probe_ok", "_draining"}
)


def check_project(
    index: ProjectIndex, graph: Optional[CallGraph] = None
) -> List[Finding]:
    """Run every project rule; returns unfiltered, sorted findings.

    The engine applies rule selection, path applicability and
    suppression directives afterwards — this function only knows the
    program, not the invocation.
    """
    if graph is None:
        graph = build_call_graph(index)
    findings: List[Finding] = []
    for _rule_id, check in PROJECT_CHECKS:
        findings.extend(check(index, graph))
    findings.sort()
    return findings


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _in_service(func: FunctionInfo) -> bool:
    module = func.module
    return module == _SERVICE_PREFIX or module.startswith(_SERVICE_PREFIX + ".")


def _resolved_name(index: ProjectIndex, func: FunctionInfo, call: ast.Call) -> str:
    dotted = _dotted_name(call.func)
    if dotted is None:
        return ""
    return index.resolve(func.module, dotted) or dotted


def _last(name: str) -> str:
    return name.rsplit(".", 1)[-1]


# ----------------------------------------------------------------------
# ASYNC001 — blocking call reachable from an async def
# ----------------------------------------------------------------------
def _is_write_open(call: ast.Call) -> bool:
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # bare open() is a read; reads are out of scope
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wax+")
    return True  # dynamic mode: assume the worst


def _blocking_kind(
    index: ProjectIndex, func: FunctionInfo, call: ast.Call
) -> Optional[str]:
    name = _resolved_name(index, func, call)
    if name == "time.sleep":
        return "time.sleep"
    if name in ("os.fsync", "os.fdatasync"):
        return name
    if name.split(".")[0] == "subprocess" and _last(name) in _BLOCKING_SUBPROCESS:
        return name
    if name == "open" and _is_write_open(call):
        return "open(..., write mode)"
    if isinstance(call.func, ast.Attribute) and call.func.attr in (
        "write_text",
        "write_bytes",
    ):
        return f".{call.func.attr}()"
    return None


def _check_async001(index: ProjectIndex, graph: CallGraph) -> List[Finding]:
    roots = sorted(async_roots(index, _SERVICE_PREFIX))
    origin = graph.reachable_from(
        roots, skip=lambda f: f.module in _BARRIER_MODULES
    )
    findings = []
    for qual in sorted(origin):
        func = index.functions.get(qual)
        if func is None or func.module in _BARRIER_MODULES:
            continue
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            kind = _blocking_kind(index, func, node)
            if kind is None:
                continue
            via = "" if qual == origin[qual] else f" via `{qual}`"
            findings.append(
                Finding(
                    path=func.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="ASYNC001",
                    message=(
                        f"blocking call `{kind}` is reachable from "
                        f"`async def {_last(origin[qual])}`{via}; it stalls "
                        "the whole event loop"
                    ),
                    hint=(
                        "run it in an executor (`loop.run_in_executor` / "
                        "`asyncio.to_thread`), or route it through the WAL "
                        "layer if it is part of the write-ahead contract"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# ASYNC002 — coroutine called but never awaited
# ----------------------------------------------------------------------
def _check_async002(index: ProjectIndex) -> List[Finding]:
    findings = []
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if not _in_service(func):
            continue
        local_types = index.infer_local_types(func)
        for node in _walk_shallow(func.node):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            callee = resolve_call(index, func, node.value, local_types)
            target = index.function_at(callee)
            if target is None or not target.is_async:
                continue
            findings.append(
                Finding(
                    path=func.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="ASYNC002",
                    message=(
                        f"`{_last(callee or '')}` is a coroutine function; "
                        "calling it without `await` creates a coroutine "
                        "object and silently discards it"
                    ),
                    hint="`await` it, or wrap it in `asyncio.create_task(...)`",
                )
            )
    return findings


# ----------------------------------------------------------------------
# ASYNC003 — serving shared state written outside the batcher path
# ----------------------------------------------------------------------
def _protected_attr_writes(func: FunctionInfo) -> List[Tuple[ast.AST, str]]:
    writes: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(func.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Tuple):
                candidates = list(target.elts)
            else:
                candidates = [target]
            for cand in candidates:
                dotted = _dotted_name(cand) if isinstance(cand, ast.Attribute) else None
                if (
                    dotted
                    and dotted.split(".")[0] == "self"
                    and _last(dotted) in _SERVICE_PROTECTED_ATTRS
                ):
                    writes.append((node, _last(dotted)))
    return writes


def _check_async003(index: ProjectIndex, graph: CallGraph) -> List[Finding]:
    findings = []
    for cls_qual in sorted(index.classes):
        cls = index.classes[cls_qual]
        if not (
            cls.module == _SERVICE_PREFIX
            or cls.module.startswith(_SERVICE_PREFIX + ".")
        ):
            continue
        method_infos = {
            name: index.functions[q]
            for name, q in cls.methods.items()
            if q in index.functions
        }
        if not any(f.is_async for f in method_infos.values()):
            continue  # no event loop, no batcher discipline to enforce
        roots: Set[str] = set()
        for name, func in method_infos.items():
            if name == "__init__":
                roots.add(func.qualname)  # constructor runs before serving
            local_types = index.infer_local_types(func)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                last = _last(_dotted_name(node.func) or "")
                if last in ("create_task", "ensure_future"):
                    roots.add(func.qualname)  # lifecycle method
                    for arg in node.args:
                        if isinstance(arg, ast.Call):
                            target = resolve_call(index, func, arg, local_types)
                            if target is not None:
                                roots.add(target)
                elif last == "add_signal_handler":
                    roots.add(func.qualname)
                    for arg in node.args[1:]:
                        if isinstance(arg, ast.Attribute):
                            recv = index.type_of_expr(func, arg.value, local_types)
                            if recv is not None:
                                target = index.resolve_method(recv, arg.attr)
                                if target is not None:
                                    roots.add(target)
                elif last == "start_server":
                    roots.add(func.qualname)  # binds the listener (lifecycle);
                    # its client-callback argument is deliberately NOT a root
        allowed = set(graph.reachable_from(sorted(roots)))
        for name, func in sorted(method_infos.items()):
            if func.qualname in allowed:
                continue
            for node, attr in _protected_attr_writes(func):
                findings.append(
                    Finding(
                        path=func.path,
                        line=getattr(node, "lineno", func.line),
                        col=getattr(node, "col_offset", 0),
                        rule="ASYNC003",
                        message=(
                            f"`self.{attr}` is serving shared state, but "
                            f"`{name}` is not on the batcher/lifecycle path "
                            "(it is reachable from per-connection handlers), "
                            "so this write races the batch loop"
                        ),
                        hint=(
                            "move the mutation into the batcher task (queue a "
                            "request) or a lifecycle/signal handler"
                        ),
                    )
                )
    return findings


# ----------------------------------------------------------------------
# DUR001 — manager mutations dominated by a durability action
# ----------------------------------------------------------------------
_DURABLE = "durable"


def _dur_gen(call: ast.Call) -> Set[str]:
    dotted = _dotted_name(call.func) or ""
    last = _last(dotted)
    if last == "log_events":
        return {_DURABLE}
    if last in ("extend", "append") and "journal" in dotted.lower():
        return {_DURABLE}
    return set()


def _dur_cond(test: ast.expr, value: bool) -> Set[str]:
    """`wal is None` on its true branch (or `wal is not None` on its
    false branch) *establishes* WAL absence: running without a WAL is a
    deliberate configuration, and the branch proves the code checked."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return set()
    name = _dotted_name(test.left) or ""
    if "wal" not in _last(name).lower():
        return set()
    op = test.ops[0]
    if (isinstance(op, ast.Is) and value) or (
        isinstance(op, ast.IsNot) and not value
    ):
        return {_DURABLE}
    return set()


def _mutator_sites(func: FunctionInfo) -> List[ast.Call]:
    sites = []
    for node in ast.walk(func.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            recv = _dotted_name(node.func.value) or ""
            if "manager" in _last(recv):
                sites.append(node)
    return sites


def _check_dur001(index: ProjectIndex, graph: CallGraph) -> List[Finding]:
    facts_cache: Dict[str, Dict[int, FrozenSet[str]]] = {}

    def facts_for(func: FunctionInfo) -> Dict[int, FrozenSet[str]]:
        cached = facts_cache.get(func.qualname)
        if cached is None:
            all_calls = [n for n in ast.walk(func.node) if isinstance(n, ast.Call)]
            cached = analyze_function(
                func.node, all_calls, gen=_dur_gen, cond=_dur_cond
            )
            facts_cache[func.qualname] = cached
        return cached

    entry_memo: Dict[str, bool] = {}

    def entry_durable(qual: str, visiting: FrozenSet[str]) -> bool:
        """True when every in-scope path into ``qual`` already holds the
        durability fact at the call site (recursively)."""
        if qual in entry_memo:
            return entry_memo[qual]
        callers = [
            site
            for site in graph.callers(qual)
            if site.caller in index.functions
            and _in_service(index.functions[site.caller])
        ]
        if not callers:
            entry_memo[qual] = False
            return False
        ok = True
        for site in callers:
            if site.caller in visiting:
                continue  # cycle: no independent entry on this path
            caller = index.functions[site.caller]
            site_facts = facts_for(caller).get(
                id(site.node), frozenset()  # repro-lint: disable=DET002 — dataflow results are keyed by live AST node identity
            )
            if _DURABLE in site_facts:
                continue
            if entry_durable(site.caller, visiting | {qual}):
                continue
            ok = False
            break
        entry_memo[qual] = ok
        return ok

    findings = []
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if not _in_service(func) or func.module in _BARRIER_MODULES:
            continue
        sites = _mutator_sites(func)
        if not sites:
            continue
        facts = facts_for(func)
        for site in sites:
            if _DURABLE in facts.get(
                id(site), frozenset()  # repro-lint: disable=DET002 — dataflow results are keyed by live AST node identity
            ):
                continue
            if entry_durable(qual, frozenset({qual})):
                continue
            findings.append(
                Finding(
                    path=func.path,
                    line=site.lineno,
                    col=site.col_offset,
                    rule="DUR001",
                    message=(
                        f"manager mutation `{site.func.attr}` is not "
                        "dominated by a WAL append (`log_events`), a journal "
                        "append, or an explicit `wal is None` check on every "
                        "call-graph path; a crash here loses an acked event"
                    ),
                    hint=(
                        "log the batch write-ahead (or journal it in degraded "
                        "mode) before applying; see ServiceEngine.apply_batch"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# DUR002 — degraded-mode journals must reach a flush
# ----------------------------------------------------------------------
def _journal_attrs_used(func: FunctionInfo) -> List[Tuple[ast.AST, str]]:
    """(site, attr) pairs where the function appends to ``self.<attr>``
    journal state or hands it to a callee via a ``journal=`` keyword."""
    uses: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func) or ""
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] == "self"
            and "journal" in parts[1].lower()
            and parts[2] in ("append", "extend")
        ):
            uses.append((node, parts[1]))
        for kw in node.keywords:
            if kw.arg == "journal":
                value = _dotted_name(kw.value) or ""
                vparts = value.split(".")
                if len(vparts) == 2 and vparts[0] == "self":
                    uses.append((node, vparts[1]))
    return uses


def _flushes_journal(func: FunctionInfo, attr: str) -> bool:
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        if _last(_dotted_name(node.func) or "") != "log_events":
            continue
        for arg in node.args:
            if _dotted_name(arg) == f"self.{attr}":
                return True
    return False


def _check_dur002(index: ProjectIndex, graph: CallGraph) -> List[Finding]:
    findings = []
    for cls_qual in sorted(index.classes):
        cls = index.classes[cls_qual]
        if not (
            cls.module == _SERVICE_PREFIX
            or cls.module.startswith(_SERVICE_PREFIX + ".")
        ):
            continue
        journal_sites: Dict[str, Tuple[ast.AST, FunctionInfo]] = {}
        method_infos = [
            index.functions[q] for q in cls.methods.values() if q in index.functions
        ]
        for func in method_infos:
            for site, attr in _journal_attrs_used(func):
                journal_sites.setdefault(attr, (site, func))
        if not journal_sites:
            continue
        async_methods = sorted(f.qualname for f in method_infos if f.is_async)
        reachable = set(graph.reachable_from(async_methods))
        for attr in sorted(journal_sites):
            flushers = [
                f
                for f in method_infos
                if _flushes_journal(f, attr)
                and (f.qualname in reachable or f.is_async)
            ]
            if flushers:
                continue
            site, func = journal_sites[attr]
            findings.append(
                Finding(
                    path=func.path,
                    line=getattr(site, "lineno", func.line),
                    col=getattr(site, "col_offset", 0),
                    rule="DUR002",
                    message=(
                        f"`self.{attr}` collects journaled operations, but no "
                        "method reachable from this class's async path "
                        f"flushes it via `log_events(self.{attr})`; journaled "
                        "ops would never become durable"
                    ),
                    hint=(
                        "add a probation/drain step that calls "
                        f"`wal.log_events(self.{attr})` and clears it (see "
                        "AdmissionService._rearm)"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# DUR003 — fd-level durability calls stay inside the WAL layer
# ----------------------------------------------------------------------
_FD_CALLS = frozenset({"os.fsync", "os.fdatasync", "os.ftruncate", "os.truncate"})


def _check_dur003(index: ProjectIndex) -> List[Finding]:
    findings = []
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if not _in_service(func) or func.module in _BARRIER_MODULES:
            continue
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            name = _resolved_name(index, func, node)
            if name not in _FD_CALLS:
                continue
            findings.append(
                Finding(
                    path=func.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="DUR003",
                    message=(
                        f"direct `{name}` outside the WAL layer; fd-level "
                        "durability calls bypass the write-ahead accounting "
                        "(tear detection, fault injection, repair)"
                    ),
                    hint=(
                        "route durability through repro.service.wal, or "
                        "suppress with a reason if this is recovery-time "
                        "surgery the WAL re-verifies"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# SOA001 / SOA002 — LinkTable column write discipline
# ----------------------------------------------------------------------
def _is_link_table(qual: Optional[str]) -> bool:
    return qual is not None and _last(qual) == "LinkTable"


def _soa_env(
    index: ProjectIndex, func: FunctionInfo
) -> Tuple[Dict[str, str], Dict[str, str]]:
    """(local type env, column-alias env) for one function.

    An alias is a *bare* attribute read of a LinkTable column bound to a
    local name (``col = self.primary_min``); ``.tolist()`` copies and
    other derived values do not alias the column.
    """
    types = index.infer_local_types(func)
    aliases: Dict[str, str] = {}
    for node in ast.walk(func.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target, value = node.targets[0], node.value
        if not (isinstance(target, ast.Name) and isinstance(value, ast.Attribute)):
            continue
        if value.attr in _SOA_ALL_COLUMNS and _is_link_table(
            index.type_of_expr(func, value.value, types)
        ):
            aliases[target.id] = value.attr
    return types, aliases


def _column_of(
    index: ProjectIndex,
    func: FunctionInfo,
    expr: ast.expr,
    types: Dict[str, str],
    aliases: Dict[str, str],
) -> Optional[str]:
    if isinstance(expr, ast.Attribute) and expr.attr in _SOA_ALL_COLUMNS:
        if _is_link_table(index.type_of_expr(func, expr.value, types)):
            return expr.attr
    if isinstance(expr, ast.Name):
        return aliases.get(expr.id)
    return None


def _column_writes(
    index: ProjectIndex, func: FunctionInfo
) -> List[Tuple[ast.AST, str]]:
    types, aliases = _soa_env(index, func)
    writes: List[Tuple[ast.AST, str]] = []

    def check_target(target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                check_target(elt, node)
            return
        if isinstance(target, ast.Subscript):
            col = _column_of(index, func, target.value, types, aliases)
            if col is not None:
                writes.append((node, col))

    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                check_target(target, node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            check_target(node.target, node)
        elif isinstance(node, ast.Call):
            # ufunc scatter: np.add.at(table.col, idx, vals) mutates arg 0.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "at"
                and node.args
            ):
                col = _column_of(index, func, node.args[0], types, aliases)
                if col is not None:
                    writes.append((node, col))
    return writes


def _writes_by_function(index: ProjectIndex) -> Dict[str, List[Tuple[ast.AST, str]]]:
    """Column writes for every function, computed once per run.

    The alias/type scan is the expensive part of the SOA rules, and
    SOA001/SOA002 need the same answer — memoized on the index.
    """
    cached = index.memo.get("soa-writes")
    if cached is None:
        cached = {
            qual: _column_writes(index, func)
            for qual, func in index.functions.items()
        }
        index.memo["soa-writes"] = cached
    return cached  # type: ignore[return-value]


def _calls_refresh(func: FunctionInfo) -> bool:
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            if _last(_dotted_name(node.func) or "") in _REFRESH_CALLS:
                return True
    return False


def _check_soa001(index: ProjectIndex) -> List[Finding]:
    findings = []
    writes_map = _writes_by_function(index)
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if func.name in _REFRESH_CALLS or func.name == "__init__":
            continue  # the refresh tier itself / construction-time fills
        base_writes = [
            (node, col)
            for node, col in writes_map[qual]
            if col in _SOA_BASE_COLUMNS
        ]
        if not base_writes or _calls_refresh(func):
            continue
        node, col = base_writes[0]
        cols = sorted({c for _, c in base_writes})
        findings.append(
            Finding(
                path=func.path,
                line=getattr(node, "lineno", func.line),
                col=getattr(node, "col_offset", 0),
                rule="SOA001",
                message=(
                    f"`{func.name}` writes LinkTable base column(s) "
                    f"{', '.join(cols)} without refreshing the materialized "
                    "aggregates in the same function; spare/headroom go "
                    "stale and admission decisions silently diverge"
                ),
                hint=(
                    "call `_refresh_cell(li)`/`refresh_cells(...)` for scalar "
                    "writes or `mark_aggregates_dirty()` after bulk writes "
                    "(two-tier protocol, DESIGN.md §11)"
                ),
            )
        )
    return findings


def _check_soa002(index: ProjectIndex) -> List[Finding]:
    findings = []
    writes_map = _writes_by_function(index)
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if func.name == "__init__":
            continue
        writes = writes_map[qual]
        mirror = {col for _, col in writes} & _SOA_MIRROR_COLUMNS
        if not mirror or mirror == _SOA_MIRROR_COLUMNS:
            continue
        written = next(iter(mirror))
        missing = next(iter(_SOA_MIRROR_COLUMNS - mirror))
        node = next(n for n, col in writes if col == written)
        findings.append(
            Finding(
                path=func.path,
                line=getattr(node, "lineno", func.line),
                col=getattr(node, "col_offset", 0),
                rule="SOA002",
                message=(
                    f"`{func.name}` writes LinkTable `{written}` but not "
                    f"`{missing}`; the numpy mask and its Python mirror "
                    "diverge, so the sequential tail reads stale failure "
                    "state"
                ),
                hint=(
                    "update both in the same function: `failed[li] = x` and "
                    "`failed_py[li] = x` (see LinkTable.fail/repair)"
                ),
            )
        )
    return findings


#: (rule id, check) registry — the engine iterates this so ``--stats``
#: can time each project rule individually.
PROJECT_CHECKS: Tuple[
    Tuple[str, "Callable[[ProjectIndex, CallGraph], List[Finding]]"], ...
] = (
    ("ASYNC001", _check_async001),
    ("ASYNC002", lambda index, graph: _check_async002(index)),
    ("ASYNC003", _check_async003),
    ("DUR001", _check_dur001),
    ("DUR002", _check_dur002),
    ("DUR003", lambda index, graph: _check_dur003(index)),
    ("SOA001", lambda index, graph: _check_soa001(index)),
    ("SOA002", lambda index, graph: _check_soa002(index)),
)
