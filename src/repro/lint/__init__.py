"""Determinism-aware static analysis for the repro codebase.

The dynamic test suite pins reproducibility *after* the fact (bitwise
campaign regression tests, twin-manager equivalence properties); this
package defends the same contracts *statically*, before code merges:

* **RNG discipline** (``RNG001``–``RNG003``) — no process-global
  ``random`` / legacy ``numpy.random`` state; stochastic components
  accept an injected, seeded generator.
* **Determinism hazards** (``DET001``–``DET004``) — no unordered set
  iteration into order-sensitive paths, no ``id()`` keying, no
  wall-clock reads inside simulation logic, no ``.item()``-laundered
  float accumulation inside the bitwise-pinned numeric packages.
* **Artifact discipline** (``ART001``) — artifact writes go through the
  atomic tmp-then-rename primitives.
* **Float discipline** (``FLT001``) — invariant/audit code never
  compares floats with ``==`` against non-integral literals.

With ``--project``, three whole-program families run over a
cross-module symbol index, call graph and must-facts dataflow
(:mod:`repro.lint.project` / ``graph`` / ``dataflow``):

* **Async safety** (``ASYNC001``–``ASYNC003``) — no blocking call
  reachable from the service's ``async def``s, no dropped coroutines,
  no serving shared state written off the batcher path.
* **Durability ordering** (``DUR001``–``DUR003``) — manager mutations
  dominated by WAL/journal appends, journals reach their flush, and
  fd-level durability stays inside ``repro.service.wal``.
* **SoA coherence** (``SOA001``–``SOA002``) — LinkTable base-column
  writers refresh the materialized aggregates in the same function,
  and the ``failed``/``failed_py`` mirror never splits.

Run it with ``python -m repro.lint [paths...] [--project]`` or
``repro lint``; suppress deliberate uses with
``# repro-lint: disable=RULE — reason``.
"""

from __future__ import annotations

from repro.lint.engine import (
    PARSE_ERROR_RULE,
    LintedFile,
    LintReport,
    collect_suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_project_sources,
    lint_source,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.rules import FAMILIES, RULES, RULES_BY_ID, Rule, expand_rule_selection

__all__ = [
    "FAMILIES",
    "Finding",
    "LintReport",
    "LintedFile",
    "PARSE_ERROR_RULE",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "collect_suppressions",
    "expand_rule_selection",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "run_lint",
]
