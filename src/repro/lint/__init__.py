"""Determinism-aware static analysis for the repro codebase.

The dynamic test suite pins reproducibility *after* the fact (bitwise
campaign regression tests, twin-manager equivalence properties); this
package defends the same contracts *statically*, before code merges:

* **RNG discipline** (``RNG001``–``RNG003``) — no process-global
  ``random`` / legacy ``numpy.random`` state; stochastic components
  accept an injected, seeded generator.
* **Determinism hazards** (``DET001``–``DET004``) — no unordered set
  iteration into order-sensitive paths, no ``id()`` keying, no
  wall-clock reads inside simulation logic, no ``.item()``-laundered
  float accumulation inside the bitwise-pinned numeric packages.
* **Artifact discipline** (``ART001``) — artifact writes go through the
  atomic tmp-then-rename primitives.
* **Float discipline** (``FLT001``) — invariant/audit code never
  compares floats with ``==`` against non-integral literals.

Run it with ``python -m repro.lint [paths...]`` or ``repro lint``;
suppress deliberate uses with ``# repro-lint: disable=RULE — reason``.
"""

from __future__ import annotations

from repro.lint.engine import (
    PARSE_ERROR_RULE,
    collect_suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.rules import FAMILIES, RULES, RULES_BY_ID, Rule, expand_rule_selection

__all__ = [
    "FAMILIES",
    "Finding",
    "PARSE_ERROR_RULE",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "collect_suppressions",
    "expand_rule_selection",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
