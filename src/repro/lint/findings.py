"""Structured findings emitted by the determinism lint pass.

A finding pins one rule violation to one source location and carries a
machine-readable rule id plus a human-oriented fix hint, so the same
object can back the text report, the JSON artifact consumed by CI, and
the fixture assertions in the lint test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: File the violation lives in (as given to the engine).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: Rule id, e.g. ``"RNG001"``.
        message: What is wrong, phrased against this code.
        hint: How to fix it (or how to suppress a deliberate use).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = field(default="", compare=False)

    def render(self) -> str:
        """``path:line:col: RULE message (hint)`` — the text report row."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable form for ``--format json`` artifacts."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
