"""Whole-program model behind the project lint pass.

The per-file checkers (:mod:`repro.lint.checkers`) are deliberately
blind to anything outside one module; the protocol rules added for the
service and SoA layers (ASYNC/DUR/SOA families) need to know *who calls
whom* and *what type a receiver is* across module boundaries.  This
module builds that picture from the already-parsed ASTs:

* a **module table** mapping dotted module names to parse trees, with
  each module's import bindings resolved to fully-qualified targets
  (``from .wal import ReplayLogWriter`` inside ``repro.service.server``
  binds ``ReplayLogWriter`` to ``repro.service.wal.ReplayLogWriter``);
* a **symbol table** of every function, method and class, keyed by
  qualified name, with re-export chains chased through package
  ``__init__`` modules (``repro.lint.lint_paths`` canonicalizes to
  ``repro.lint.engine.lint_paths``);
* **lightweight type inference** — parameter annotations, ``self``,
  ``x = ClassName(...)`` constructor assignments, and instance-attribute
  types gathered from ``__init__`` bodies (``self.engine:
  Optional[ServiceEngine] = None`` types ``self.engine`` for every
  other method) — just enough to resolve ``self.engine.apply_batch()``
  to a concrete method.

Soundness policy: resolution is *best effort and under-approximate* —
a receiver whose type cannot be proven stays unresolved and produces no
call edge and no finding.  The project rules are therefore quiet where
the code is too dynamic to analyse, and the dynamic test suite remains
the backstop there; what the resolver does claim, it can justify.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_project_index",
    "module_name_for_path",
]

#: Path components that act as import roots: the part after them is the
#: dotted module name (``src/repro/sim/engine.py`` -> ``repro.sim.engine``).
_SOURCE_ROOTS = ("src",)


def module_name_for_path(path: str) -> str:
    """Dotted module name of a file path (posix or windows form).

    Files under a ``src/`` component are named from the part after it;
    anything else (tests, benchmarks, scripts) is named from its full
    relative path so test modules still get stable, unique names.
    ``__init__.py`` maps to its package name.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p not in ("", ".")]
    for root in _SOURCE_ROOTS:
        if root in parts:
            parts = parts[len(parts) - parts[::-1].index(root):]
            break
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    cls: Optional[str] = None  # qualified class name for methods

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class definition with resolved structure."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)  # as written
    methods: Dict[str, str] = field(default_factory=dict)  # name -> func qualname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class qualname


@dataclass
class ModuleInfo:
    """One parsed module and its name bindings."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool = False
    #: local name -> fully-qualified target (module, class, or function).
    imports: Dict[str, str] = field(default_factory=dict)
    #: top-level definition name -> qualified symbol name.
    defs: Dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """Symbol resolver over every module of one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method/function name -> qualified names (fallback index).
        self.by_name: Dict[str, List[str]] = {}
        #: scratch space for rule passes that share per-function results
        #: (e.g. the SOA column-write scan) within one run.
        self.memo: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a (possibly dotted) name used inside ``module``.

        Returns the canonical qualified name, chasing re-export chains,
        or ``None`` when the head name is not bound in the module.
        """
        head, _, rest = dotted.partition(".")
        mod = self.modules.get(module)
        if mod is None:
            return None
        if head in mod.defs:
            target = mod.defs[head]
        elif head in mod.imports:
            target = mod.imports[head]
        else:
            return None
        if rest:
            target = f"{target}.{rest}"
        return self.canonicalize(target)

    def canonicalize(self, qual: str, _seen: Optional[Set[str]] = None) -> str:
        """Chase re-exports until ``qual`` names a real definition.

        ``repro.lint.lint_paths`` (bound by the package ``__init__``
        from ``repro.lint.engine``) canonicalizes to
        ``repro.lint.engine.lint_paths``.  Unknown prefixes (stdlib,
        third-party) are returned unchanged.
        """
        seen = _seen if _seen is not None else set()
        if qual in seen:
            return qual
        seen.add(qual)
        parts = qual.split(".")
        # Longest known-module prefix wins.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            rest = parts[cut:]
            if not rest:
                return qual  # it IS a module
            head, tail = rest[0], rest[1:]
            if head in mod.defs:
                resolved = mod.defs[head]
            elif head in mod.imports:
                resolved = self.canonicalize(mod.imports[head], seen)
            else:
                return qual
            if tail:
                resolved = f"{resolved}.{'.'.join(tail)}"
                return self.canonicalize(resolved, seen)
            return resolved
        return qual

    def function_at(self, qual: Optional[str]) -> Optional[FunctionInfo]:
        if qual is None:
            return None
        return self.functions.get(qual)

    def class_at(self, qual: Optional[str]) -> Optional[ClassInfo]:
        if qual is None:
            return None
        return self.classes.get(qual)

    # ------------------------------------------------------------------
    # method resolution (class hierarchy walk)
    # ------------------------------------------------------------------
    def iter_mro(self, cls_qual: str) -> Iterator[ClassInfo]:
        """The class and its known base classes, nearest-first.

        Python's true MRO needs full linearization; for call-graph
        purposes a depth-first nearest-first walk over the *known*
        bases is the conservative stand-in (unknown/external bases
        simply end the chain).
        """
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            yield info
            resolved_bases = []
            for base in info.base_names:
                target = self.resolve(info.module, base)
                if target is not None and target in self.classes:
                    resolved_bases.append(target)
            stack = resolved_bases + stack

    def resolve_method(self, cls_qual: str, method: str) -> Optional[str]:
        """Find ``method`` on the class or its known bases."""
        for info in self.iter_mro(cls_qual):
            if method in info.methods:
                return info.methods[method]
        return None

    def unique_by_name(self, name: str) -> Optional[str]:
        """The single project function/method with this bare name, if
        exactly one exists (the documented last-resort fallback for
        receivers whose type could not be inferred)."""
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------------
    # annotation / type helpers
    # ------------------------------------------------------------------
    def resolve_annotation(self, module: str, ann: Optional[ast.expr]) -> Optional[str]:
        """Qualified class name an annotation refers to, if inferable.

        Handles ``Name``, dotted ``Attribute``, string annotations,
        ``Optional[X]`` (unwrapped to ``X``) and ``X | None``.
        """
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Name):
            target = self.resolve(module, ann.id)
            return target if target in self.classes else None
        if isinstance(ann, ast.Attribute):
            dotted = _dotted_name(ann)
            if dotted is None:
                return None
            target = self.resolve(module, dotted) or dotted
            return target if target in self.classes else None
        if isinstance(ann, ast.Subscript):
            head = _dotted_name(ann.value)
            if head and head.split(".")[-1] == "Optional":
                return self.resolve_annotation(module, ann.slice)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            sides = [
                side
                for side in (ann.left, ann.right)
                if not (isinstance(side, ast.Constant) and side.value is None)
            ]
            if len(sides) == 1:
                return self.resolve_annotation(module, sides[0])
        return None

    def infer_local_types(self, func: FunctionInfo) -> Dict[str, str]:
        """Best-effort local-name -> class map for one function body.

        Sources, in order: ``self``/``cls`` (the enclosing class),
        annotated parameters, and single-target assignments from a
        constructor call or a typed ``self.<attr>``.
        """
        types: Dict[str, str] = {}
        node = func.node
        args = getattr(node, "args", None)
        if args is not None:
            all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if func.cls is not None and all_args:
                first = all_args[0].arg
                if first in ("self", "cls"):
                    types[first] = func.cls
            for arg in all_args:
                resolved = self.resolve_annotation(func.module, arg.annotation)
                if resolved is not None:
                    types[arg.arg] = resolved
        cls_info = self.class_at(func.cls)
        for stmt in ast.walk(node):  # assignments anywhere in the body
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                if isinstance(target, ast.Name):
                    resolved = self.resolve_annotation(func.module, stmt.annotation)
                    if resolved is not None:
                        types[target.id] = resolved
                    continue
            if not isinstance(target, ast.Name) or value is None:
                continue
            inferred = self._infer_value_type(func, cls_info, value, types)
            if inferred is not None:
                types[target.id] = inferred
        return types

    def _infer_value_type(
        self,
        func: FunctionInfo,
        cls_info: Optional[ClassInfo],
        value: ast.expr,
        types: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(value, ast.Call):
            callee = _dotted_name(value.func)
            if callee is not None:
                target = self.resolve(func.module, callee)
                if target in self.classes:
                    return target
            return None
        if isinstance(value, ast.Name):
            return types.get(value.id)
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            base = types.get(value.value.id)
            info = self.class_at(base)
            if info is not None:
                return info.attr_types.get(value.attr)
        return None

    def type_of_expr(
        self, func: FunctionInfo, expr: ast.expr, local_types: Dict[str, str]
    ) -> Optional[str]:
        """Class of an expression under the local type environment."""
        if isinstance(expr, ast.Name):
            return local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of_expr(func, expr.value, local_types)
            info = self.class_at(base)
            if info is not None:
                return info.attr_types.get(expr.attr)
        return None


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` rendered as a string, or None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# index construction
# ----------------------------------------------------------------------
def _scan_imports(info: ModuleInfo) -> None:
    pkg_parts = info.name.split(".")
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    info.imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                keep = len(pkg_parts) - node.level + (1 if info.is_package else 0)
                base_parts = pkg_parts[: max(keep, 0)]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{base}.{alias.name}" if base else alias.name


def _gather_attr_types(
    index: ProjectIndex, cls: ClassInfo, module: str
) -> None:
    """Instance-attribute types from every method of one class.

    ``self.x: T = ...`` and ``self.x = ClassName(...)`` and
    ``self.x = <annotated parameter>`` all contribute; conflicting
    evidence keeps the first (definition-order) answer.
    """
    for method_qual in cls.methods.values():
        func = index.functions.get(method_qual)
        if func is None:
            continue
        param_types: Dict[str, str] = {}
        args = getattr(func.node, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                resolved = index.resolve_annotation(module, arg.annotation)
                if resolved is not None:
                    param_types[arg.arg] = resolved
        for stmt in ast.walk(func.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            ann: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, ann = stmt.target, stmt.value, stmt.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if attr in cls.attr_types:
                continue
            resolved = index.resolve_annotation(module, ann) if ann else None
            if resolved is None and isinstance(value, ast.Call):
                callee = _dotted_name(value.func)
                if callee is not None:
                    maybe = index.resolve(module, callee)
                    if maybe in index.classes:
                        resolved = maybe
            if resolved is None and isinstance(value, ast.Name):
                resolved = param_types.get(value.id)
            if resolved is not None:
                cls.attr_types[attr] = resolved


def _index_module(index: ProjectIndex, info: ModuleInfo) -> None:
    def add_function(
        node: ast.AST, scope: str, cls: Optional[str]
    ) -> None:
        name = getattr(node, "name")
        qual = f"{scope}.{name}"
        func = FunctionInfo(
            qualname=qual,
            module=info.name,
            path=info.path,
            name=name,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            cls=cls,
        )
        index.functions[qual] = func
        index.by_name.setdefault(name, []).append(qual)
        if cls is not None:
            index.classes[cls].methods.setdefault(name, qual)

    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.defs[node.name] = f"{info.name}.{node.name}"
            add_function(node, info.name, cls=None)
        elif isinstance(node, ast.ClassDef):
            cls_qual = f"{info.name}.{node.name}"
            info.defs[node.name] = cls_qual
            base_names = [
                dotted
                for dotted in (_dotted_name(base) for base in node.bases)
                if dotted is not None
            ]
            index.classes[cls_qual] = ClassInfo(
                qualname=cls_qual,
                module=info.name,
                path=info.path,
                node=node,
                base_names=base_names,
            )
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(sub, cls_qual, cls=cls_qual)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    info.defs.setdefault(target.id, f"{info.name}.{target.id}")


def build_project_index(
    sources: Sequence[Tuple[str, ast.Module]]
) -> ProjectIndex:
    """Build the whole-program index from ``(path, tree)`` pairs.

    Later duplicates of the same module name shadow earlier ones (the
    realistic cause is linting both ``src`` and an installed copy; the
    lint CLI passes each file once).
    """
    index = ProjectIndex()
    for path, tree in sources:
        name = module_name_for_path(path)
        info = ModuleInfo(
            name=name,
            path=path,
            tree=tree,
            is_package=path.replace("\\", "/").endswith("__init__.py"),
        )
        index.modules[name] = info
    for info in index.modules.values():
        _scan_imports(info)
        _index_module(index, info)
    for cls in index.classes.values():
        _gather_attr_types(index, cls, cls.module)
    return index
