"""AST checkers behind the determinism lint rules.

One import-resolution pass records which local names are bound to the
``random`` / ``numpy.random`` / ``time`` / ``datetime`` modules (and
which functions were imported out of them), then a single checking walk
dispatches every rule, so a file is parsed and traversed exactly once
no matter how many rules are enabled.

The checks are deliberately *syntactic*: they flag expressions that are
provably hazardous from the text alone (a call spelled through a module
alias, iteration over a literal/constructed set) and stay silent where
only type inference could decide.  That keeps the pass dependency-free
and fast enough for a pre-commit hook; the dynamic property tests
remain the backstop for hazards that only manifest at run time.
"""

from __future__ import annotations

import ast
import math
from typing import Dict, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.rules import RULES_BY_ID, Rule

#: Module-level stdlib ``random`` functions that mutate/read global state.
_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "seed", "random", "uniform", "randint", "randrange", "choice",
        "choices", "shuffle", "sample", "gauss", "normalvariate",
        "expovariate", "betavariate", "gammavariate", "lognormvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate", "triangular",
        "getrandbits", "randbytes", "binomialvariate", "getstate", "setstate",
    }
)

#: ``numpy.random`` attributes that are part of the *new* Generator API
#: (constructing seeded generators is the whole point of the discipline).
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "Generator", "default_rng", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }
)

#: Clock functions whose results leak wall time into simulation state.
_CLOCK_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    }
)

_DATETIME_CLOCK_METHODS = frozenset({"now", "utcnow", "today"})

#: ``open`` mode characters that make the call a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Set methods that return a new set (so chaining keeps "set-ness").
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Builtins whose output order follows the iteration order of their
#: (first) argument — feeding them a set is order-sensitive.
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "enumerate", "iter"})


class _ImportTable:
    """Which local names resolve to the modules the rules care about."""

    def __init__(self) -> None:
        self.random_mods: Set[str] = set()
        self.random_funcs: Dict[str, str] = {}
        self.numpy_mods: Set[str] = set()
        self.numpy_random_mods: Set[str] = set()
        self.numpy_random_funcs: Dict[str, str] = {}
        self.randomstate_names: Set[str] = set()
        self.time_mods: Set[str] = set()
        self.time_funcs: Dict[str, str] = {}
        self.datetime_mods: Set[str] = set()
        self.datetime_classes: Set[str] = set()

    def scan(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self._scan_import(node)
            elif isinstance(node, ast.ImportFrom):
                self._scan_import_from(node)

    def _scan_import(self, node: ast.Import) -> None:
        for alias in node.names:
            name, bound = alias.name, alias.asname
            if name == "random":
                self.random_mods.add(bound or "random")
            elif name == "numpy":
                self.numpy_mods.add(bound or "numpy")
            elif name == "numpy.random":
                if bound:
                    self.numpy_random_mods.add(bound)
                else:
                    self.numpy_mods.add("numpy")
            elif name == "time":
                self.time_mods.add(bound or "time")
            elif name == "datetime":
                self.datetime_mods.add(bound or "datetime")

    def _scan_import_from(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            name, local = alias.name, alias.asname or alias.name
            if module == "random" and name in _STDLIB_RANDOM_FUNCS:
                self.random_funcs[local] = name
            elif module == "numpy" and name == "random":
                self.numpy_random_mods.add(local)
            elif module == "numpy.random":
                if name == "RandomState":
                    self.randomstate_names.add(local)
                elif name not in _NUMPY_RANDOM_ALLOWED:
                    self.numpy_random_funcs[local] = name
            elif module == "time" and name in _CLOCK_FUNCS:
                self.time_funcs[local] = name
            elif module == "datetime" and name in {"datetime", "date"}:
                self.datetime_classes.add(local)


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` syntactically constructs an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_RETURNING_METHODS
            and _is_set_expr(func.value)
        ):
            return True
    return False


def _nonintegral_float_constant(node: ast.expr) -> bool:
    if not (isinstance(node, ast.Constant) and isinstance(node.value, float)):
        return False
    value = node.value
    if value != value:  # NaN: == against it is always dead code
        return True
    if not math.isfinite(value):
        return False
    return value != int(value)


class DeterminismVisitor(ast.NodeVisitor):
    """Single-walk dispatcher for every enabled rule on one file."""

    def __init__(self, path: str, enabled: Set[str], imports: _ImportTable) -> None:
        self.path = path
        self.enabled = enabled
        self.imports = imports
        self.findings: List[Finding] = []

    # -- reporting ------------------------------------------------------
    def _report(self, rule_id: str, node: ast.AST, detail: str = "") -> None:
        if rule_id not in self.enabled:
            return
        rule: Rule = RULES_BY_ID[rule_id]
        message = rule.summary if not detail else f"{detail}: {rule.summary}"
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule_id,
                message=message,
                hint=rule.hint,
            )
        )

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self.generic_visit(node)

    def _check_name_call(self, node: ast.Call, name: str) -> None:
        imports = self.imports
        if name in imports.random_funcs:
            self._report("RNG001", node, f"`{name}` (from random import)")
        elif name in imports.numpy_random_funcs:
            self._report("RNG002", node, f"`{name}` (from numpy.random import)")
        elif name in imports.randomstate_names:
            self._report("RNG003", node)
        elif name in imports.time_funcs:
            self._report("DET003", node, f"`{name}` (from time import)")
        elif name == "id":
            self._report("DET002", node)
        elif name == "open":
            self._check_open(node)
        elif name in _ORDER_SENSITIVE_BUILTINS:
            if node.args and _is_set_expr(node.args[0]):
                self._report("DET001", node, f"`{name}(<set>)`")

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        imports = self.imports
        attr = func.attr
        value = func.value
        if attr in {"write_text", "write_bytes"}:
            self._report("ART001", node, f"`.{attr}(...)`")
            return
        if isinstance(value, ast.Name):
            base = value.id
            if base in imports.random_mods and attr in _STDLIB_RANDOM_FUNCS:
                self._report("RNG001", node, f"`{base}.{attr}`")
            elif base in imports.numpy_random_mods:
                if attr == "RandomState":
                    self._report("RNG003", node)
                elif attr not in _NUMPY_RANDOM_ALLOWED:
                    self._report("RNG002", node, f"`{base}.{attr}`")
            elif base in imports.time_mods and attr in _CLOCK_FUNCS:
                self._report("DET003", node, f"`{base}.{attr}`")
            elif base in imports.datetime_classes and attr in _DATETIME_CLOCK_METHODS:
                self._report("DET003", node, f"`{base}.{attr}`")
        elif isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            root, mid = value.value.id, value.attr
            if root in imports.numpy_mods and mid == "random":
                if attr == "RandomState":
                    self._report("RNG003", node)
                elif attr not in _NUMPY_RANDOM_ALLOWED:
                    self._report("RNG002", node, f"`{root}.random.{attr}`")
            elif (
                root in imports.datetime_mods
                and mid in {"datetime", "date"}
                and attr in _DATETIME_CLOCK_METHODS
            ):
                self._report("DET003", node, f"`{root}.{mid}.{attr}`")

    def _check_open(self, node: ast.Call) -> None:
        mode: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
                    break
        if mode is None:
            return  # default mode "r": a read
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            if _WRITE_MODE_CHARS & set(mode.value):
                self._report("ART001", node, f"`open(..., {mode.value!r})`")

    # -- iteration contexts (DET001) ------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._report("DET001", node.iter, "`for` over a set")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        if _is_set_expr(node.iter):
            self._report("DET001", node.iter, "`async for` over a set")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.expr, kind: str) -> None:
        for comp in node.generators:  # type: ignore[attr-defined]
            if _is_set_expr(comp.iter):
                self._report("DET001", comp.iter, f"{kind} over a set")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, "generator expression")

    # Iterating a set *into another set* is order-insensitive: visit the
    # generators only to recurse, without flagging.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        if _is_set_expr(node.value):
            self._report("DET001", node.value, "`*<set>` unpacking")
        self.generic_visit(node)

    # -- float accumulation drift (DET004) ------------------------------
    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            for sub in ast.walk(node.value):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "item"
                    and not sub.args
                    and not sub.keywords
                ):
                    self._report("DET004", node, "`.item()` in `+=`/`-=`")
                    break
        self.generic_visit(node)

    # -- float equality (FLT001) ----------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                left, right = operands[index], operands[index + 1]
                if _nonintegral_float_constant(left) or _nonintegral_float_constant(
                    right
                ):
                    self._report("FLT001", node)
                    break
        self.generic_visit(node)


def check_tree(tree: ast.AST, path: str, enabled: Set[str]) -> List[Finding]:
    """Run every enabled checker over one parsed module."""
    imports = _ImportTable()
    imports.scan(tree)
    visitor = DeterminismVisitor(path, enabled, imports)
    visitor.visit(tree)
    return visitor.findings
